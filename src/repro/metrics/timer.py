"""Deprecated: timing helpers moved to :mod:`repro.obs.trace`.

``Timer`` and ``Stopwatch`` are now span-native (they can record a
trace span per measured window) and live in the observability
subsystem.  This module re-exports them with a
:class:`DeprecationWarning`; import from ``repro.obs`` instead.
"""

from __future__ import annotations

import warnings
from typing import Any

__all__ = ["Timer", "Stopwatch"]


def __getattr__(name: str) -> Any:
    if name in __all__:
        warnings.warn(
            f"repro.metrics.timer.{name} has moved to repro.obs.trace; "
            "import it from repro.obs instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.obs import trace

        return getattr(trace, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
