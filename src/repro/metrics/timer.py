"""Small timing helpers."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Timer", "Stopwatch"]


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Example::

        with Timer() as t:
            work()
        print(t.elapsed)
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._start


@dataclass
class Stopwatch:
    """Accumulating stopwatch with named laps."""

    total: float = 0.0
    laps: dict[str, float] = field(default_factory=dict)
    _start: float = 0.0
    _running: bool = False

    def start(self) -> None:
        self._start = time.perf_counter()
        self._running = True

    def stop(self, lap: str | None = None) -> float:
        if not self._running:
            return 0.0
        elapsed = time.perf_counter() - self._start
        self._running = False
        self.total += elapsed
        if lap is not None:
            self.laps[lap] = self.laps.get(lap, 0.0) + elapsed
        return elapsed
