"""Deterministic work counters for labeling and automaton construction.

The paper reports hardware instruction and cycle counts of the
instruction-selector labelers.  This reproduction runs on a Python
substrate, so absolute hardware counts are meaningless; instead every
labeler counts the algorithmic work it performs (rule applicability
checks, chain-rule checks, transition-table lookups, state
constructions, dynamic-cost evaluations).  The *ratios* of these counts
between labelers play the role of the paper's instruction-count ratios,
and wall-clock time plays the role of cycle counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["LabelMetrics"]


@dataclass
class LabelMetrics:
    """Work performed by one labeling run (or one state construction)."""

    #: Nodes processed by the labeler.
    nodes_labeled: int = 0
    #: Base-rule pattern/applicability checks (dynamic programming work).
    rule_checks: int = 0
    #: Chain-rule checks (the repeated closure loop).
    chain_checks: int = 0
    #: Transition-table lookups performed by automaton labelers.
    table_lookups: int = 0
    #: Transition-table misses (each miss triggers a state construction).
    table_misses: int = 0
    #: Automaton states constructed (offline or on demand).
    states_created: int = 0
    #: Dynamic-cost / constraint evaluations at instruction-selection time.
    dynamic_evals: int = 0
    #: Wall-clock seconds spent labeling (excludes reduction/emission).
    seconds: float = 0.0
    #: Number of IR nodes that received a state/cost record (DAG-aware).
    extra: dict[str, float] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        """Fraction of transition-table lookups answered without a state
        construction (0.0 when no lookups were performed)."""
        if self.table_lookups <= 0:
            return 0.0
        return (self.table_lookups - self.table_misses) / self.table_lookups

    @property
    def warm_fraction(self) -> float:
        """Fraction of labeled nodes resolved purely from warm tables,
        i.e. without triggering a state construction (0.0 when no nodes
        were labeled)."""
        if self.nodes_labeled <= 0:
            return 0.0
        return max(0.0, (self.nodes_labeled - self.table_misses) / self.nodes_labeled)

    def operations(self) -> int:
        """Total unit-work items: the reproduction's "executed instructions" proxy."""
        return (
            self.nodes_labeled
            + self.rule_checks
            + self.chain_checks
            + self.table_lookups
            + self.dynamic_evals
        )

    def construction_operations(self) -> int:
        """Work attributable to building automaton states."""
        return self.rule_checks + self.chain_checks

    def merge(self, other: "LabelMetrics") -> "LabelMetrics":
        """Accumulate *other* into this metrics object (returns self)."""
        self.nodes_labeled += other.nodes_labeled
        self.rule_checks += other.rule_checks
        self.chain_checks += other.chain_checks
        self.table_lookups += other.table_lookups
        self.table_misses += other.table_misses
        self.states_created += other.states_created
        self.dynamic_evals += other.dynamic_evals
        self.seconds += other.seconds
        for key, value in other.extra.items():
            self.extra[key] = self.extra.get(key, 0.0) + value
        return self

    def copy(self) -> "LabelMetrics":
        clone = LabelMetrics(
            nodes_labeled=self.nodes_labeled,
            rule_checks=self.rule_checks,
            chain_checks=self.chain_checks,
            table_lookups=self.table_lookups,
            table_misses=self.table_misses,
            states_created=self.states_created,
            dynamic_evals=self.dynamic_evals,
            seconds=self.seconds,
        )
        clone.extra = dict(self.extra)
        return clone

    def per_node(self) -> dict[str, float]:
        """All counters normalised by the number of labeled nodes."""
        nodes = max(self.nodes_labeled, 1)
        return {
            "operations/node": self.operations() / nodes,
            "rule_checks/node": self.rule_checks / nodes,
            "chain_checks/node": self.chain_checks / nodes,
            "table_lookups/node": self.table_lookups / nodes,
            "dynamic_evals/node": self.dynamic_evals / nodes,
            "microseconds/node": 1e6 * self.seconds / nodes,
        }

    def as_row(self) -> dict[str, object]:
        """Flat dict for table formatting."""
        return {
            "nodes": self.nodes_labeled,
            "operations": self.operations(),
            "rule checks": self.rule_checks,
            "chain checks": self.chain_checks,
            "lookups": self.table_lookups,
            "misses": self.table_misses,
            "states": self.states_created,
            "dynamic evals": self.dynamic_evals,
            "hit rate": round(self.hit_rate, 4),
            "time [ms]": round(self.seconds * 1000.0, 3),
        }
