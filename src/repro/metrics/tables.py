"""Plain-text table and series formatting for experiment output.

The benchmark harness prints the reproduced tables and figure series in
an aligned plain-text form that mirrors the layout of the paper's
tables (one row per benchmark/grammar, one column per measurement).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["format_table", "format_series", "format_ratio", "markdown_table"]


def _cell(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:,.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render *rows* (dicts) as an aligned text table.

    Columns default to the keys of the first row, in order.  Numeric
    cells are right-aligned and thousands-separated.
    """
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    rendered = [[_cell(row.get(col, "")) for col in cols] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in rendered)) for i, col in enumerate(cols)
    ]

    def align(text: str, width: int, value: object) -> str:
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return text.rjust(width)
        return text.ljust(width)

    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(cols))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for row, line in zip(rows, rendered):
        lines.append(
            "  ".join(align(line[i], widths[i], row.get(col)) for i, col in enumerate(cols))
        )
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Iterable[float]],
    x_labels: Sequence[object] | None = None,
    title: str | None = None,
    x_name: str = "x",
) -> str:
    """Render one or more named series (a "figure") as a text table.

    Each series becomes a column; *x_labels* provides the first column.
    """
    names = list(series.keys())
    values = {name: list(points) for name, points in series.items()}
    length = max((len(points) for points in values.values()), default=0)
    labels = list(x_labels) if x_labels is not None else list(range(length))
    rows = []
    for index in range(length):
        row: dict[str, object] = {x_name: labels[index] if index < len(labels) else index}
        for name in names:
            points = values[name]
            row[name] = points[index] if index < len(points) else ""
        rows.append(row)
    return format_table(rows, columns=[x_name, *names], title=title)


def format_ratio(numerator: float, denominator: float) -> float:
    """A safe ratio (0 when the denominator is 0), rounded to 2 decimals."""
    if denominator == 0:
        return 0.0
    return round(numerator / denominator, 2)


def markdown_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
) -> str:
    """Render rows as a GitHub-flavoured markdown table (for EXPERIMENTS.md)."""
    if not rows:
        return "(empty)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    lines = ["| " + " | ".join(cols) + " |", "|" + "|".join("---" for _ in cols) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(_cell(row.get(col, "")) for col in cols) + " |")
    return "\n".join(lines)
