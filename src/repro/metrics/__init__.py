"""Measurement utilities: work counters, timers, table/series formatting."""

from repro.metrics.counters import LabelMetrics
from repro.metrics.tables import format_ratio, format_series, format_table, markdown_table
from repro.metrics.timer import Stopwatch, Timer

__all__ = [
    "LabelMetrics",
    "Stopwatch",
    "Timer",
    "format_ratio",
    "format_series",
    "format_table",
    "markdown_table",
]
