"""Measurement utilities: work counters and table/series formatting.

``Timer``/``Stopwatch`` are deprecated here — they moved to
:mod:`repro.obs.trace` as span-native helpers.  Importing them through
this package still works but raises a :class:`DeprecationWarning`.
"""

from typing import Any

from repro.metrics.counters import LabelMetrics
from repro.metrics.tables import format_ratio, format_series, format_table, markdown_table

__all__ = [
    "LabelMetrics",
    "Stopwatch",
    "Timer",
    "format_ratio",
    "format_series",
    "format_table",
    "markdown_table",
]

_MOVED_TO_OBS = ("Timer", "Stopwatch")


def __getattr__(name: str) -> Any:
    if name in _MOVED_TO_OBS:
        import warnings

        warnings.warn(
            f"repro.metrics.{name} has moved to repro.obs.trace; "
            "import it from repro.obs instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.obs import trace

        return getattr(trace, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
