"""Test-support tooling shipped with the library.

:mod:`repro.testing.faults` is the deterministic fault-injection
harness behind the chaos test suite and the ``faults`` benchmark
family: raising wrappers for dynamic rules and emission actions,
artifact corruption/truncation, and syscall-level IO fault simulation
(latency, read failures, mid-write crashes).
"""

from repro.testing.faults import (
    ArtifactIOFaults,
    FaultyCallable,
    InjectedFault,
    IOCounters,
    SimulatedCrash,
    artifact_io_faults,
    corrupt_bytes,
    poison_action,
    poison_constraint,
    poison_dynamic_cost,
    truncate_bytes,
)

__all__ = [
    "ArtifactIOFaults",
    "FaultyCallable",
    "IOCounters",
    "InjectedFault",
    "SimulatedCrash",
    "artifact_io_faults",
    "corrupt_bytes",
    "poison_action",
    "poison_constraint",
    "poison_dynamic_cost",
    "truncate_bytes",
]
