"""Deterministic, seedable fault injectors for the resilience layer.

Error-localization tooling is only credible when validated by
*systematically injecting* the faults it claims to survive (the
CERTPLC / Bekkouche et al. methodology — see PAPERS.md): this module is
that harness.  Three injector families, all deterministic so a chaos
seed reproduces a failure exactly:

* :class:`FaultyCallable` — wraps a dynamic-cost, constraint, or
  emission callable and raises :class:`InjectedFault` on the Nth call
  or whenever a node predicate matches (the
  :func:`poison_action`/:func:`poison_constraint`/
  :func:`poison_dynamic_cost` helpers install and uninstall it on a
  :class:`~repro.grammar.rule.Rule` in place);
* :func:`corrupt_bytes` / :func:`truncate_bytes` — flip or cut artifact
  bytes at chosen (or seeded-random) offsets;
* :func:`artifact_io_faults` — a context manager that patches the
  selector's syscall indirection hooks to fail reads, inject latency,
  and simulate a **mid-write crash** after any chosen write-syscall
  boundary (:class:`SimulatedCrash` deliberately subclasses
  ``BaseException`` so no resilience machinery can swallow it — it
  models process death, not a recoverable error).

None of this imports ``pytest``; the injectors are plain library code
usable from benchmarks (the ``faults`` bench family) as well as tests.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro.selection import selector as _selector_module

__all__ = [
    "ArtifactIOFaults",
    "FaultyCallable",
    "IOCounters",
    "InjectedFault",
    "SimulatedCrash",
    "artifact_io_faults",
    "corrupt_bytes",
    "kill_process",
    "poison_action",
    "poison_constraint",
    "poison_dynamic_cost",
    "truncate_bytes",
]


class InjectedFault(Exception):
    """The exception raised by injectors that model *recoverable* faults.

    A plain ``Exception`` subclass: the resilience layer is expected to
    isolate or demote it like any user-code failure.
    """


class SimulatedCrash(BaseException):
    """Models sudden process death (power loss, ``kill -9``).

    Deliberately a ``BaseException`` subclass — like
    ``KeyboardInterrupt`` — so it can never be swallowed by the
    resilience layer's ``except Exception`` handlers: crash simulations
    must observe what a *real* crash would leave on disk, not what a
    cleanup handler would tidy up.
    """


# ----------------------------------------------------------------------
# Callable faults (dynamic rules, constraints, emission actions)


class FaultyCallable:
    """A deterministic raising wrapper around any callable.

    Args:
        fn: The callable to wrap (its return value is forwarded on
            non-faulting calls).
        on_call: Raise on the Nth invocation, 1-based.  With *sticky*
            true, every invocation from the Nth on raises (use sticky
            faults to model a persistently broken callback — the
            isolated pipeline may re-invoke callables when it re-labels
            a faulted batch forest by forest).
        predicate: Raise whenever ``predicate(*args)`` is true (e.g. a
            check on the IR node's ``nid``).  Composable with
            *on_call*; either trigger fires the fault.
        sticky: See *on_call*.
        exc_factory: Builds the exception to raise (defaults to
            :class:`InjectedFault` with a descriptive message).
        max_faults: Stop faulting after this many raises — the wrapper
            behaves normally from then on.  Models a *transient* tenant
            poisoning that heals (e.g. for circuit-breaker recovery:
            the breaker opens while faults flow, then half-open probes
            find the callable healthy again).  ``None`` = unlimited.
        latency_s: Sleep this long before every invocation (faulting or
            not) — models a persistently *slow* callable (a slow tenant
            burning its deadline budget) without changing results.

    The wrapper impersonates ``fn``'s ``__module__``/``__qualname__``/
    ``__name__`` so grammar fingerprints (which identify dynamic
    callables by qualified name) are unchanged by the wrapping — a
    poisoned grammar still matches its artifacts.

    Attributes:
        calls: Total invocations observed.
        faults: Invocations that raised.
    """

    def __init__(
        self,
        fn: Callable[..., Any],
        *,
        on_call: int | None = None,
        predicate: Callable[..., bool] | None = None,
        sticky: bool = False,
        exc_factory: Callable[[], BaseException] | None = None,
        max_faults: int | None = None,
        latency_s: float = 0.0,
    ) -> None:
        if on_call is None and predicate is None and latency_s <= 0:
            raise ValueError("FaultyCallable needs on_call, predicate, and/or latency_s")
        self.fn = fn
        self.on_call = on_call
        self.predicate = predicate
        self.sticky = sticky
        self.exc_factory = exc_factory
        self.max_faults = max_faults
        self.latency_s = latency_s
        self.calls = 0
        self.faults = 0
        for attr in ("__module__", "__qualname__", "__name__"):
            try:
                setattr(self, attr, getattr(fn, attr))
            except AttributeError:
                pass

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        self.calls += 1
        if self.latency_s > 0:
            time.sleep(self.latency_s)
        trigger = False
        if self.on_call is not None:
            trigger = (
                self.calls >= self.on_call if self.sticky else self.calls == self.on_call
            )
        if not trigger and self.predicate is not None:
            trigger = bool(self.predicate(*args, **kwargs))
        if trigger and self.max_faults is not None and self.faults >= self.max_faults:
            trigger = False
        if trigger:
            self.faults += 1
            if self.exc_factory is not None:
                raise self.exc_factory()
            raise InjectedFault(
                f"injected fault in {getattr(self, '__name__', 'callable')} "
                f"(call #{self.calls})"
            )
        return self.fn(*args, **kwargs)

    def __repr__(self) -> str:
        return (
            f"FaultyCallable({getattr(self, '__name__', '?')}, calls={self.calls}, "
            f"faults={self.faults})"
        )


def _poison(rule: Any, attr: str, fault: FaultyCallable) -> Callable[[], None]:
    """Install *fault* on ``rule.<attr>`` in place; returns an undo."""
    original = getattr(rule, attr)
    setattr(rule, attr, fault)

    def restore() -> None:
        setattr(rule, attr, original)

    return restore


def poison_action(rule: Any, **kwargs: Any) -> tuple[FaultyCallable, Callable[[], None]]:
    """Wrap *rule*'s emission action in a :class:`FaultyCallable`.

    Returns ``(fault, restore)``: the installed wrapper (for call/fault
    counts) and a zero-argument undo.  Keyword arguments go to
    :class:`FaultyCallable`.  A rule without an action gets a
    pass-through action installed (operands forwarded like the default
    reducer behavior), so any rule can be poisoned.
    """
    fn = rule.action
    if fn is None:
        from repro.selection.reducer import flatten_operands

        def fn(context: Any, node: Any, operands: list[Any]) -> Any:  # noqa: ARG001
            return flatten_operands(operands)

        fn.__name__ = f"passthrough_{rule.lhs}"
    fault = FaultyCallable(fn, **kwargs)
    return fault, _poison(rule, "action", fault)


def poison_constraint(
    rule: Any, **kwargs: Any
) -> tuple[FaultyCallable, Callable[[], None]]:
    """Wrap *rule*'s constraint predicate in a :class:`FaultyCallable`."""
    if rule.constraint is None:
        raise ValueError(f"rule {rule.lhs}: {rule.pattern} has no constraint to poison")
    fault = FaultyCallable(rule.constraint, **kwargs)
    return fault, _poison(rule, "constraint", fault)


def poison_dynamic_cost(
    rule: Any, **kwargs: Any
) -> tuple[FaultyCallable, Callable[[], None]]:
    """Wrap *rule*'s dynamic-cost callable in a :class:`FaultyCallable`."""
    if rule.dynamic_cost is None:
        raise ValueError(f"rule {rule.lhs}: {rule.pattern} has no dynamic cost to poison")
    fault = FaultyCallable(rule.dynamic_cost, **kwargs)
    return fault, _poison(rule, "dynamic_cost", fault)


# ----------------------------------------------------------------------
# Artifact byte faults


def corrupt_bytes(
    path: str | Path,
    offset: int | None = None,
    *,
    xor_mask: int = 0xFF,
    seed: int | None = None,
) -> int:
    """Flip one byte of the file at *path* (XOR with *xor_mask*).

    *offset* picks the byte; ``None`` draws one deterministically from
    ``random.Random(seed)``.  Negative offsets index from the end.
    Returns the absolute offset corrupted.
    """
    target = Path(path)
    blob = bytearray(target.read_bytes())
    if not blob:
        raise ValueError(f"{target}: cannot corrupt an empty file")
    if offset is None:
        offset = random.Random(seed).randrange(len(blob))
    if offset < 0:
        offset += len(blob)
    if not 0 <= offset < len(blob):
        raise ValueError(f"{target}: offset {offset} outside {len(blob)} bytes")
    blob[offset] ^= xor_mask & 0xFF
    target.write_bytes(bytes(blob))
    return offset


def truncate_bytes(
    path: str | Path,
    keep: int | None = None,
    *,
    fraction: float | None = None,
) -> int:
    """Truncate the file at *path*, keeping *keep* bytes (or *fraction*).

    Exactly one of *keep* / *fraction* must be given.  Returns the new
    size.  ``keep=0`` produces the zero-length-file case.
    """
    target = Path(path)
    size = target.stat().st_size
    if (keep is None) == (fraction is None):
        raise ValueError("pass exactly one of keep= or fraction=")
    if keep is None:
        keep = int(size * fraction)
    if not 0 <= keep <= size:
        raise ValueError(f"{target}: cannot keep {keep} of {size} bytes")
    target.write_bytes(target.read_bytes()[:keep])
    return keep


# ----------------------------------------------------------------------
# Syscall-level IO faults (patch the selector's IO hooks)


@dataclass
class IOCounters:
    """Syscalls observed through the patched hooks.

    ``write_steps`` numbers the write-path syscall boundaries
    (open, each chunk write, fsync, rename) — run :meth:`Selector.save`
    once under a no-fault :func:`artifact_io_faults` to learn the total,
    then crash after each step ``1..total`` in turn.
    """

    read: int = 0
    open: int = 0
    write: int = 0
    fsync: int = 0
    replace: int = 0

    @property
    def write_steps(self) -> int:
        return self.open + self.write + self.fsync + self.replace


class ArtifactIOFaults:
    """Context manager simulating IO faults at the selector's syscall hooks.

    Args:
        fail_reads: The first N artifact reads raise ``OSError``
            (transient-failure model: the artifact cache should retry
            these with backoff and succeed on read N+1).
        crash_after_step: Raise :class:`SimulatedCrash` immediately
            *after* the Nth write-path syscall completes (1-based over
            open/write/fsync/rename, see :class:`IOCounters`) — the
            bytes that syscall wrote are on "disk", nothing later is.
            ``None`` disables crashing (counting still happens).
        latency_s: Sleep this long before every hooked syscall
            (slow-filesystem model).

    Yields its :class:`IOCounters`; hooks are restored on exit, even
    after a crash.
    """

    def __init__(
        self,
        *,
        fail_reads: int = 0,
        crash_after_step: int | None = None,
        latency_s: float = 0.0,
    ) -> None:
        self.fail_reads = fail_reads
        self.crash_after_step = crash_after_step
        self.latency_s = latency_s
        self.counters = IOCounters()
        self._saved: dict[str, Callable[..., Any]] = {}

    # -- hook implementations -----------------------------------------

    def _lag(self) -> None:
        if self.latency_s > 0:
            time.sleep(self.latency_s)

    def _crash_check(self) -> None:
        if (
            self.crash_after_step is not None
            and self.counters.write_steps >= self.crash_after_step
        ):
            raise SimulatedCrash(
                f"simulated crash after write step {self.counters.write_steps}"
            )

    def _read_bytes(self, path: Path) -> bytes:
        self._lag()
        self.counters.read += 1
        if self.counters.read <= self.fail_reads:
            raise OSError(f"injected IO failure reading {path} (#{self.counters.read})")
        return path.read_bytes()

    def _open(self, path: str, flags: int) -> int:
        self._lag()
        fd = os.open(path, flags, 0o644)
        self.counters.open += 1
        self._crash_check()
        return fd

    def _write(self, fd: int, data: bytes) -> int:
        self._lag()
        written = os.write(fd, data)
        self.counters.write += 1
        self._crash_check()
        return written

    def _fsync(self, fd: int) -> None:
        self._lag()
        os.fsync(fd)
        self.counters.fsync += 1
        self._crash_check()

    def _replace(self, src: str, dst: str) -> None:
        self._lag()
        os.replace(src, dst)
        self.counters.replace += 1
        self._crash_check()

    # -- context management -------------------------------------------

    def __enter__(self) -> IOCounters:
        module = _selector_module
        self._saved = {
            "_io_read_bytes": module._io_read_bytes,
            "_io_open": module._io_open,
            "_io_write": module._io_write,
            "_io_fsync": module._io_fsync,
            "_io_replace": module._io_replace,
        }
        module._io_read_bytes = self._read_bytes
        module._io_open = self._open
        module._io_write = self._write
        module._io_fsync = self._fsync
        module._io_replace = self._replace
        return self.counters

    def __exit__(self, *exc_info: Any) -> None:
        for name, fn in self._saved.items():
            setattr(_selector_module, name, fn)
        self._saved = {}


def artifact_io_faults(
    *,
    fail_reads: int = 0,
    crash_after_step: int | None = None,
    latency_s: float = 0.0,
) -> ArtifactIOFaults:
    """Sugar for ``with ArtifactIOFaults(...) as counters:`` (see there)."""
    return ArtifactIOFaults(
        fail_reads=fail_reads,
        crash_after_step=crash_after_step,
        latency_s=latency_s,
    )


# ----------------------------------------------------------------------
# Process faults (the service chaos harness)


def kill_process(pid: int, sig: int | None = None) -> bool:
    """SIGKILL (by default) a process — the real ``kill -9``, not a
    simulation.

    The chaos counterpart of :class:`SimulatedCrash` for multi-process
    targets: the service soak harness uses it to murder a live worker
    mid-batch and assert that the supervisor re-dispatches every
    in-flight request.  Returns ``False`` (instead of raising) when the
    process is already gone — chaos injection races with natural exits
    by design.
    """
    import signal as _signal

    try:
        os.kill(pid, _signal.SIGKILL if sig is None else sig)
    except ProcessLookupError:
        return False
    return True
