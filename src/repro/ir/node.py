"""IR nodes, builders, and forests.

Nodes form trees or DAGs (a node may be shared by several parents).
Statements are forest roots; value-producing nodes hang below them.
Nodes deliberately carry *no* instruction-selection state: the labelers
in :mod:`repro.selection.label_dp` and :mod:`repro.selection.automaton`
record their results in external :class:`~repro.selection.cover.Labeling`
objects keyed by node identity so several labelers can be compared on
the same forest without interference.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.errors import IRError
from repro.ir.ops import Operator, OperatorSet

__all__ = ["Node", "NodeBuilder", "Forest", "fresh_nid"]

#: Process-wide node-id source.  Builder-assigned nids are unique across
#: *all* builders in the process (not merely within one builder), which
#: lets the reduction memo and the emission tape's slot table key nodes
#: by ``nid`` instead of the recyclable ``id()`` — a GC'd forest can
#: re-use a dead node's address mid-batch, but never its nid.
_NID_COUNTER = itertools.count()


def fresh_nid() -> int:
    """A new process-unique node id (what :class:`NodeBuilder` assigns)."""
    return next(_NID_COUNTER)


class Node:
    """One IR node.

    Attributes:
        op: The node's :class:`~repro.ir.ops.Operator`.
        kids: Child nodes (a tuple whose length equals ``op.arity``).
        value: Immediate payload for payload-carrying operators
            (``None`` otherwise).
        nid: Numeric identity assigned by the :class:`NodeBuilder`;
            unique across all builders in the process (see
            :func:`fresh_nid`).  Hand-built nodes carry the sentinel
            ``-1`` and fall back to address-based identity in the
            reduction memo (with the usual recycled-``id()`` caveats).
    """

    __slots__ = ("op", "kids", "value", "nid")

    def __init__(
        self,
        op: Operator,
        kids: Sequence["Node"] = (),
        value: Any = None,
        nid: int = -1,
    ) -> None:
        if len(kids) != op.arity:
            raise IRError(
                f"operator {op.name} expects {op.arity} children, got {len(kids)}"
            )
        if value is not None and not op.has_payload:
            raise IRError(f"operator {op.name} does not carry a payload (got {value!r})")
        self.op = op
        self.kids = tuple(kids)
        self.value = value
        self.nid = nid

    # Nodes are identity-hashed (the default); two structurally equal
    # nodes are distinct IR objects unless explicitly shared (DAGs).

    @property
    def is_leaf(self) -> bool:
        return not self.kids

    @property
    def is_statement(self) -> bool:
        return self.op.is_statement

    def replace_kids(self, kids: Sequence["Node"]) -> "Node":
        """A copy of this node with different children (same payload).

        The copy gets a *fresh* nid: nids are identity, and a copy is a
        distinct node — reusing the source nid would alias the copy with
        its original in any nid-keyed memo (the reducer's, the tape's).
        Sources that never had a nid (``-1``) stay that way.
        """
        nid = fresh_nid() if self.nid >= 0 else -1
        return Node(self.op, kids, self.value, nid)

    def size(self) -> int:
        """Number of distinct nodes reachable from this node (DAG-aware)."""
        seen: set[int] = set()
        stack = [self]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.extend(node.kids)
        return len(seen)

    def depth(self) -> int:
        """Length of the longest root-to-leaf path (1 for a leaf).

        Iterative and memoized per distinct node, so shared (DAG)
        subtrees are measured once and deep trees do not overflow the
        interpreter stack.
        """
        depths: dict[int, int] = {}
        expanded: set[int] = set()
        stack: list[tuple[Node, bool]] = [(self, False)]
        while stack:
            node, ready = stack.pop()
            nid = id(node)
            if ready:
                depths[nid] = 1 + max((depths[id(kid)] for kid in node.kids), default=0)
                continue
            if nid in expanded:
                continue
            expanded.add(nid)
            stack.append((node, True))
            stack.extend((kid, False) for kid in node.kids if id(kid) not in expanded)
        return depths[id(self)]

    def structurally_equal(self, other: "Node") -> bool:
        """Structural (deep) equality ignoring node identity and ids.

        Iterative with a visited pair-set, so shared (DAG) subtrees are
        compared once instead of once per path — the recursive version
        was exponential on n-level shared diamonds — and deep trees do
        not overflow the interpreter stack.
        """
        seen: set[tuple[int, int]] = set()
        stack: list[tuple[Node, Node]] = [(self, other)]
        while stack:
            a, b = stack.pop()
            key = (id(a), id(b))
            if key in seen:
                continue
            seen.add(key)
            if a.op is not b.op or a.value != b.value or len(a.kids) != len(b.kids):
                return False
            stack.extend(zip(a.kids, b.kids))
        return True

    def __repr__(self) -> str:
        payload = f"[{self.value!r}]" if self.value is not None else ""
        if self.kids:
            inner = ", ".join(repr(kid) for kid in self.kids)
            return f"{self.op.name}{payload}({inner})"
        return f"{self.op.name}{payload}"


class NodeBuilder:
    """Factory for nodes over one operator set.

    The builder assigns process-unique, increasing node ids (from the
    shared :func:`fresh_nid` source) and offers one factory
    method per operator name (lower-cased), e.g. ``builder.add(a, b)``
    or ``builder.cnst(5)``, plus the generic :meth:`node`.
    """

    def __init__(self, operators: OperatorSet | None = None) -> None:
        from repro.ir.ops import DEFAULT_OPERATORS

        self.operators = operators if operators is not None else DEFAULT_OPERATORS

    def node(self, op: Operator | str, *kids: Node, value: Any = None) -> Node:
        """Build a node for *op* with the given children and payload."""
        if isinstance(op, str):
            op = self.operators[op]
        return Node(op, kids, value=value, nid=fresh_nid())

    def leaf(self, op: Operator | str, value: Any = None) -> Node:
        """Build a leaf node (arity 0)."""
        return self.node(op, value=value)

    def __getattr__(self, name: str) -> Callable[..., Node]:
        # Dynamic per-operator factories: builder.add(x, y), builder.cnst(1), ...
        op_name = name.upper()
        if op_name in self.operators:
            op = self.operators[op_name]

            def factory(*kids: Node, value: Any = None) -> Node:
                if op.has_payload and kids and not isinstance(kids[0], Node):
                    # Allow builder.cnst(5) as shorthand for value=5.
                    return self.node(op, *kids[1:], value=kids[0])
                return self.node(op, *kids, value=value)

            factory.__name__ = name
            return factory
        raise AttributeError(name)


class Forest:
    """An ordered sequence of statement roots (one basic block or body).

    A forest is the unit handed to the instruction selector: roots are
    labeled and reduced in order.  Sub-nodes may be shared between
    roots, making the forest a DAG.
    """

    def __init__(self, roots: Iterable[Node] = (), name: str = "forest") -> None:
        self.roots: list[Node] = list(roots)
        self.name = name

    def add(self, root: Node) -> Node:
        """Append a statement root and return it."""
        self.roots.append(root)
        return root

    def __iter__(self) -> Iterator[Node]:
        return iter(self.roots)

    def __len__(self) -> int:
        return len(self.roots)

    def nodes(self) -> list[Node]:
        """All distinct nodes in bottom-up (children-first) order.

        The order is a topological order of the DAG: every node appears
        after all of its children, each node exactly once.  Delegates to
        :func:`repro.ir.traversal.topological_order`, the one
        implementation shared by every forest consumer.
        """
        from repro.ir.traversal import topological_order

        return topological_order(self.roots)

    def node_count(self) -> int:
        """Number of distinct nodes in the forest.

        A plain visited-set count: no topological order is built and no
        list is materialised.
        """
        visited: set[int] = set()
        stack: list[Node] = list(self.roots)
        while stack:
            node = stack.pop()
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.extend(node.kids)
        return len(visited)

    def __repr__(self) -> str:
        # Deliberately traversal-free: printing a forest must stay O(1).
        return f"Forest({self.name!r}, roots={len(self.roots)})"
