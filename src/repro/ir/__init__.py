"""Intermediate representation: operators, nodes, forests, traversal, semantics."""

from repro.ir.interp import ExecutionResult, IRInterpreter, Memory
from repro.ir.node import Forest, Node, NodeBuilder, fresh_nid
from repro.ir.ops import DEFAULT_OPERATORS, Operator, OperatorSet, default_operators
from repro.ir.pretty import format_forest, format_node, to_dot
from repro.ir.stats import ForestStats, forest_stats
from repro.ir.traversal import (
    check_acyclic,
    iter_unique,
    postorder,
    preorder,
    shared_nodes,
    topological_order,
)
from repro.ir.validate import (
    ForestValidationError,
    ValidationIssue,
    validate_forest,
    validate_node,
)

__all__ = [
    "DEFAULT_OPERATORS",
    "ExecutionResult",
    "Forest",
    "ForestStats",
    "ForestValidationError",
    "IRInterpreter",
    "Memory",
    "Node",
    "NodeBuilder",
    "Operator",
    "OperatorSet",
    "ValidationIssue",
    "check_acyclic",
    "default_operators",
    "forest_stats",
    "format_forest",
    "format_node",
    "fresh_nid",
    "iter_unique",
    "postorder",
    "preorder",
    "shared_nodes",
    "to_dot",
    "topological_order",
    "validate_forest",
    "validate_node",
]
