"""Reference interpreter for IR forests.

The interpreter defines the semantics of the IR: executing a forest
directly must give the same observable results (memory contents, return
value, call trace) as selecting instructions for it and running the
generated code on the target-machine simulator.  The correctness tests
in ``tests/test_end_to_end.py`` rely on this equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.errors import IRError
from repro.ir.layout import WORD_SIZE, formal_address, local_address, wrap
from repro.ir.node import Forest, Node

__all__ = ["Memory", "IRInterpreter", "ExecutionResult"]


class Memory:
    """A sparse word-addressed memory.

    Reads of uninitialised addresses return 0, mirroring zero-initialised
    data segments.  Addresses are byte addresses but accesses are whole
    words (the IR has a single integer type).
    """

    def __init__(self) -> None:
        self._cells: dict[int, int] = {}

    def load(self, address: int) -> int:
        return self._cells.get(address, 0)

    def store(self, address: int, value: int) -> None:
        self._cells[address] = wrap(value)

    def snapshot(self) -> dict[int, int]:
        """A copy of all written cells (for result comparison)."""
        return dict(self._cells)

    def __len__(self) -> int:
        return len(self._cells)


@dataclass
class ExecutionResult:
    """Observable outcome of executing a forest."""

    return_value: int | None
    memory: dict[int, int]
    calls: list[tuple[str, tuple[int, ...]]] = field(default_factory=list)
    statements_executed: int = 0


class IRInterpreter:
    """Executes IR forests with full control flow.

    Args:
        memory: Shared memory (a fresh one is created when omitted).
        call_handler: Callback ``(name, args) -> int`` used for CALL /
            CALLV nodes; when omitted, calls return 0 and are recorded
            in the execution result's call trace.
        frame: Frame number used to resolve ADDRL / ADDRF leaves.
        max_steps: Safety bound on executed statements (guards against
            non-terminating synthetic programs).
    """

    def __init__(
        self,
        memory: Memory | None = None,
        call_handler: Callable[[str, tuple[int, ...]], int] | None = None,
        frame: int = 0,
        max_steps: int = 1_000_000,
    ) -> None:
        self.memory = memory if memory is not None else Memory()
        self.call_handler = call_handler
        self.frame = frame
        self.max_steps = max_steps
        self.registers: dict[object, int] = {}
        self.calls: list[tuple[str, tuple[int, ...]]] = []
        self._pending_args: list[int] = []

    # ------------------------------------------------------------------
    # Statement execution

    def run(self, forest: Forest | Iterable[Node], args: Iterable[int] = ()) -> ExecutionResult:
        """Execute *forest* and return the observable result.

        *args* are stored into the formal-parameter slots before
        execution starts (slot 0 gets the first argument, and so on).
        """
        roots = list(forest.roots if isinstance(forest, Forest) else forest)
        for slot, value in enumerate(args):
            self.memory.store(formal_address(slot, self.frame), value)

        labels: dict[object, int] = {}
        for index, root in enumerate(roots):
            if root.op.name == "LABEL":
                if root.value in labels:
                    raise IRError(f"duplicate label {root.value!r}")
                labels[root.value] = index

        pc = 0
        steps = 0
        return_value: int | None = None
        while pc < len(roots):
            if steps >= self.max_steps:
                raise IRError(f"execution exceeded {self.max_steps} statements")
            steps += 1
            root = roots[pc]
            pc += 1
            outcome = self._execute(root)
            if outcome is None:
                continue
            kind, payload = outcome
            if kind == "jump":
                if payload not in labels:
                    raise IRError(f"jump to undefined label {payload!r}")
                pc = labels[payload]
            elif kind == "return":
                return_value = payload
                break

        return ExecutionResult(
            return_value=return_value,
            memory=self.memory.snapshot(),
            calls=list(self.calls),
            statements_executed=steps,
        )

    def _execute(self, root: Node) -> tuple[str, object] | None:
        name = root.op.name
        if name == "STORE":
            address = self.eval(root.kids[0])
            value = self.eval(root.kids[1])
            self.memory.store(address, value)
            return None
        if name == "LABEL" or name == "NOP":
            return None
        if name == "JUMP":
            return ("jump", root.value)
        if name.startswith("BR"):
            left = self.eval(root.kids[0])
            right = self.eval(root.kids[1])
            if _branch_taken(name, left, right):
                return ("jump", root.value)
            return None
        if name == "ARG":
            self._pending_args.append(self.eval(root.kids[0]))
            return None
        if name == "CALLV":
            self._call(root)
            return None
        if name == "RET":
            return ("return", self.eval(root.kids[0]))
        if name == "RETV":
            return ("return", None)
        if name == "EXPR":
            self.eval(root.kids[0])
            return None
        if not root.op.is_statement:
            raise IRError(f"expression operator {name} used as a forest root")
        raise IRError(f"statement operator {name} not supported by the interpreter")

    # ------------------------------------------------------------------
    # Expression evaluation

    def eval(self, node: Node) -> int:
        """Evaluate a value-producing node to a 64-bit signed integer."""
        name = node.op.name
        if name == "CNST":
            return wrap(int(node.value))
        if name == "ADDRL":
            return local_address(int(node.value), self.frame)
        if name == "ADDRF":
            return formal_address(int(node.value), self.frame)
        if name == "ADDRG":
            return self._global_address(node.value)
        if name == "REG" or name == "TEMP":
            return self.registers.get(node.value, 0)
        if name == "LOAD":
            return self.memory.load(self.eval(node.kids[0]))
        if name == "CALL":
            return self._call(node)
        if name == "CVT":
            return wrap(self.eval(node.kids[0]))
        if name == "NEG":
            return wrap(-self.eval(node.kids[0]))
        if name == "NOT":
            return wrap(~self.eval(node.kids[0]))

        if node.op.arity == 2:
            left = self.eval(node.kids[0])
            right = self.eval(node.kids[1])
            return _binary(name, left, right)

        raise IRError(f"cannot evaluate operator {name}")

    def _call(self, node: Node) -> int:
        callee = node.kids[0]
        name = node.value
        if name is None and callee.op.name == "ADDRG":
            name = callee.value
        args = tuple(self._pending_args)
        self._pending_args.clear()
        self.calls.append((str(name), args))
        if self.call_handler is not None:
            return wrap(self.call_handler(str(name), args))
        return 0

    def _global_address(self, symbol: object) -> int:
        from repro.ir.layout import GLOBAL_BASE, global_address

        if isinstance(symbol, int):
            return global_address(symbol)
        # Hash symbol names into stable global slots.
        slot = sum(ord(ch) for ch in str(symbol)) + len(str(symbol)) * 131
        return GLOBAL_BASE + (slot % 4096) * WORD_SIZE


def _binary(name: str, left: int, right: int) -> int:
    if name == "ADD":
        return wrap(left + right)
    if name == "SUB":
        return wrap(left - right)
    if name == "MUL":
        return wrap(left * right)
    if name == "DIV":
        if right == 0:
            raise IRError("division by zero")
        return wrap(int(left / right))  # truncate toward zero, like C
    if name == "MOD":
        if right == 0:
            raise IRError("modulo by zero")
        return wrap(left - int(left / right) * right)
    if name == "AND":
        return wrap(left & right)
    if name == "OR":
        return wrap(left | right)
    if name == "XOR":
        return wrap(left ^ right)
    if name == "SHL":
        return wrap(left << (right & 63))
    if name == "SHR":
        return wrap(left >> (right & 63))
    if name == "CMPEQ":
        return int(left == right)
    if name == "CMPNE":
        return int(left != right)
    if name == "CMPLT":
        return int(left < right)
    if name == "CMPLE":
        return int(left <= right)
    if name == "CMPGT":
        return int(left > right)
    if name == "CMPGE":
        return int(left >= right)
    raise IRError(f"unknown binary operator {name}")


def _branch_taken(name: str, left: int, right: int) -> bool:
    if name == "BREQ":
        return left == right
    if name == "BRNE":
        return left != right
    if name == "BRLT":
        return left < right
    if name == "BRLE":
        return left <= right
    if name == "BRGT":
        return left > right
    if name == "BRGE":
        return left >= right
    raise IRError(f"unknown branch operator {name}")
