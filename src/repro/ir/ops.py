"""Operator definitions for the intermediate representation.

The IR is a conventional low-level expression IR in the style of lcc's
tree intermediate representation: every operator has a fixed arity, is
either *value-producing* (it can appear as an operand of another node) or
a *statement* (it can only appear as a forest root), and may carry an
immediate payload (a constant value, a symbol name, a label, ...).

Tree grammars (:mod:`repro.grammar`) pattern-match on these operators, so
the operator set is the shared vocabulary between the front ends
(:mod:`repro.frontend`, :mod:`repro.vm`), the workload generators and the
machine descriptions in :mod:`repro.targets`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.errors import IRError

__all__ = [
    "Operator",
    "OperatorSet",
    "default_operators",
    "DEFAULT_OPERATORS",
]


@dataclass(frozen=True)
class Operator:
    """A single IR operator.

    Attributes:
        name: Unique operator name, conventionally upper-case (``"ADD"``).
        arity: Number of child nodes every node with this operator has.
        is_statement: True if nodes with this operator are statements
            (forest roots) rather than value-producing expressions.
        has_payload: True if nodes carry an immediate payload (constants,
            symbol names, branch targets).
        doc: Short human-readable description.
    """

    name: str
    arity: int
    is_statement: bool = False
    has_payload: bool = False
    doc: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise IRError("operator name must be non-empty")
        if self.arity < 0:
            raise IRError(f"operator {self.name!r} has negative arity")

    @property
    def is_leaf(self) -> bool:
        """True if the operator takes no children."""
        return self.arity == 0

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name

    def __repr__(self) -> str:
        return f"Operator({self.name!r}, arity={self.arity})"


@dataclass
class OperatorSet:
    """A registry of operators forming one IR dialect.

    Operator sets are used by grammars to resolve operator names that
    appear in grammar text, and by IR validation to check arities.
    """

    name: str = "ir"
    _ops: dict[str, Operator] = field(default_factory=dict)

    def register(self, op: Operator) -> Operator:
        """Register *op*, rejecting duplicate names."""
        if op.name in self._ops:
            raise IRError(f"duplicate operator {op.name!r} in operator set {self.name!r}")
        self._ops[op.name] = op
        return op

    def define(
        self,
        name: str,
        arity: int,
        *,
        is_statement: bool = False,
        has_payload: bool = False,
        doc: str = "",
    ) -> Operator:
        """Create and register an operator in one step."""
        return self.register(
            Operator(
                name=name,
                arity=arity,
                is_statement=is_statement,
                has_payload=has_payload,
                doc=doc,
            )
        )

    def __contains__(self, name: str) -> bool:
        return name in self._ops

    def __getitem__(self, name: str) -> Operator:
        try:
            return self._ops[name]
        except KeyError:
            raise IRError(f"unknown operator {name!r} in operator set {self.name!r}") from None

    def get(self, name: str, default: Operator | None = None) -> Operator | None:
        return self._ops.get(name, default)

    def __iter__(self) -> Iterator[Operator]:
        return iter(self._ops.values())

    def __len__(self) -> int:
        return len(self._ops)

    def names(self) -> list[str]:
        """All operator names, in registration order."""
        return list(self._ops)

    def copy(self, name: str | None = None) -> "OperatorSet":
        """A shallow copy, optionally renamed, for dialect extension."""
        clone = OperatorSet(name=name or self.name)
        clone._ops = dict(self._ops)
        return clone

    def subset(self, names: Iterable[str]) -> "OperatorSet":
        """A new operator set containing only the named operators."""
        sub = OperatorSet(name=f"{self.name}-subset")
        for op_name in names:
            sub.register(self[op_name])
        return sub


def default_operators() -> OperatorSet:
    """Build the default IR operator set used throughout the library.

    The set is modelled on lcc's tree IR: leaves for constants,
    addresses and registers; memory access; integer arithmetic and
    bitwise operators; comparisons folded into conditional branches;
    calls with explicit argument statements; and a handful of
    statement operators.
    """
    ops = OperatorSet(name="default")

    # Leaves (value-producing, payload-carrying).
    ops.define("CNST", 0, has_payload=True, doc="integer constant")
    ops.define("ADDRL", 0, has_payload=True, doc="address of a local (frame slot index)")
    ops.define("ADDRG", 0, has_payload=True, doc="address of a global (symbol name)")
    ops.define("ADDRF", 0, has_payload=True, doc="address of a formal parameter")
    ops.define("REG", 0, has_payload=True, doc="virtual register")
    ops.define("TEMP", 0, has_payload=True, doc="compiler temporary")

    # Memory.
    ops.define("LOAD", 1, doc="load the value at an address")
    ops.define("STORE", 2, is_statement=True, doc="store kid[1] to address kid[0]")

    # Integer arithmetic.
    ops.define("ADD", 2, doc="integer addition")
    ops.define("SUB", 2, doc="integer subtraction")
    ops.define("MUL", 2, doc="integer multiplication")
    ops.define("DIV", 2, doc="integer division (truncating)")
    ops.define("MOD", 2, doc="integer remainder")
    ops.define("NEG", 1, doc="integer negation")

    # Bitwise.
    ops.define("AND", 2, doc="bitwise and")
    ops.define("OR", 2, doc="bitwise or")
    ops.define("XOR", 2, doc="bitwise xor")
    ops.define("NOT", 1, doc="bitwise complement")
    ops.define("SHL", 2, doc="shift left")
    ops.define("SHR", 2, doc="arithmetic shift right")

    # Conversions (kept as a single generic operator).
    ops.define("CVT", 1, doc="integer width/sign conversion")

    # Comparisons producing a value (0/1).
    ops.define("CMPEQ", 2, doc="compare equal, value 0/1")
    ops.define("CMPNE", 2, doc="compare not-equal, value 0/1")
    ops.define("CMPLT", 2, doc="compare less-than, value 0/1")
    ops.define("CMPLE", 2, doc="compare less-or-equal, value 0/1")
    ops.define("CMPGT", 2, doc="compare greater-than, value 0/1")
    ops.define("CMPGE", 2, doc="compare greater-or-equal, value 0/1")

    # Control flow (statements).
    ops.define("LABEL", 0, is_statement=True, has_payload=True, doc="branch target")
    ops.define("JUMP", 0, is_statement=True, has_payload=True, doc="unconditional branch")
    ops.define("BREQ", 2, is_statement=True, has_payload=True, doc="branch if equal")
    ops.define("BRNE", 2, is_statement=True, has_payload=True, doc="branch if not equal")
    ops.define("BRLT", 2, is_statement=True, has_payload=True, doc="branch if less-than")
    ops.define("BRLE", 2, is_statement=True, has_payload=True, doc="branch if less-or-equal")
    ops.define("BRGT", 2, is_statement=True, has_payload=True, doc="branch if greater-than")
    ops.define("BRGE", 2, is_statement=True, has_payload=True, doc="branch if greater-or-equal")

    # Calls.
    ops.define("ARG", 1, is_statement=True, doc="pass an argument to the next call")
    ops.define("CALL", 1, has_payload=True, doc="call, value-producing; kid is callee address")
    ops.define("CALLV", 1, is_statement=True, has_payload=True, doc="call for effect only")
    ops.define("RET", 1, is_statement=True, doc="return a value")
    ops.define("RETV", 0, is_statement=True, doc="return with no value")

    # Miscellaneous statements.
    ops.define("EXPR", 1, is_statement=True, doc="evaluate for side effects, discard value")
    ops.define("NOP", 0, is_statement=True, doc="no operation")

    return ops


#: A shared, module-level default operator set.  Callers that need to
#: extend the dialect should work on :func:`default_operators` output or
#: :meth:`OperatorSet.copy` instead of mutating this instance.
DEFAULT_OPERATORS = default_operators()
