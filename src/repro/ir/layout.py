"""Shared address-space layout for the IR interpreter and the machine simulator.

Both the IR-level interpreter (:mod:`repro.ir.interp`) and the target
machine simulator (:mod:`repro.machine.simulator`) execute the same
programs (directly vs. via generated code).  To make their results
comparable they share one flat 64-bit address space with fixed regions
for globals, frame locals, and formal parameters.
"""

from __future__ import annotations

__all__ = [
    "WORD_SIZE",
    "GLOBAL_BASE",
    "FRAME_BASE",
    "ARG_BASE",
    "global_address",
    "local_address",
    "formal_address",
    "wrap",
]

#: Size of one machine word in bytes.
WORD_SIZE = 8

#: Base address of the global data segment.
GLOBAL_BASE = 0x0001_0000

#: Base address of the current frame's local slots.
FRAME_BASE = 0x0010_0000

#: Base address of the current frame's incoming-argument slots.
ARG_BASE = 0x0020_0000

_MASK = (1 << 64) - 1
_SIGN = 1 << 63


def wrap(value: int) -> int:
    """Wrap *value* to a signed 64-bit integer (two's complement)."""
    value &= _MASK
    if value & _SIGN:
        value -= 1 << 64
    return value


def global_address(slot: int) -> int:
    """Address of global slot *slot*."""
    return GLOBAL_BASE + slot * WORD_SIZE


def local_address(slot: int, frame: int = 0) -> int:
    """Address of local slot *slot* in frame number *frame*."""
    return FRAME_BASE + frame * 0x1000 + slot * WORD_SIZE


def formal_address(slot: int, frame: int = 0) -> int:
    """Address of formal-parameter slot *slot* in frame number *frame*."""
    return ARG_BASE + frame * 0x1000 + slot * WORD_SIZE
