"""Traversal helpers over IR trees and DAGs."""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro.errors import IRError
from repro.ir.node import Node

__all__ = [
    "postorder",
    "preorder",
    "topological_order",
    "ready_postorder",
    "iter_unique",
    "check_acyclic",
    "shared_nodes",
]


def postorder(root: Node, visited: set[int] | None = None) -> Iterator[Node]:
    """Yield every node reachable from *root*, children before parents.

    Shared nodes (DAG) are yielded once.  Passing a *visited* set shares
    it with the caller (and across calls), so multi-root traversals can
    skip subtrees already emitted — nodes in *visited* are not yielded.
    """
    if visited is None:
        visited = set()
    stack: list[tuple[Node, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            yield node
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for kid in reversed(node.kids):
            if id(kid) not in visited:
                stack.append((kid, False))


def preorder(root: Node) -> Iterator[Node]:
    """Yield every node reachable from *root*, parents before children."""
    visited: set[int] = set()
    stack = [root]
    while stack:
        node = stack.pop()
        if id(node) in visited:
            continue
        visited.add(id(node))
        yield node
        stack.extend(reversed(node.kids))


def iter_unique(roots: Iterable[Node]) -> Iterator[Node]:
    """Yield every distinct node reachable from *roots*, children first.

    The visited set is shared across roots, so subtrees shared between
    roots are walked (and yielded) once.
    """
    visited: set[int] = set()
    for root in roots:
        yield from postorder(root, visited)


def topological_order(roots: Iterable[Node]) -> list[Node]:
    """Children-first order over all nodes reachable from *roots*.

    This is the order in which the labeler must process a DAG: every
    node appears after all of its children, each node exactly once.
    """
    return list(iter_unique(roots))


def ready_postorder(roots: Iterable[Node], done: "set[int] | dict[int, object]") -> Iterator[Node]:
    """Fused children-first walk sharing its visited set with the caller.

    Yields each node reachable from *roots* whose id is not in *done*,
    the moment its last child is in *done* — no intermediate order list
    is materialised and no second visited set is kept, so a labeler can
    pass its own per-node result mapping as *done* and pay for exactly
    one bookkeeping structure.

    Contract: the caller must add ``id(node)`` to *done* before
    advancing the iterator past a yielded node (storing the node's
    labeling result in a *done* dict keyed by id does exactly that).
    Nodes already in *done* at visit time are skipped along with the
    re-walk of their subtrees, which is what makes multi-root batches
    over node-sharing forests label each shared node once.
    """
    stack = list(roots)
    while stack:
        node = stack.pop()
        if id(node) in done:
            continue
        deferred = False
        for kid in node.kids:
            if id(kid) not in done:
                if not deferred:
                    stack.append(node)
                    deferred = True
                stack.append(kid)
        if deferred:
            continue
        yield node


def check_acyclic(roots: Iterable[Node]) -> None:
    """Raise :class:`~repro.errors.IRError` if the graph has a cycle."""
    WHITE, GREY, BLACK = 0, 1, 2
    color: dict[int, int] = {}

    for root in roots:
        stack: list[tuple[Node, bool]] = [(root, False)]
        while stack:
            node, leaving = stack.pop()
            if leaving:
                color[id(node)] = BLACK
                continue
            state = color.get(id(node), WHITE)
            if state == BLACK:
                continue
            if state == GREY:
                raise IRError(f"cycle detected through node {node.op.name}")
            color[id(node)] = GREY
            stack.append((node, True))
            for kid in node.kids:
                kid_state = color.get(id(kid), WHITE)
                if kid_state == GREY:
                    raise IRError(f"cycle detected through node {kid.op.name}")
                if kid_state == WHITE:
                    stack.append((kid, False))


def shared_nodes(roots: Iterable[Node]) -> list[Node]:
    """Nodes with more than one parent (the DAG sharing points)."""
    parents: dict[int, int] = {}
    node_by_id: dict[int, Node] = {}
    for node in iter_unique(roots):
        for kid in node.kids:
            parents[id(kid)] = parents.get(id(kid), 0) + 1
            node_by_id[id(kid)] = kid
    return [node_by_id[nid] for nid, count in parents.items() if count > 1]


def map_nodes(root: Node, fn: Callable[[Node], Node | None]) -> Node:
    """Rebuild the tree under *root*, applying *fn* bottom-up.

    *fn* receives a node whose children have already been rewritten and
    returns a replacement node, or ``None`` to keep the node as-is.
    Sharing is preserved: a shared child is rewritten once.
    """
    rewritten: dict[int, Node] = {}

    def rewrite(node: Node) -> Node:
        cached = rewritten.get(id(node))
        if cached is not None:
            return cached
        new_kids = [rewrite(kid) for kid in node.kids]
        candidate = node if all(a is b for a, b in zip(new_kids, node.kids)) else node.replace_kids(new_kids)
        result = fn(candidate)
        if result is None:
            result = candidate
        rewritten[id(node)] = result
        return result

    return rewrite(root)
