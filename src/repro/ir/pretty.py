"""Pretty-printing of IR trees, DAGs and forests."""

from __future__ import annotations

from typing import Iterable

from repro.ir.node import Forest, Node
from repro.ir.traversal import shared_nodes

__all__ = ["format_node", "format_forest", "to_dot"]


def format_node(node: Node, indent: str = "  ") -> str:
    """An indented, multi-line rendering of the tree under *node*.

    Shared nodes (DAG) are printed once and referenced by ``@id`` on
    subsequent occurrences.
    """
    shared = {id(n) for n in shared_nodes([node])}
    printed: set[int] = set()
    lines: list[str] = []

    def walk(current: Node, depth: int) -> None:
        payload = f" [{current.value!r}]" if current.value is not None else ""
        marker = ""
        if id(current) in shared:
            if id(current) in printed:
                lines.append(f"{indent * depth}{current.op.name}{payload} @shared#{current.nid}")
                return
            printed.add(id(current))
            marker = f" #shared{current.nid}"
        lines.append(f"{indent * depth}{current.op.name}{payload}{marker}")
        for kid in current.kids:
            walk(kid, depth + 1)

    walk(node, 0)
    return "\n".join(lines)


def format_forest(forest: Forest | Iterable[Node]) -> str:
    """Render every root of *forest*, separated by blank lines."""
    roots = list(forest.roots if isinstance(forest, Forest) else forest)
    return "\n\n".join(format_node(root) for root in roots)


def to_dot(forest: Forest | Iterable[Node], name: str = "ir") -> str:
    """A Graphviz ``dot`` rendering of the forest (for documentation)."""
    roots = list(forest.roots if isinstance(forest, Forest) else forest)
    lines = [f"digraph {name} {{", "  node [shape=box, fontname=monospace];"]
    seen: set[int] = set()

    def walk(node: Node) -> None:
        if id(node) in seen:
            return
        seen.add(id(node))
        payload = f"\\n{node.value!r}" if node.value is not None else ""
        lines.append(f'  n{id(node)} [label="{node.op.name}{payload}"];')
        for i, kid in enumerate(node.kids):
            lines.append(f'  n{id(node)} -> n{id(kid)} [label="{i}"];')
            walk(kid)

    for root in roots:
        walk(root)
    lines.append("}")
    return "\n".join(lines)
