"""Structural validation of IR forests.

Two layers:

* :func:`validate_node` — the original cheap per-node check, raising a
  plain :class:`~repro.errors.IRError` on the first problem.  Used by
  code that builds nodes incrementally.
* :func:`validate_forest` — a full forest validator that walks the node
  graph defensively (it tolerates cycles and non-``Node`` children
  instead of crashing), collects *all* problems as structured
  :class:`ValidationIssue` records with stable ``IR00x`` codes, and
  raises a :class:`ForestValidationError` carrying the issue list.
  The :class:`~repro.selection.selector.Selector` runs it behind the
  ``SelectorConfig(validate=True)`` debug flag.

Issue codes:

======  ==============================================================
IR001   cycle in the node graph
IR002   dangling child (a kid or root that is not a ``Node``)
IR003   operator not in the supplied operator set
IR004   child count does not match the node's own operator arity
IR005   node's operator arity conflicts with the same-named operator in
        the supplied set (cross-dialect node)
IR006   payload-carrying operator with no payload
IR007   payload on an operator that declares none
IR008   statement operator used as an operand
IR009   forest root is not a statement operator
======  ==============================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import IRError
from repro.ir.node import Forest, Node
from repro.ir.ops import OperatorSet

__all__ = [
    "ForestValidationError",
    "ValidationIssue",
    "validate_forest",
    "validate_node",
]


@dataclass(frozen=True)
class ValidationIssue:
    """One structural problem found in a forest."""

    code: str
    message: str
    #: Operator name of the offending node ("" when unknown).
    operator: str = ""
    #: ``id()`` of the offending node, to correlate issues on shared nodes.
    nid: int = 0

    def format(self) -> str:
        where = f" [{self.operator}]" if self.operator else ""
        return f"{self.code}{where}: {self.message}"


class ForestValidationError(IRError):
    """Raised by :func:`validate_forest`; carries all collected issues."""

    def __init__(self, issues: list[ValidationIssue]) -> None:
        self.issues = issues
        lines = [issue.format() for issue in issues]
        super().__init__(
            f"forest validation failed with {len(issues)} issue(s):\n  " + "\n  ".join(lines)
        )


def validate_node(node: Node, operators: OperatorSet | None = None) -> None:
    """Check one node (arity, payload presence, operator membership)."""
    if operators is not None and node.op.name not in operators:
        raise IRError(f"node uses operator {node.op.name!r} not in operator set {operators.name!r}")
    if len(node.kids) != node.op.arity:
        raise IRError(
            f"node {node.op.name} has {len(node.kids)} children, expected {node.op.arity}"
        )
    if node.op.has_payload and node.value is None:
        raise IRError(f"node {node.op.name} requires a payload but has none")
    if not node.op.has_payload and node.value is not None:
        raise IRError(f"node {node.op.name} carries unexpected payload {node.value!r}")
    for kid in node.kids:
        if kid.op.is_statement:
            raise IRError(
                f"statement operator {kid.op.name} used as operand of {node.op.name}"
            )


def _check_one(node: Node, operators: OperatorSet | None, issues: list[ValidationIssue]) -> None:
    """Collect per-node issues (the structured analogue of validate_node)."""
    name = node.op.name
    nid = id(node)
    if operators is not None:
        declared = operators.get(name)
        if declared is None:
            issues.append(
                ValidationIssue(
                    "IR003",
                    f"operator {name!r} is not in operator set {operators.name!r}",
                    operator=name,
                    nid=nid,
                )
            )
        elif declared.arity != node.op.arity:
            issues.append(
                ValidationIssue(
                    "IR005",
                    f"node's operator {name} has arity {node.op.arity} but the "
                    f"operator set declares arity {declared.arity}",
                    operator=name,
                    nid=nid,
                )
            )
    if len(node.kids) != node.op.arity:
        issues.append(
            ValidationIssue(
                "IR004",
                f"node {name} has {len(node.kids)} children, expected {node.op.arity}",
                operator=name,
                nid=nid,
            )
        )
    if node.op.has_payload and node.value is None:
        issues.append(
            ValidationIssue(
                "IR006", f"node {name} requires a payload but has none", operator=name, nid=nid
            )
        )
    if not node.op.has_payload and node.value is not None:
        issues.append(
            ValidationIssue(
                "IR007",
                f"node {name} carries unexpected payload {node.value!r}",
                operator=name,
                nid=nid,
            )
        )
    for kid in node.kids:
        if isinstance(kid, Node) and kid.op.is_statement:
            issues.append(
                ValidationIssue(
                    "IR008",
                    f"statement operator {kid.op.name} used as operand of {name}",
                    operator=kid.op.name,
                    nid=id(kid),
                )
            )


def validate_forest(
    forest: Forest | Iterable[Node],
    operators: OperatorSet | None = None,
    *,
    collect: bool = False,
) -> list[ValidationIssue]:
    """Validate a whole forest, collecting every structural problem.

    Checks: roots are statement nodes (IR009), children are real nodes
    (IR002), the node graph is acyclic (IR001), and every reachable node
    is well-formed (IR003–IR008).  The walk is defensive — cycles and
    dangling children are reported instead of crashing the traversal.

    Args:
        forest: A :class:`~repro.ir.node.Forest` or iterable of roots.
        operators: Operator set to check membership and arity against;
            ``None`` skips the dialect checks (IR003/IR005).
        collect: When true, return the issue list instead of raising.

    Returns:
        The (possibly empty) issue list when *collect* is true, or an
        empty list after a clean run.

    Raises:
        ForestValidationError: When issues were found and *collect* is
            false.
    """
    roots = list(forest.roots if isinstance(forest, Forest) else forest)
    issues: list[ValidationIssue] = []

    seen: set[int] = set()
    dangling = False
    for root in roots:
        if not isinstance(root, Node):
            issues.append(
                ValidationIssue("IR002", f"forest root {root!r} is not an IR node")
            )
            dangling = True
            continue
        if not root.op.is_statement:
            issues.append(
                ValidationIssue(
                    "IR009",
                    f"forest root {root.op.name} is not a statement operator",
                    operator=root.op.name,
                    nid=id(root),
                )
            )
        # Iterative DFS with a visited set: safe on cyclic graphs (each
        # node is expanded once) and on non-Node children (filtered).
        stack = [root]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            _check_one(node, operators, issues)
            for kid in node.kids:
                if not isinstance(kid, Node):
                    issues.append(
                        ValidationIssue(
                            "IR002",
                            f"child {kid!r} of node {node.op.name} is not an IR node",
                            operator=node.op.name,
                            nid=id(node),
                        )
                    )
                    dangling = True
                elif id(kid) not in seen:
                    stack.append(kid)

    # Cycle detection needs a clean graph (it follows kid.kids), so only
    # run it when no dangling children were found.
    if not dangling:
        cycle = _find_cycle(roots)
        if cycle is not None:
            issues.append(
                ValidationIssue(
                    "IR001",
                    f"cycle in the node graph through {cycle.op.name}",
                    operator=cycle.op.name,
                    nid=id(cycle),
                )
            )

    if issues and not collect:
        raise ForestValidationError(issues)
    return issues


def _find_cycle(roots: list[Node]) -> Node | None:
    """Return a node on a cycle, or ``None`` when the graph is acyclic."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color: dict[int, int] = {}
    for root in roots:
        if not isinstance(root, Node) or color.get(id(root), WHITE) == BLACK:
            continue
        # Iterative DFS with explicit enter/exit frames.
        stack: list[tuple[Node, bool]] = [(root, False)]
        while stack:
            node, exiting = stack.pop()
            if exiting:
                color[id(node)] = BLACK
                continue
            state = color.get(id(node), WHITE)
            if state == BLACK:
                continue
            if state == GRAY:
                continue
            color[id(node)] = GRAY
            stack.append((node, True))
            for kid in node.kids:
                if not isinstance(kid, Node):
                    continue
                kid_state = color.get(id(kid), WHITE)
                if kid_state == GRAY:
                    return kid
                if kid_state == WHITE:
                    stack.append((kid, False))
    return None
