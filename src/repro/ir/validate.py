"""Structural validation of IR forests."""

from __future__ import annotations

from typing import Iterable

from repro.errors import IRError
from repro.ir.node import Forest, Node
from repro.ir.ops import OperatorSet
from repro.ir.traversal import check_acyclic, iter_unique

__all__ = ["validate_node", "validate_forest"]


def validate_node(node: Node, operators: OperatorSet | None = None) -> None:
    """Check one node (arity, payload presence, operator membership)."""
    if operators is not None and node.op.name not in operators:
        raise IRError(f"node uses operator {node.op.name!r} not in operator set {operators.name!r}")
    if len(node.kids) != node.op.arity:
        raise IRError(
            f"node {node.op.name} has {len(node.kids)} children, expected {node.op.arity}"
        )
    if node.op.has_payload and node.value is None:
        raise IRError(f"node {node.op.name} requires a payload but has none")
    if not node.op.has_payload and node.value is not None:
        raise IRError(f"node {node.op.name} carries unexpected payload {node.value!r}")
    for kid in node.kids:
        if kid.op.is_statement:
            raise IRError(
                f"statement operator {kid.op.name} used as operand of {node.op.name}"
            )


def validate_forest(forest: Forest | Iterable[Node], operators: OperatorSet | None = None) -> None:
    """Validate a whole forest.

    Checks: roots are statements, all nodes are well-formed, operands
    are value-producing, and the node graph is acyclic.
    """
    roots = list(forest.roots if isinstance(forest, Forest) else forest)
    check_acyclic(roots)
    for root in roots:
        if not root.op.is_statement:
            raise IRError(f"forest root {root.op.name} is not a statement operator")
    for node in iter_unique(roots):
        validate_node(node, operators)
