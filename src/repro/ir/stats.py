"""Statistics over IR forests (operator mix, sizes, sharing).

The workload generators use these statistics to check that synthetic
forests have the intended operator mix, and the experiment drivers
report them alongside labeling measurements.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from repro.ir.node import Forest, Node
from repro.ir.traversal import iter_unique, shared_nodes

__all__ = ["ForestStats", "forest_stats"]


@dataclass
class ForestStats:
    """Aggregate statistics of one forest."""

    name: str
    roots: int
    nodes: int
    leaves: int
    shared: int
    max_depth: int
    operator_histogram: Counter = field(default_factory=Counter)

    @property
    def statements(self) -> int:
        """Number of statement roots (alias of :attr:`roots`)."""
        return self.roots

    def operator_mix(self) -> dict[str, float]:
        """Operator frequencies as fractions of all nodes."""
        total = sum(self.operator_histogram.values())
        if total == 0:
            return {}
        return {op: count / total for op, count in self.operator_histogram.items()}

    def summary(self) -> str:
        return (
            f"{self.name}: {self.roots} roots, {self.nodes} nodes "
            f"({self.leaves} leaves, {self.shared} shared), depth {self.max_depth}"
        )


def forest_stats(forest: Forest | Iterable[Node], name: str | None = None) -> ForestStats:
    """Compute :class:`ForestStats` for *forest*."""
    if isinstance(forest, Forest):
        roots = forest.roots
        forest_name = name or forest.name
    else:
        roots = list(forest)
        forest_name = name or "forest"

    histogram: Counter = Counter()
    leaves = 0
    nodes = 0
    for node in iter_unique(roots):
        nodes += 1
        histogram[node.op.name] += 1
        if node.is_leaf:
            leaves += 1

    max_depth = max((root.depth() for root in roots), default=0)
    shared = len(shared_nodes(roots))

    return ForestStats(
        name=forest_name,
        roots=len(roots),
        nodes=nodes,
        leaves=leaves,
        shared=shared,
        max_depth=max_depth,
        operator_histogram=histogram,
    )
