"""Worker process: serves ``select_many`` batches over a duplex pipe.

One worker process per supervisor slot.  Each worker owns an
:class:`~repro.selection.resilience.ArtifactCache` view of the shared
cache directory and a lazily-built :class:`Selector` per tenant: the
first batch for a tenant loads the fingerprint-keyed artifact the
supervisor precompiled (one build amortized across all workers), or —
if the cache is cold — compiles on miss under the *request's* remaining
deadline budget.

Wire protocol (tuples over one ``multiprocessing.Pipe``):

parent → worker
    ``("batch", batch_id, tenant, [(request_id, forest), ...], deadline_at_ns)``
        One coalesced batch for one tenant; *deadline_at_ns* is the
        batch's absolute ``monotonic_ns`` deadline (system-wide on
        Linux, so comparable across processes) or ``None``.
    ``("ping", token)`` — heartbeat probe.
    ``("stop",)`` — orderly shutdown.

worker → parent
    ``("ready", pid)`` — sent once at startup.
    ``("result", batch_id, rows, snapshot)`` — *rows* is one
        ``(request_id, status, payload)`` triple per request, where
        *status* is ``"ok"`` (payload: per-root semantic values),
        ``"failure"`` (payload: the
        :class:`~repro.selection.resilience.SelectionFailure`), or
        ``"deadline"`` (payload: a message string); *snapshot* carries
        the worker's aggregated resilience/cache counters for
        ``stats()`` merging.
    ``("pong", token)`` — heartbeat reply.

Fault contract: selection runs ``on_error="isolate"`` so per-forest
faults come back as typed ``failure`` rows; a whole-batch
:class:`~repro.errors.DeadlineExceededError` becomes ``deadline`` rows.
``BaseException`` (simulated crashes, ``os._exit`` in a poisoned
action, SIGKILL) takes the process down — that is the supervisor's
department: the pipe sentinel fires and every in-flight request is
re-dispatched.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import DeadlineExceededError, ServiceError
from repro.selection.resilience import (
    ArtifactCache,
    SelectionFailure,
    new_resilience_counters,
)
from repro.service.budgets import RequestBudget

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing.connection import Connection

    from repro.grammar.grammar import Grammar
    from repro.selection.selector import Selector

__all__ = ["WorkerSettings", "worker_main"]


@dataclass(frozen=True)
class WorkerSettings:
    """Per-worker knobs, inherited at fork time.

    Attributes:
        mode: Selector mode for compile-on-miss builds.
        max_states: State-pool cap for compile-on-miss builds.
        context_factory: Builds a fresh emit context per batch (``None``
            → actions run with ``context=None``).
        collect_cover: Collect cover costs per batch (off by default —
            the service serves values, not reports).
        observe: Build a worker-local
            :class:`~repro.obs.Observability` bundle and wire it
            through the artifact cache and tenant selectors; its
            metrics snapshot rides home on every ``result`` tuple for
            supervisor-side aggregation.
    """

    mode: str = "eager"
    max_states: int | None = None
    context_factory: Callable[[], Any] | None = None
    collect_cover: bool = False
    observe: bool = False


def _failure_rows(requests: list[tuple[int, Any]], error: Exception) -> list[tuple]:
    """One typed ``failure`` row per request, sharing one exception."""
    return [
        (rid, "failure", SelectionFailure(i, getattr(f, "name", "?"), "validate", error))
        for i, (rid, f) in enumerate(requests)
    ]


def _serve_batch(
    selectors: dict[str, "Selector"],
    cache: ArtifactCache,
    tenants: dict[str, "Grammar"],
    settings: WorkerSettings,
    tenant: str,
    requests: list[tuple[int, Any]],
    deadline_at_ns: int | None,
) -> list[tuple]:
    """Run one batch and return its ``(request_id, status, payload)`` rows."""
    budget = RequestBudget.until(deadline_at_ns, max_states=settings.max_states)
    if budget.expired():
        return [(rid, "deadline", "expired before worker pickup") for rid, _ in requests]

    grammar = tenants.get(tenant)
    if grammar is None:
        return _failure_rows(requests, ServiceError(f"unknown tenant {tenant!r}"))

    selector = selectors.get(tenant)
    if selector is None:
        # First touch: load the shared artifact, or compile on miss
        # under the request's remaining clock (deadline propagation).
        try:
            selector = cache.selector_for(grammar, budget=budget.build_budget())
        except DeadlineExceededError:
            return [(rid, "deadline", "deadline during tenant build") for rid, _ in requests]
        except Exception as exc:
            return _failure_rows(requests, exc)
        selectors[tenant] = selector

    context = settings.context_factory() if settings.context_factory is not None else None
    forests = [forest for _, forest in requests]
    try:
        result = selector.select_many(
            forests,
            context=context,
            on_error="isolate",
            collect_cover=settings.collect_cover,
            budget=budget,
        )
    except DeadlineExceededError as exc:
        return [(rid, "deadline", str(exc)) for rid, _ in requests]

    rows: list[tuple] = []
    for (rid, _), value in zip(requests, result.values):
        if isinstance(value, SelectionFailure):
            rows.append((rid, "failure", value))
        else:
            rows.append((rid, "ok", value))
    return rows


def _merge_counters(total: dict[str, Any], part: dict[str, Any]) -> None:
    for key, value in part.items():
        if isinstance(value, dict):
            slot = total.setdefault(key, {})
            for inner, count in value.items():
                if isinstance(count, int):
                    slot[inner] = slot.get(inner, 0) + count
        elif isinstance(value, int) and isinstance(total.get(key, 0), int):
            total[key] = total.get(key, 0) + value


def _snapshot(
    selectors: dict[str, "Selector"],
    cache: ArtifactCache,
    obs: Any = None,
) -> dict[str, Any]:
    """The worker's resilience view, summed across its tenant selectors."""
    resilience = new_resilience_counters()
    for selector in selectors.values():
        _merge_counters(resilience, selector.stats()["resilience"])
    cache_stats = dict(cache.stats())
    cache_stats.pop("events", None)
    snapshot = {"pid": os.getpid(), "resilience": resilience, "cache": cache_stats}
    if obs is not None and obs.enabled:
        # Cumulative (not delta) registry state: the supervisor keeps
        # only each worker's latest snapshot and merges once.
        snapshot["obs"] = obs.metrics.snapshot()
    return snapshot


def _sanitize_rows(rows: list[tuple]) -> list[tuple]:
    """Replace unpicklable payloads with typed, picklable failures.

    A tenant action can return anything — including objects that
    cannot cross the pipe.  Each offending row degrades to a
    ``failure`` with a :class:`ServiceError`; picklable rows pass
    through untouched.
    """
    safe: list[tuple] = []
    for rid, status, payload in rows:
        try:
            pickle.dumps(payload)
        except Exception as exc:
            error: Exception = ServiceError(
                f"unpicklable {status} payload ({type(exc).__name__}: {exc})"
            )
            if isinstance(payload, SelectionFailure):
                payload = SelectionFailure(
                    payload.index,
                    payload.forest,
                    payload.phase,
                    ServiceError(f"{payload.error_type}: {payload.error}"),
                    payload.node,
                    payload.roots_completed,
                )
            else:
                payload = SelectionFailure(0, "?", "reduce", error)
            safe.append((rid, "failure", payload))
        else:
            safe.append((rid, status, payload))
    return safe


def _safe_send(conn: "Connection", message: tuple) -> None:
    """Send, degrading unpicklable result rows instead of dying."""
    try:
        conn.send(message)
    except (BrokenPipeError, OSError):  # parent gone: nothing to report to
        raise
    except Exception:
        if message[0] != "result":
            raise
        kind, batch_id, rows, snapshot = message
        conn.send((kind, batch_id, _sanitize_rows(rows), snapshot))


def worker_main(
    conn: "Connection",
    tenants: dict[str, "Grammar"],
    cache_dir: str,
    settings: WorkerSettings,
) -> None:
    """Worker process entry point (forked by the supervisor)."""
    obs = None
    if settings.observe:
        from repro.obs import Observability

        obs = Observability(trace_capacity=1024)
    cache = ArtifactCache(Path(cache_dir), obs=obs)
    selectors: dict[str, Selector] = {}
    conn.send(("ready", os.getpid()))
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):  # parent died or closed: exit quietly
            return
        kind = message[0]
        if kind == "stop":
            return
        if kind == "ping":
            conn.send(("pong", message[1]))
            continue
        if kind != "batch":
            conn.send(("error", f"unknown message kind {kind!r}"))
            continue
        _, batch_id, tenant, requests, deadline_at_ns = message
        rows = _serve_batch(
            selectors, cache, tenants, settings, tenant, requests, deadline_at_ns
        )
        _safe_send(conn, ("result", batch_id, rows, _snapshot(selectors, cache, obs)))
