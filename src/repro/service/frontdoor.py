"""Front door: admission, batching, deadlines, retries, breakers, shedding.

:class:`SelectionService` is the serving layer's public face.  Callers
:meth:`~SelectionService.submit` one forest per request and get a
:class:`ServiceFuture`; a single event thread owns all request and
worker state:

* **admission** — a bounded queue: when ``queue_limit`` requests are
  already waiting, the request is *shed* immediately with a typed
  :class:`~repro.errors.OverloadError` instead of adding unbounded
  latency.  Queue depth high-water is tracked.
* **breakers** — one :class:`~repro.service.breaker.CircuitBreaker` per
  tenant: after K consecutive failures the tenant's requests fast-fail
  with :class:`~repro.errors.CircuitOpenError` until a cooldown admits
  a half-open probe batch; a successful probe closes the circuit.
* **batching** — queued requests coalesce per tenant into
  ``select_many`` batches (up to ``max_batch``) dispatched to idle
  workers.
* **deadlines** — every request carries an absolute monotonic deadline
  (``default_timeout_s`` unless overridden per call).  Deadlines are
  enforced at every stage: expiry in the queue, cooperative
  cancellation inside the worker's label/reduce loops (via
  :class:`~repro.service.budgets.RequestBudget`), and a *watchdog*
  that SIGKILLs a worker whose batch overstays its deadline by
  ``hang_grace_s`` (a wedged action cannot hold a slot hostage).
* **retries** — a failed request is retried with capped, jittered
  exponential backoff up to ``retries`` times while its deadline
  allows.
* **re-dispatch** — when a worker dies, its in-flight requests requeue
  at the *front* transparently; a request that kills
  ``max_redispatches`` workers in a row is a poison pill and fails
  with :class:`~repro.errors.RequestLostError` instead of crash-looping
  the pool.

Every submitted request resolves to exactly one
:class:`ServiceResponse` — success, or a *typed* failure — which is
the "zero lost requests" contract the chaos bench asserts.
"""

from __future__ import annotations

import os
import random
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mpconnection
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    OverloadError,
    RequestLostError,
    ServiceError,
)
from repro.obs import MetricsRegistry, resolve_obs
from repro.selection.resilience import new_resilience_counters
from repro.service.breaker import CircuitBreaker
from repro.service.supervisor import Batch, Supervisor, WorkerHandle
from repro.service.worker import WorkerSettings

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.grammar.grammar import Grammar
    from repro.ir.node import Forest

__all__ = [
    "SelectionService",
    "ServiceConfig",
    "ServiceFuture",
    "ServiceResponse",
    "ServiceStats",
]

_UNSET = object()


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one :class:`SelectionService` (see module docs)."""

    workers: int = 2
    queue_limit: int = 64
    max_batch: int = 8
    default_timeout_s: float | None = 30.0
    retries: int = 2
    retry_backoff_base_s: float = 0.01
    retry_backoff_max_s: float = 0.25
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 0.25
    max_redispatches: int = 3
    hang_grace_s: float = 2.0
    heartbeat_interval_s: float = 0.5
    restart_backoff_base_s: float = 0.02
    restart_backoff_max_s: float = 1.0
    mode: str = "eager"
    max_states: int | None = None
    precompile: bool = True
    seed: int | None = None


@dataclass
class ServiceResponse:
    """The terminal outcome of one request (exactly one per submit).

    *status* is one of ``ok`` / ``failure`` / ``deadline`` / ``shed`` /
    ``circuit_open`` / ``cancelled``; *error* holds the typed failure
    (a :class:`~repro.selection.resilience.SelectionFailure` or a
    :class:`~repro.errors.ServiceError` subclass) when not ``ok``.
    """

    request_id: int
    tenant: str
    status: str
    value: Any = None
    error: Any = None
    latency_ns: int = 0
    attempts: int = 0
    re_dispatches: int = 0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def error_type(self) -> str | None:
        return type(self.error).__name__ if self.error is not None else None

    def as_row(self) -> dict[str, object]:
        return {
            "request_id": self.request_id,
            "tenant": self.tenant,
            "status": self.status,
            "ok": self.ok,
            "error_type": self.error_type,
            "latency_ns": self.latency_ns,
            "attempts": self.attempts,
            "re_dispatches": self.re_dispatches,
        }


class _Request:
    """Internal request state (the future's backing store)."""

    __slots__ = (
        "request_id",
        "tenant",
        "forest",
        "deadline_at_ns",
        "submitted_ns",
        "attempts",
        "re_dispatches",
        "not_before_ns",
        "event",
        "response",
    )

    def __init__(
        self, request_id: int, tenant: str, forest: "Forest", deadline_at_ns: int | None
    ) -> None:
        self.request_id = request_id
        self.tenant = tenant
        self.forest = forest
        self.deadline_at_ns = deadline_at_ns
        self.submitted_ns = time.monotonic_ns()
        self.attempts = 0
        self.re_dispatches = 0
        self.not_before_ns = 0
        self.event = threading.Event()
        self.response: ServiceResponse | None = None


class ServiceFuture:
    """Handle on one in-flight request; blocks in :meth:`result`."""

    def __init__(self, request: _Request) -> None:
        self._request = request

    @property
    def request_id(self) -> int:
        return self._request.request_id

    def done(self) -> bool:
        return self._request.response is not None

    def result(self, timeout: float | None = None) -> ServiceResponse:
        """The request's :class:`ServiceResponse` (waits for it).

        Raises :class:`ServiceError` only if *timeout* elapses first —
        typed failures come back as responses, not exceptions.
        """
        if not self._request.event.wait(timeout):
            raise ServiceError(
                f"request {self._request.request_id} still unresolved "
                f"after {timeout} s"
            )
        response = self._request.response
        assert response is not None
        return response


def _new_tenant_counters() -> dict[str, int]:
    return {
        "requests": 0,
        "ok": 0,
        "failures": 0,
        "retries": 0,
        "deadline": 0,
        "shed": 0,
        "breaker_fastfail": 0,
    }


@dataclass
class ServiceStats:
    """The ``stats()["resilience"]["service"]`` counter block."""

    submitted: int = 0
    completed_ok: int = 0
    completed_failed: int = 0
    retries: int = 0
    re_dispatches: int = 0
    shed: int = 0
    breaker_fastfail: int = 0
    deadline_failures: int = 0
    poison_pills: int = 0
    batches: int = 0
    batched_requests: int = 0
    queue_depth_high_water: int = 0
    per_tenant: dict[str, dict[str, int]] = field(default_factory=dict)

    def tenant(self, name: str) -> dict[str, int]:
        counters = self.per_tenant.get(name)
        if counters is None:
            counters = self.per_tenant[name] = _new_tenant_counters()
        return counters

    def outstanding(self) -> int:
        return self.submitted - self.completed_ok - self.completed_failed

    def as_dict(self) -> dict[str, object]:
        return {
            "submitted": self.submitted,
            "completed_ok": self.completed_ok,
            "completed_failed": self.completed_failed,
            "outstanding": self.outstanding(),
            "retries": self.retries,
            "re_dispatches": self.re_dispatches,
            "shed": self.shed,
            "breaker_fastfail": self.breaker_fastfail,
            "deadline_failures": self.deadline_failures,
            "poison_pills": self.poison_pills,
            "batches": self.batches,
            "batched_requests": self.batched_requests,
            "queue_depth_high_water": self.queue_depth_high_water,
            "per_tenant": {name: dict(c) for name, c in self.per_tenant.items()},
        }


class SelectionService:
    """The supervised multi-tenant selection service (see module docs).

    Args:
        tenants: Tenant name → grammar.  Grammars may carry closures —
            workers are forked, not spawned.
        cache_dir: Shared artifact-cache directory; the supervisor
            precompiles one fingerprint-keyed artifact per tenant here
            (unless ``config.precompile`` is off) and every worker
            loads from it.
        config: A :class:`ServiceConfig`.
        context_factory: Builds a fresh emit context per worker batch.
        obs: Observability wiring (``None``/``False`` disabled, ``True``
            for a private bundle, or a shared
            :class:`~repro.obs.Observability`).  When enabled, the
            front door records ``service.request``/``service.batch``
            spans and request/latency/queue/heartbeat/breaker metrics,
            workers run with their own bundles, and their metric
            snapshots (riding home on result tuples) aggregate into
            ``stats()["obs"]``.
    """

    def __init__(
        self,
        tenants: dict[str, "Grammar"],
        cache_dir: str,
        config: ServiceConfig | None = None,
        *,
        context_factory: Callable[[], Any] | None = None,
        obs: Any = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self._obs = resolve_obs(obs)
        if self._obs.enabled:
            metrics = self._obs.metrics
            self._obs_queue_depth = metrics.gauge("service_queue_depth")
            self._obs_rtt = metrics.histogram("service_heartbeat_rtt_ns")
            self._obs_retries = metrics.counter("service_retries_total")
            self._obs_redispatches = metrics.counter("service_redispatches_total")
        settings = WorkerSettings(
            mode=self.config.mode,
            max_states=self.config.max_states,
            context_factory=context_factory,
            observe=self._obs.enabled,
        )
        self.supervisor = Supervisor(
            tenants,
            str(cache_dir),
            settings,
            workers=self.config.workers,
            restart_backoff_base_s=self.config.restart_backoff_base_s,
            restart_backoff_max_s=self.config.restart_backoff_max_s,
        )
        self._lock = threading.Lock()
        self._queue: deque[_Request] = deque()
        self._breakers: dict[str, CircuitBreaker] = {}
        self._stats = ServiceStats()
        self._rng = random.Random(self.config.seed)
        self._running = False
        self._thread: threading.Thread | None = None
        self._wake_r, self._wake_w = os.pipe()
        self._next_request_id = 1
        self._loop_errors: list[str] = []

    # ------------------------------------------------------------------
    # Lifecycle

    def start(self) -> "SelectionService":
        if self._running:
            return self
        if self.config.precompile:
            self.supervisor.precompile()
        self.supervisor.start()
        self._running = True
        self._thread = threading.Thread(
            target=self._run, name="selection-service", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        with self._lock:
            if not self._running:
                return
            self._running = False
        self._wake()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self.supervisor.stop()
        # Fold every worker's final metric snapshot into the service
        # registry, so post-stop exports see the whole pool's work.
        for handle in self.supervisor.handles:
            self._absorb_worker_obs(handle)
        # Outstanding requests resolve to a typed cancellation — never
        # a hang — even on an abrupt stop.
        with self._lock:
            outstanding = list(self._queue)
            self._queue.clear()
        for handle in self.supervisor.handles:
            for batch in handle.in_flight.values():
                outstanding.extend(batch.requests)
            handle.in_flight = {}
        now = time.monotonic_ns()
        with self._lock:
            for request in outstanding:
                self._resolve_locked(
                    request, "cancelled", error=ServiceError("service stopped"), now=now
                )
        os.close(self._wake_r)
        os.close(self._wake_w)

    def __enter__(self) -> "SelectionService":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def _wake(self) -> None:
        try:
            os.write(self._wake_w, b"\0")
        except OSError:  # pragma: no cover - closed during stop
            pass

    # ------------------------------------------------------------------
    # Submission (caller threads)

    def submit(
        self, tenant: str, forest: "Forest", *, timeout_s: Any = _UNSET
    ) -> ServiceFuture:
        """Enqueue one forest for *tenant*; returns a :class:`ServiceFuture`.

        Sheds (:class:`OverloadError`) when the admission queue is
        full and fast-fails (:class:`CircuitOpenError`) while the
        tenant's breaker is open — both as immediate typed responses,
        not exceptions.
        """
        if timeout_s is _UNSET:
            timeout_s = self.config.default_timeout_s
        now = time.monotonic_ns()
        with self._lock:
            if not self._running:
                raise ServiceError("service is not running (call start())")
            if tenant not in self.supervisor.tenants:
                raise ServiceError(f"unknown tenant {tenant!r}")
            stats = self._stats
            stats.submitted += 1
            tenant_counters = stats.tenant(tenant)
            tenant_counters["requests"] += 1
            request_id = self._next_request_id
            self._next_request_id += 1
            deadline_at = None if timeout_s is None else now + int(timeout_s * 1e9)
            request = _Request(request_id, tenant, forest, deadline_at)
            breaker = self._breaker(tenant)
            if not breaker.allows(now):
                stats.breaker_fastfail += 1
                tenant_counters["breaker_fastfail"] += 1
                self._resolve_locked(
                    request,
                    "circuit_open",
                    error=CircuitOpenError(
                        f"tenant {tenant!r} circuit is {breaker.state} after "
                        f"{breaker.consecutive_failures} consecutive failures"
                    ),
                    now=now,
                )
                return ServiceFuture(request)
            if len(self._queue) >= self.config.queue_limit:
                stats.shed += 1
                tenant_counters["shed"] += 1
                self._resolve_locked(
                    request,
                    "shed",
                    error=OverloadError(
                        f"admission queue full ({self.config.queue_limit} waiting)"
                    ),
                    now=now,
                )
                return ServiceFuture(request)
            self._queue.append(request)
            depth = len(self._queue)
            if depth > stats.queue_depth_high_water:
                stats.queue_depth_high_water = depth
            if self._obs.enabled:
                self._obs_queue_depth.set(depth)
        self._wake()
        return ServiceFuture(request)

    def select(
        self,
        tenant: str,
        forest: "Forest",
        *,
        timeout_s: Any = _UNSET,
        wait_s: float | None = None,
    ) -> ServiceResponse:
        """Synchronous sugar: submit and wait for the response."""
        return self.submit(tenant, forest, timeout_s=timeout_s).result(wait_s)

    def drain(self, timeout_s: float = 10.0, poll_s: float = 0.005) -> bool:
        """Block until every submitted request has resolved."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            with self._lock:
                if self._stats.outstanding() <= 0:
                    return True
            time.sleep(poll_s)
        return False

    def _breaker(self, tenant: str) -> CircuitBreaker:
        breaker = self._breakers.get(tenant)
        if breaker is None:
            on_transition = None
            if self._obs.enabled:
                metrics = self._obs.metrics

                def on_transition(tenant: str, _from_state: str, to_state: str) -> None:
                    metrics.counter(
                        "service_breaker_transitions_total", tenant=tenant, to=to_state
                    ).inc()

            breaker = self._breakers[tenant] = CircuitBreaker(
                tenant,
                failure_threshold=self.config.breaker_threshold,
                cooldown_s=self.config.breaker_cooldown_s,
                on_transition=on_transition,
            )
        return breaker

    # ------------------------------------------------------------------
    # Resolution (lock held)

    def _resolve_locked(
        self,
        request: _Request,
        status: str,
        *,
        value: Any = None,
        error: Any = None,
        now: int | None = None,
    ) -> None:
        if request.response is not None:
            return
        now = time.monotonic_ns() if now is None else now
        stats = self._stats
        tenant_counters = stats.tenant(request.tenant)
        if status == "ok":
            stats.completed_ok += 1
            tenant_counters["ok"] += 1
        else:
            stats.completed_failed += 1
            if status == "deadline":
                stats.deadline_failures += 1
                tenant_counters["deadline"] += 1
        latency_ns = max(0, now - request.submitted_ns)
        request.response = ServiceResponse(
            request_id=request.request_id,
            tenant=request.tenant,
            status=status,
            value=value,
            error=error,
            latency_ns=latency_ns,
            attempts=request.attempts,
            re_dispatches=request.re_dispatches,
        )
        obs = self._obs
        if obs.enabled:
            metrics = obs.metrics
            metrics.counter(
                "service_requests_total", tenant=request.tenant, status=status
            ).inc()
            metrics.histogram(
                "service_request_latency_ns", tenant=request.tenant
            ).observe(latency_ns)
            if obs.tracer.enabled:
                # End pinned to start + latency so the span duration IS
                # the response's latency_ns, exactly.
                obs.tracer.record(
                    "service.request",
                    request.submitted_ns,
                    request.submitted_ns + latency_ns,
                    tenant=request.tenant,
                    status=status,
                    attempts=request.attempts,
                    re_dispatches=request.re_dispatches,
                )
        request.event.set()

    # ------------------------------------------------------------------
    # Event loop (the single control thread)

    def _run(self) -> None:
        wake_r = self._wake_r
        while True:
            with self._lock:
                if not self._running:
                    return
            try:
                self._tick(wake_r)
            except Exception as exc:  # noqa: BLE001 - the loop must survive
                if len(self._loop_errors) < 32:
                    self._loop_errors.append(f"{type(exc).__name__}: {exc}")
                time.sleep(0.01)

    def _tick(self, wake_r: int) -> None:
        supervisor = self.supervisor
        objects: list[Any] = [wake_r]
        conn_map: dict[int, WorkerHandle] = {}
        sentinel_map: dict[int, WorkerHandle] = {}
        for handle in supervisor.handles:
            if not handle.alive or handle.conn is None or handle.process is None:
                continue
            objects.append(handle.conn)
            conn_map[id(handle.conn)] = handle
            sentinel = handle.process.sentinel
            objects.append(sentinel)
            sentinel_map[sentinel] = handle

        ready = mpconnection.wait(objects, timeout=self._poll_timeout_s())
        now = time.monotonic_ns()
        deaths: list[WorkerHandle] = []
        for obj in ready:
            if isinstance(obj, int):
                if obj == wake_r:
                    try:
                        os.read(wake_r, 65536)
                    except OSError:
                        pass
                else:
                    handle = sentinel_map.get(obj)
                    if handle is not None and handle.alive:
                        deaths.append(handle)
                continue
            handle = conn_map.get(id(obj))
            if handle is None or not handle.alive:
                continue
            try:
                while handle.conn is not None and handle.conn.poll():
                    self._on_message(handle, handle.conn.recv(), now)
            except (EOFError, OSError):
                if handle.alive:
                    deaths.append(handle)
        for handle in {id(h): h for h in deaths}.values():
            self._on_death(handle, now)
        self._expire_queued(now)
        self._watchdog(now)
        supervisor.due_restarts(now)
        self._heartbeat(now)
        self._dispatch(now)

    def _poll_timeout_s(self) -> float:
        """Sleep until the next timed event (clamped to [5 ms, 200 ms])."""
        now = time.monotonic_ns()
        next_ns: int | None = None

        def consider(candidate: int | None) -> None:
            nonlocal next_ns
            if candidate is not None and (next_ns is None or candidate < next_ns):
                next_ns = candidate

        with self._lock:
            for request in self._queue:
                consider(request.deadline_at_ns)
                if request.not_before_ns:
                    consider(request.not_before_ns)
        consider(self.supervisor.next_restart_ns())
        grace_ns = int(self.config.hang_grace_s * 1e9)
        for handle in self.supervisor.handles:
            if not handle.alive:
                continue
            for batch in handle.in_flight.values():
                if batch.deadline_at_ns is not None:
                    consider(batch.deadline_at_ns + grace_ns)
        if next_ns is None:
            return 0.2
        return min(0.2, max(0.005, (next_ns - now) / 1e9))

    # ------------------------------------------------------------------
    # Worker messages

    def _on_message(self, handle: WorkerHandle, message: tuple, now: int) -> None:
        handle.last_seen_ns = now
        kind = message[0]
        if kind != "result":
            # ready / pong / error: liveness already recorded.  A pong
            # echoes the ping's monotonic-ns token, so now - token is
            # the heartbeat round trip.
            if kind == "pong" and self._obs.enabled and isinstance(message[1], int):
                self._obs_rtt.observe(max(0, now - message[1]))
            return
        _, batch_id, rows, snapshot = message
        handle.snapshot = snapshot
        batch = handle.in_flight.pop(batch_id, None)
        handle.completed += 1
        handle.consecutive_crashes = 0
        if batch is None:  # pragma: no cover - defensive
            return
        if self._obs.tracer.enabled and batch.dispatched_ns:
            self._obs.tracer.record(
                "service.batch",
                batch.dispatched_ns,
                now,
                tenant=batch.tenant,
                requests=len(batch.requests),
                worker_pid=snapshot.get("pid") if isinstance(snapshot, dict) else None,
            )
        by_id = {request.request_id: request for request in batch.requests}
        config = self.config
        with self._lock:
            breaker = self._breaker(batch.tenant)
            stats = self._stats
            tenant_counters = stats.tenant(batch.tenant)
            for request_id, status, payload in rows:
                request = by_id.pop(request_id, None)
                if request is None or request.response is not None:
                    continue
                if status == "ok":
                    breaker.record_success()
                    self._resolve_locked(request, "ok", value=payload, now=now)
                elif status == "deadline":
                    self._resolve_locked(
                        request,
                        "deadline",
                        error=DeadlineExceededError(str(payload)),
                        now=now,
                    )
                else:
                    breaker.record_failure(now)
                    tenant_counters["failures"] += 1
                    expired = (
                        request.deadline_at_ns is not None
                        and now >= request.deadline_at_ns
                    )
                    if request.attempts < config.retries and not expired:
                        request.attempts += 1
                        stats.retries += 1
                        tenant_counters["retries"] += 1
                        if self._obs.enabled:
                            self._obs_retries.inc()
                        backoff_s = min(
                            config.retry_backoff_base_s * (2 ** (request.attempts - 1)),
                            config.retry_backoff_max_s,
                        ) * (0.5 + self._rng.random())
                        request.not_before_ns = now + int(backoff_s * 1e9)
                        self._queue.append(request)
                    else:
                        self._resolve_locked(request, "failure", error=payload, now=now)
            for request in by_id.values():  # pragma: no cover - defensive
                self._resolve_locked(
                    request,
                    "failure",
                    error=ServiceError("worker returned no row for request"),
                    now=now,
                )

    # ------------------------------------------------------------------
    # Death and re-dispatch

    def _on_death(self, handle: WorkerHandle, now: int) -> None:
        self._absorb_worker_obs(handle)
        orphans = self.supervisor.handle_death(handle, now)
        if not orphans:
            return
        requeue: list[_Request] = []
        with self._lock:
            stats = self._stats
            for batch in orphans:
                for request in batch.requests:
                    if request.response is not None:
                        continue
                    request.re_dispatches += 1
                    stats.re_dispatches += 1
                    if self._obs.enabled:
                        self._obs_redispatches.inc()
                    if request.re_dispatches > self.config.max_redispatches:
                        stats.poison_pills += 1
                        self._resolve_locked(
                            request,
                            "failure",
                            error=RequestLostError(
                                f"request {request.request_id} re-dispatched "
                                f"{request.re_dispatches - 1} times (worker died "
                                f"each time); abandoning a likely poison pill"
                            ),
                            now=now,
                        )
                    elif (
                        request.deadline_at_ns is not None
                        and now >= request.deadline_at_ns
                    ):
                        self._resolve_locked(
                            request,
                            "deadline",
                            error=DeadlineExceededError("expired during re-dispatch"),
                            now=now,
                        )
                    else:
                        requeue.append(request)
            # Front of the queue: re-dispatched work is the oldest.
            self._queue.extendleft(reversed(requeue))

    def _expire_queued(self, now: int) -> None:
        with self._lock:
            if not self._queue:
                return
            survivors: deque[_Request] = deque()
            for request in self._queue:
                if request.response is not None:
                    continue
                if request.deadline_at_ns is not None and now >= request.deadline_at_ns:
                    self._resolve_locked(
                        request,
                        "deadline",
                        error=DeadlineExceededError("expired in admission queue"),
                        now=now,
                    )
                else:
                    survivors.append(request)
            self._queue = survivors

    def _watchdog(self, now: int) -> None:
        """SIGKILL workers whose batch overstayed deadline + grace."""
        grace_ns = int(self.config.hang_grace_s * 1e9)
        for handle in self.supervisor.handles:
            if not handle.alive:
                continue
            for batch in handle.in_flight.values():
                if (
                    batch.deadline_at_ns is not None
                    and now > batch.deadline_at_ns + grace_ns
                ):
                    self.supervisor.kill_worker(handle)
                    break

    def _heartbeat(self, now: int) -> None:
        interval_ns = int(self.config.heartbeat_interval_s * 1e9)
        for handle in self.supervisor.handles:
            if not handle.alive or handle.conn is None:
                continue
            if now - handle.last_ping_ns < interval_ns:
                continue
            handle.last_ping_ns = now
            try:
                handle.conn.send(("ping", now))
            except Exception:
                self._on_death(handle, now)

    # ------------------------------------------------------------------
    # Dispatch

    def _dispatch(self, now: int) -> None:
        supervisor = self.supervisor
        assignments: list[tuple[WorkerHandle, Batch]] = []
        with self._lock:
            for worker in supervisor.live_idle_workers():
                if not self._queue:
                    break
                chosen: list[_Request] = []
                skipped: list[_Request] = []
                tenant: str | None = None
                while self._queue and len(chosen) < self.config.max_batch:
                    request = self._queue.popleft()
                    if request.response is not None:
                        continue
                    if (
                        request.deadline_at_ns is not None
                        and now >= request.deadline_at_ns
                    ):
                        self._resolve_locked(
                            request,
                            "deadline",
                            error=DeadlineExceededError("expired in admission queue"),
                            now=now,
                        )
                        continue
                    if request.not_before_ns > now:
                        skipped.append(request)
                        continue
                    if tenant is None:
                        if not self._breaker(request.tenant).allows(now):
                            skipped.append(request)
                            continue
                        tenant = request.tenant
                    elif request.tenant != tenant:
                        skipped.append(request)
                        continue
                    chosen.append(request)
                self._queue.extendleft(reversed(skipped))
                if not chosen:
                    break
                assert tenant is not None
                breaker = self._breaker(tenant)
                breaker.mark_dispatched()
                deadlines = [
                    r.deadline_at_ns for r in chosen if r.deadline_at_ns is not None
                ]
                batch = Batch(
                    batch_id=supervisor.next_batch_id(),
                    tenant=tenant,
                    requests=chosen,
                    deadline_at_ns=min(deadlines) if deadlines else None,
                )
                self._stats.batches += 1
                self._stats.batched_requests += len(chosen)
                assignments.append((worker, batch))
        for worker, batch in assignments:
            if not supervisor.dispatch(worker, batch):
                # The worker died between wait() and send: requeue via
                # the normal death path (counts a re-dispatch).
                worker.in_flight[batch.batch_id] = batch
                self._on_death(worker, now)

    # ------------------------------------------------------------------
    # Observability

    def _absorb_worker_obs(self, handle: WorkerHandle) -> None:
        """Merge a worker's last metric snapshot into the own registry.

        Worker snapshots are cumulative registry state, so each one is
        folded exactly once — at worker death or service stop — and
        then blanked to keep later merges from double counting.
        """
        if not self._obs.enabled or not isinstance(handle.snapshot, dict):
            return
        worker_obs = handle.snapshot.get("obs")
        if worker_obs:
            self._obs.metrics.merge_snapshot(worker_obs)
            handle.snapshot = {**handle.snapshot, "obs": {}}

    def _merged_obs_registry(self) -> MetricsRegistry:
        """Own registry plus every live worker's latest snapshot.

        A fresh registry (histogram merges are exact, so the numbers
        equal a single-process run) — callers may flatten or export it
        without mutating service state.
        """
        merged = MetricsRegistry()
        merged.merge_snapshot(self._obs.metrics.snapshot())
        for handle in self.supervisor.handles:
            if isinstance(handle.snapshot, dict):
                worker_obs = handle.snapshot.get("obs")
                if worker_obs:
                    merged.merge_snapshot(worker_obs)
        return merged

    def stats(self) -> dict[str, object]:
        """Service observability, merged into the resilience shape.

        ``["resilience"]`` aggregates the *live* workers' selector
        counters (a restarted worker starts fresh) and nests the
        :class:`ServiceStats` block under ``["resilience"]["service"]``
        — breaker snapshots (with full transition logs), queue depth,
        shed/retry/re-dispatch counts, and the supervisor's
        restart/kill totals.
        """
        resilience = new_resilience_counters()
        for handle in self.supervisor.handles:
            worker_resilience = handle.snapshot.get("resilience")
            if isinstance(worker_resilience, dict):
                for key, value in worker_resilience.items():
                    if isinstance(value, dict):
                        slot = resilience.setdefault(key, {})
                        for inner, count in value.items():
                            slot[inner] = slot.get(inner, 0) + count
                    elif isinstance(value, int):
                        resilience[key] = resilience.get(key, 0) + value
        with self._lock:
            service: dict[str, object] = self._stats.as_dict()
            service["queue_depth"] = len(self._queue)
            service["breakers"] = {
                name: breaker.snapshot() for name, breaker in self._breakers.items()
            }
            service["breaker_transitions"] = [
                list(t)
                for breaker in self._breakers.values()
                for t in breaker.transitions
            ]
        service["supervisor"] = self.supervisor.stats()
        service["loop_errors"] = list(self._loop_errors)
        resilience["service"] = service
        obs_view: dict[str, object] | None = None
        if self._obs.enabled:
            obs_view = self._merged_obs_registry().flatten()
            for key in (
                "submitted",
                "completed_ok",
                "completed_failed",
                "retries",
                "re_dispatches",
                "shed",
                "breaker_fastfail",
                "deadline_failures",
                "poison_pills",
                "batches",
                "batched_requests",
                "queue_depth",
                "queue_depth_high_water",
            ):
                obs_view[f"service_{key}"] = service[key]
        return {
            "resilience": resilience,
            "service": service,
            "workers": [handle.as_row() for handle in self.supervisor.handles],
            "obs": obs_view,
        }
