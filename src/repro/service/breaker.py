"""Per-tenant circuit breaker: CLOSED → OPEN → HALF_OPEN → CLOSED.

One breaker per grammar fingerprint (tenant).  ``K`` consecutive
selection failures open the circuit; while open, the front door
fast-fails the tenant's requests with a typed
:class:`~repro.errors.CircuitOpenError` instead of burning worker time
on a grammar that is currently poisoned.  After a cooldown the breaker
admits a single half-open *probe* batch: success closes the circuit,
failure reopens it and restarts the cooldown.

Transitions are recorded as ``(tenant, from_state, to_state)`` tuples
so :class:`~repro.service.frontdoor.SelectionService` can surface the
full open → half-open → closed recovery arc in ``ServiceStats``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["CLOSED", "HALF_OPEN", "OPEN", "CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass
class CircuitBreaker:
    """Consecutive-failure circuit breaker for one tenant.

    Attributes:
        tenant: Tenant key (grammar fingerprint or logical name).
        failure_threshold: Consecutive failures that open the circuit.
        cooldown_s: Seconds the circuit stays open before admitting a
            half-open probe.
        state: Current state (``closed`` / ``open`` / ``half_open``).
        transitions: Chronological ``(tenant, from, to)`` log.
        on_transition: Optional ``(tenant, from, to)`` callback fired on
            every state change — the service wires it to the
            observability registry's transition counters.

    Not thread-safe on its own; the front door serializes access from
    its event thread.
    """

    tenant: str
    failure_threshold: int = 3
    cooldown_s: float = 0.25
    state: str = CLOSED
    consecutive_failures: int = 0
    opened_at_ns: int = 0
    probe_in_flight: bool = False
    transitions: list[tuple[str, str, str]] = field(default_factory=list)
    on_transition: Callable[[str, str, str], None] | None = None

    def _move(self, to_state: str) -> None:
        if to_state != self.state:
            self.transitions.append((self.tenant, self.state, to_state))
            if self.on_transition is not None:
                self.on_transition(self.tenant, self.state, to_state)
            self.state = to_state

    def allows(self, now_ns: int | None = None) -> bool:
        """May a request for this tenant be dispatched right now?

        While open, flips to half-open once the cooldown has elapsed
        and admits exactly one probe; further requests fast-fail until
        the probe resolves.
        """
        if self.state == CLOSED:
            return True
        now = time.monotonic_ns() if now_ns is None else now_ns
        if self.state == OPEN:
            if now - self.opened_at_ns < int(self.cooldown_s * 1e9):
                return False
            self._move(HALF_OPEN)
            self.probe_in_flight = False
        # HALF_OPEN: admit a single probe at a time.
        return not self.probe_in_flight

    def mark_dispatched(self) -> None:
        """Record that a half-open probe batch is now in flight."""
        if self.state == HALF_OPEN:
            self.probe_in_flight = True

    def record_success(self) -> None:
        """A tenant batch succeeded: close the circuit."""
        self.consecutive_failures = 0
        self.probe_in_flight = False
        if self.state != CLOSED:
            self._move(CLOSED)

    def record_failure(self, now_ns: int | None = None) -> None:
        """A tenant batch failed: count toward (re)opening the circuit."""
        now = time.monotonic_ns() if now_ns is None else now_ns
        self.consecutive_failures += 1
        self.probe_in_flight = False
        if self.state == HALF_OPEN:
            # The probe failed: straight back to open, fresh cooldown.
            self.opened_at_ns = now
            self._move(OPEN)
        elif self.state == CLOSED and self.consecutive_failures >= self.failure_threshold:
            self.opened_at_ns = now
            self._move(OPEN)

    def snapshot(self) -> dict[str, object]:
        """JSON-ready view for ``ServiceStats``."""
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "transitions": [list(t) for t in self.transitions],
        }
