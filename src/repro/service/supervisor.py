"""Supervisor: owns N worker processes, restarts crashes, re-dispatches.

The supervisor is deliberately passive — it has no thread of its own.
The front door's event loop drives it: :meth:`Supervisor.wait_objects`
hands back every pipe connection *and* process sentinel to multiplex in
one ``multiprocessing.connection.wait`` call, and the loop calls back
into :meth:`handle_death` / :meth:`due_restarts` / :meth:`dispatch` as
objects fire.  Keeping one thread of control means no lock ordering
between request state and worker state.

Death detection is two-channel: the process *sentinel* fires on any
exit (including SIGKILL — exit code ``-9``), and the pipe raises
``EOFError``/``BrokenPipeError`` on the next interaction.  Either
signal routes to :meth:`handle_death`, which collects the slot's
in-flight batches for transparent re-dispatch — a killed worker never
loses a request — and schedules a replacement fork with capped
exponential backoff (a crash-looping worker cannot hot-spin the
supervisor).  Workers are forked, not spawned: tenant grammars carry
closures (actions, constraints, dynamic costs) that cannot pickle, and
fork inherits them for free.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import ServiceError
from repro.selection.resilience import ArtifactCache, BuildBudget
from repro.service.worker import WorkerSettings, worker_main
from repro.testing.faults import kill_process

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing.connection import Connection

    from repro.grammar.grammar import Grammar

__all__ = ["Batch", "Supervisor", "WorkerHandle"]


@dataclass
class Batch:
    """One coalesced dispatch unit: same tenant, up to ``max_batch`` requests."""

    batch_id: int
    tenant: str
    requests: list[Any]  # frontdoor._Request objects
    deadline_at_ns: int | None
    dispatched_ns: int = 0


@dataclass
class WorkerHandle:
    """One supervisor slot: the current process behind a stable slot id."""

    slot: int
    process: Any = None
    conn: "Connection | None" = None
    pid: int = 0
    alive: bool = False
    in_flight: dict[int, Batch] = field(default_factory=dict)
    dispatched: int = 0
    completed: int = 0
    restarts: int = 0
    consecutive_crashes: int = 0
    last_seen_ns: int = 0
    last_ping_ns: int = 0
    snapshot: dict[str, Any] = field(default_factory=dict)

    def as_row(self) -> dict[str, object]:
        return {
            "slot": self.slot,
            "pid": self.pid,
            "alive": self.alive,
            "in_flight": sum(len(b.requests) for b in self.in_flight.values()),
            "dispatched": self.dispatched,
            "completed": self.completed,
            "restarts": self.restarts,
        }


class Supervisor:
    """Owns the worker pool for one :class:`SelectionService`.

    Args:
        tenants: Tenant name → grammar (inherited by workers at fork).
        cache_dir: Shared :class:`ArtifactCache` directory.
        settings: Per-worker :class:`WorkerSettings`.
        workers: Pool size.
        restart_backoff_base_s / restart_backoff_max_s: Capped
            exponential backoff between a crash and the replacement
            fork (doubles per *consecutive* crash of the slot; a
            completed batch resets the streak).
    """

    def __init__(
        self,
        tenants: dict[str, "Grammar"],
        cache_dir: str,
        settings: WorkerSettings | None = None,
        *,
        workers: int = 2,
        restart_backoff_base_s: float = 0.02,
        restart_backoff_max_s: float = 1.0,
    ) -> None:
        if workers < 1:
            raise ServiceError("worker pool needs at least one worker")
        self.tenants = dict(tenants)
        self.cache_dir = str(cache_dir)
        self.settings = settings or WorkerSettings()
        self.pool_size = workers
        self.restart_backoff_base_s = restart_backoff_base_s
        self.restart_backoff_max_s = restart_backoff_max_s
        self._ctx = multiprocessing.get_context("fork")
        self.handles: list[WorkerHandle] = [WorkerHandle(slot=i) for i in range(workers)]
        #: slot -> absolute monotonic ns when the replacement may fork.
        self._restart_at: dict[int, int] = {}
        self.restarts_total = 0
        self.kills_total = 0
        self._next_batch_id = 1

    # ------------------------------------------------------------------
    # Lifecycle

    def precompile(self, budget: BuildBudget | None = None) -> int:
        """Build every tenant's artifact once, parent-side.

        One eager build per grammar lands in the shared cache before
        any worker forks; each worker then ``Selector.load()``\\ s the
        fingerprint-keyed artifact in ~1 ms instead of re-compiling —
        the build is amortized across the whole pool.  Returns the
        number of tenants prepared.
        """
        cache = ArtifactCache(self.cache_dir)
        budget = budget or BuildBudget(max_states=self.settings.max_states)
        for grammar in self.tenants.values():
            cache.selector_for(grammar, budget=budget)
        return len(self.tenants)

    def start(self) -> None:
        for handle in self.handles:
            self._spawn(handle)

    def stop(self) -> None:
        for handle in self.handles:
            if handle.alive and handle.conn is not None:
                try:
                    handle.conn.send(("stop",))
                except Exception:
                    pass
        deadline = time.monotonic() + 1.0
        for handle in self.handles:
            process = handle.process
            if process is None:
                continue
            process.join(timeout=max(0.0, deadline - time.monotonic()))
            if process.is_alive():
                process.kill()
                process.join(timeout=1.0)
            handle.alive = False
            if handle.conn is not None:
                handle.conn.close()

    def _spawn(self, handle: WorkerHandle) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=worker_main,
            args=(child_conn, self.tenants, self.cache_dir, self.settings),
            daemon=True,
            name=f"repro-selection-worker-{handle.slot}",
        )
        process.start()
        child_conn.close()
        handle.process = process
        handle.conn = parent_conn
        handle.pid = process.pid or 0
        handle.alive = True
        handle.in_flight = {}
        handle.last_seen_ns = time.monotonic_ns()

    # ------------------------------------------------------------------
    # Event-loop plumbing

    def live_idle_workers(self) -> list[WorkerHandle]:
        """Live workers with no batch in flight (dispatch candidates)."""
        return [h for h in self.handles if h.alive and not h.in_flight]

    def dispatch(self, handle: WorkerHandle, batch: Batch) -> bool:
        """Ship *batch* to *handle*; ``False`` means the worker is dead
        (caller routes through :meth:`handle_death`)."""
        payload = (
            "batch",
            batch.batch_id,
            batch.tenant,
            [(request.request_id, request.forest) for request in batch.requests],
            batch.deadline_at_ns,
        )
        try:
            assert handle.conn is not None
            handle.conn.send(payload)
        except Exception:
            return False
        batch.dispatched_ns = time.monotonic_ns()
        handle.in_flight[batch.batch_id] = batch
        handle.dispatched += 1
        return True

    def next_batch_id(self) -> int:
        batch_id = self._next_batch_id
        self._next_batch_id += 1
        return batch_id

    # ------------------------------------------------------------------
    # Death, restart, watchdog

    def handle_death(self, handle: WorkerHandle, now_ns: int | None = None) -> list[Batch]:
        """Reap a dead worker; return its in-flight batches for re-dispatch.

        Schedules the slot's replacement fork at ``now + min(base *
        2^crashes, max)`` — capped exponential backoff.
        """
        if not handle.alive:
            return []
        now = time.monotonic_ns() if now_ns is None else now_ns
        handle.alive = False
        process = handle.process
        if process is not None:
            process.join(timeout=0.5)
        if handle.conn is not None:
            try:
                handle.conn.close()
            except Exception:
                pass
        orphans = list(handle.in_flight.values())
        handle.in_flight = {}
        delay_s = min(
            self.restart_backoff_base_s * (2**handle.consecutive_crashes),
            self.restart_backoff_max_s,
        )
        handle.consecutive_crashes += 1
        self._restart_at[handle.slot] = now + int(delay_s * 1e9)
        return orphans

    def due_restarts(self, now_ns: int | None = None) -> int:
        """Fork replacements whose backoff has elapsed; returns count."""
        now = time.monotonic_ns() if now_ns is None else now_ns
        started = 0
        for slot, at in list(self._restart_at.items()):
            if at > now:
                continue
            del self._restart_at[slot]
            handle = self.handles[slot]
            self._spawn(handle)
            handle.restarts += 1
            self.restarts_total += 1
            started += 1
        return started

    def next_restart_ns(self) -> int | None:
        """Earliest pending restart instant (event-loop timer input)."""
        return min(self._restart_at.values()) if self._restart_at else None

    def kill_worker(self, handle: WorkerHandle) -> bool:
        """SIGKILL a (presumably wedged) worker; the sentinel then fires
        and :meth:`handle_death` re-dispatches its in-flight batches."""
        if not handle.alive or not handle.pid:
            return False
        self.kills_total += 1
        return kill_process(handle.pid)

    # ------------------------------------------------------------------

    def stats(self) -> dict[str, object]:
        return {
            "pool_size": self.pool_size,
            "alive": sum(1 for h in self.handles if h.alive),
            "restarts_total": self.restarts_total,
            "kills_total": self.kills_total,
            "pending_restarts": len(self._restart_at),
            "workers": [h.as_row() for h in self.handles],
        }
