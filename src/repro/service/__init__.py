"""Supervised selection service: worker pool with deadlines, retries,
circuit breaking, and overload shedding.

Layering (bottom up):

* :mod:`repro.service.budgets` — :class:`RequestBudget` pins an
  absolute monotonic deadline at admission and threads it through
  every stage (queue, dispatch, compile-on-miss, label/reduce loops).
* :mod:`repro.service.breaker` — per-tenant :class:`CircuitBreaker`
  (closed → open → half-open → closed).
* :mod:`repro.service.worker` — the forked worker process serving
  ``select_many`` batches over a pipe with typed failure rows.
* :mod:`repro.service.supervisor` — owns the pool: fork, death
  detection, capped-backoff restart, in-flight re-dispatch.
* :mod:`repro.service.frontdoor` — :class:`SelectionService`, the
  public face: admission control, batching, retries, watchdog,
  observability.
"""

from repro.service.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.service.budgets import DEADLINE_CHECK_EVERY, RequestBudget
from repro.service.frontdoor import (
    SelectionService,
    ServiceConfig,
    ServiceFuture,
    ServiceResponse,
    ServiceStats,
)
from repro.service.supervisor import Batch, Supervisor, WorkerHandle
from repro.service.worker import WorkerSettings, worker_main

__all__ = [
    "CLOSED",
    "DEADLINE_CHECK_EVERY",
    "HALF_OPEN",
    "OPEN",
    "Batch",
    "CircuitBreaker",
    "RequestBudget",
    "SelectionService",
    "ServiceConfig",
    "ServiceFuture",
    "ServiceResponse",
    "ServiceStats",
    "Supervisor",
    "WorkerHandle",
    "WorkerSettings",
    "worker_main",
]
