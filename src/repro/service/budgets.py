"""Request budgets: deadlines threaded through the selection hot loops.

:class:`RequestBudget` extends the build-time :class:`BuildBudget` into
a *per-request* wall-clock budget: it pins a start instant, exposes the
absolute monotonic deadline, and converts the remaining allowance back
into a :class:`BuildBudget` so a cold tenant's compile-on-miss runs
under the same clock as the request that triggered it (deadline
propagation).

The cooperative cancellation side lives in the engines: when a budget
with a deadline is passed to ``Selector.select_many(budget=...)``, the
label walks and the reducer frame loop check the absolute deadline
every :data:`DEADLINE_CHECK_EVERY` steps and raise
:class:`~repro.errors.DeadlineExceededError`.  The checks are guarded
by ``deadline is not None`` so the unbudgeted hot path pays a single
predictable branch.

All deadlines are absolute ``time.monotonic_ns()`` instants.  On Linux
``CLOCK_MONOTONIC`` is system-wide, so a deadline computed in the
service front door stays meaningful inside a forked worker process —
the worker protocol ships absolute deadlines, not remaining budgets,
and queue delay costs the request rather than resetting its clock.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.errors import DeadlineExceededError
from repro.selection.resilience import BuildBudget

__all__ = ["DEADLINE_CHECK_EVERY", "RequestBudget"]

#: Hot-loop stride between deadline checks.  One ``monotonic_ns`` call
#: per this many labeled nodes / reduced frames bounds both the check
#: overhead and the worst-case overshoot past the deadline.
DEADLINE_CHECK_EVERY = 64


@dataclass(frozen=True)
class RequestBudget(BuildBudget):
    """A :class:`BuildBudget` pinned to a request's start instant.

    Attributes:
        max_states: Inherited; caps compile-on-miss table builds.
        deadline_ns: Inherited; the *relative* wall-clock allowance.
        started_ns: Absolute ``monotonic_ns`` instant the budget
            started ticking.  ``0`` means "unpinned" (no deadline).

    Build with :meth:`start` (relative allowance, pinned now) or
    :meth:`until` (absolute deadline, e.g. received over the worker
    protocol).
    """

    started_ns: int = 0

    @classmethod
    def start(
        cls,
        timeout_s: float | None,
        *,
        max_states: int | None = None,
    ) -> RequestBudget:
        """A budget whose clock starts now; ``timeout_s=None`` → no deadline."""
        if timeout_s is None:
            return cls(max_states=max_states)
        return cls(
            max_states=max_states,
            deadline_ns=int(timeout_s * 1e9),
            started_ns=time.monotonic_ns(),
        )

    @classmethod
    def until(
        cls,
        deadline_at_ns: int | None,
        *,
        max_states: int | None = None,
    ) -> RequestBudget:
        """A budget ending at an absolute monotonic instant."""
        if deadline_at_ns is None:
            return cls(max_states=max_states)
        now = time.monotonic_ns()
        return cls(
            max_states=max_states,
            deadline_ns=max(0, deadline_at_ns - now),
            started_ns=now,
        )

    @property
    def deadline_at_ns(self) -> int | None:
        """Absolute monotonic deadline, or ``None`` when unbounded."""
        if self.deadline_ns is None or not self.started_ns:
            return None
        return self.started_ns + self.deadline_ns

    def remaining_ns(self) -> int | None:
        """Nanoseconds left on the clock (clamped at 0), or ``None``."""
        at = self.deadline_at_ns
        if at is None:
            return None
        return max(0, at - time.monotonic_ns())

    def expired(self) -> bool:
        """True when the deadline has passed."""
        at = self.deadline_at_ns
        return at is not None and time.monotonic_ns() > at

    def check(self, phase: str) -> None:
        """Raise :class:`DeadlineExceededError` if the deadline passed."""
        at = self.deadline_at_ns
        if at is not None and time.monotonic_ns() > at:
            raise DeadlineExceededError(
                f"request deadline exceeded during {phase} "
                f"(budget {self.deadline_ns / 1e6:.1f} ms)"
            )

    def build_budget(self) -> BuildBudget:
        """The remaining allowance as a plain :class:`BuildBudget`.

        Deadline propagation: a compile-on-miss triggered by this
        request builds under the request's *remaining* clock, so a cold
        tenant cannot blow the request deadline by the full build
        budget on top.
        """
        return BuildBudget(max_states=self.max_states, deadline_ns=self.remaining_ns())
