"""Dominated-rule analysis and semantics-preserving grammar pruning.

A rule is **dominated** when no state of the fully-built (eager)
automaton ever selects it for any nonterminal: every tree the rule
could match is covered at least as cheaply by other rules, so the rule
can never appear in any optimal cover.  Removing dominated rules
preserves semantics — they are never a winner, and the first-wins
tie-break among the remaining rules is unchanged — while shrinking the
packed tables the ROADMAP's eager-table-growth problem worries about.

Soundness rests on the eager fixed point reaching *exactly* the
reachable state set (children of distinct subtrees are independent),
so the analysis refuses grammars whose build was capped or skipped
operators (dynamic-cost rules, dynamic chain rules): for those, a
rule's win set cannot be fully enumerated.  Constraint rules *are*
analyzable — the eager build enumerates their signature outcomes.

:func:`differential_check` labels the same forests under the original
and the pruned grammar and asserts identical total costs and identical
per-node rule choices (modulo helper renumbering), which the test
suite runs across the bench workload families.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import AnalysisError
from repro.grammar.grammar import Grammar
from repro.grammar.rule import Rule
from repro.ir.node import Forest
from repro.selection.automaton import OnDemandAutomaton
from repro.selection.cover import extract_cover

__all__ = ["DominanceReport", "PruneResult", "analyze_dominance", "differential_check", "prune"]


@dataclass
class DominanceReport:
    """Outcome of :func:`analyze_dominance`."""

    grammar: str
    #: False when the state space could not be fully enumerated.
    analyzable: bool = False
    reason: str = ""
    #: Reachable states enumerated.
    states: int = 0
    rules_total: int = 0
    #: Source-grammar rules selected by at least one reachable state.
    used: list[Rule] = field(default_factory=list)
    #: Source-grammar rules no reachable state ever selects.
    dominated: list[Rule] = field(default_factory=list)

    def describe(self) -> str:
        if not self.analyzable:
            return f"grammar {self.grammar!r}: dominance not analyzable — {self.reason}"
        if not self.dominated:
            return (
                f"grammar {self.grammar!r}: no dominated rules "
                f"({self.rules_total} rules all win in some reachable state)"
            )
        lines = [
            f"grammar {self.grammar!r}: {len(self.dominated)} of {self.rules_total} "
            f"rule(s) dominated (never selected in any optimal cover):"
        ]
        for rule in self.dominated:
            where = f" at {rule.location}" if rule.location else ""
            lines.append(f"  rule {rule.number}{where}: {rule.describe()}")
        return "\n".join(lines)


@dataclass
class PruneResult:
    """Outcome of :func:`prune`."""

    grammar: Grammar
    removed: list[Rule]
    report: DominanceReport


def analyze_dominance(grammar: Grammar, max_states: int | None = None) -> DominanceReport:
    """Find the rules of *grammar* no optimal cover can ever use.

    Builds the eager automaton and collects, over every reachable
    state, the set of winning rules (mapped back through normalization
    to the user-written rules).  Rules outside that set are dominated.
    """
    report = DominanceReport(grammar=grammar.name, rules_total=len(grammar.rules))
    automaton = OnDemandAutomaton(grammar)
    stats = automaton.build_eager(max_states)
    report.states = len(automaton.pool)
    if stats["capped"]:
        report.reason = f"eager construction capped at {max_states} states"
        return report
    if stats["skipped"]:
        report.reason = (
            "operators left on demand (dynamic-cost or dynamic chain rules): "
            + ", ".join(stats["skipped"])
        )
        return report

    # Winning rules live in the (possibly normalized) working grammar;
    # map each back to the user-written rule.  ``source`` is a single
    # hop here: normalization links every derived rule directly to its
    # original.
    normalized = automaton.grammar is not grammar
    used_ids: set[int] = set()
    used_rules: dict[int, Rule] = {}
    for state in automaton.pool.states:
        for rule in state.rule_vec:
            if rule is None:
                continue
            original = rule.source if (normalized and rule.source is not None) else rule
            if id(original) not in used_ids:
                used_ids.add(id(original))
                used_rules[id(original)] = original

    report.analyzable = True
    report.used = [rule for rule in grammar.rules if id(rule) in used_ids]
    report.dominated = [rule for rule in grammar.rules if id(rule) not in used_ids]
    return report


def prune(
    grammar: Grammar,
    max_states: int | None = None,
    *,
    report: DominanceReport | None = None,
    name: str | None = None,
) -> PruneResult:
    """Return a reduced grammar without *grammar*'s dominated rules.

    The pruned grammar keeps every surviving rule's attributes (costs,
    templates, actions, constraints, source position) and links each
    copy to its original through ``source``, so emit traces remain
    comparable.  Every nonterminal a kept rule references is still
    derived — its cheapest derivation used a kept (winning) rule — so
    the result always passes ``validate()``.

    Args:
        grammar: The grammar to prune.
        max_states: Cap forwarded to the dominance build.
        report: A precomputed :func:`analyze_dominance` report for this
            grammar (avoids a second eager build).
        name: Name for the pruned grammar (default ``<name>-pruned``).

    Raises:
        AnalysisError: When the grammar's dominance is not analyzable.
    """
    if report is None:
        report = analyze_dominance(grammar, max_states)
    if not report.analyzable:
        raise AnalysisError(
            f"cannot prune grammar {grammar.name!r}: {report.reason or 'not analyzable'}"
        )
    dominated_ids = {id(rule) for rule in report.dominated}
    pruned = Grammar(name or f"{grammar.name}-pruned", grammar.operators, grammar.start)
    for nt in grammar.nonterminals:
        pruned.declare_nonterminal(nt)
    for rule in grammar.rules:
        if id(rule) in dominated_ids:
            continue
        pruned.add_rule(
            rule.lhs,
            rule.pattern,
            rule.cost,
            name=rule.name,
            template=rule.template,
            action=rule.action,
            dynamic_cost=rule.dynamic_cost,
            constraint=rule.constraint,
            constraint_name=rule.constraint_name,
            is_helper=rule.is_helper,
            source=rule,
            line=rule.line,
            column=rule.column,
        )
    pruned.validate()
    return PruneResult(grammar=pruned, removed=list(report.dominated), report=report)


def differential_check(
    original: Grammar,
    pruned: Grammar,
    forests: Sequence[Forest] | Iterable[Forest],
    start: str | None = None,
) -> dict[str, int]:
    """Assert *pruned* selects identically to *original* on *forests*.

    Labels every forest under both grammars and compares total cover
    costs and the per-entry ``(node, nonterminal, original rule)``
    sequences.  Helper nonterminals introduced by normalization are
    masked (their generated names and numbers differ between the two
    grammars); rules are compared through ``Rule.original``.

    Returns:
        ``{"forests": n, "entries": m}`` counters on success.

    Raises:
        AnalysisError: On the first cover/cost mismatch.
    """
    auto_original = OnDemandAutomaton(original)
    auto_pruned = OnDemandAutomaton(pruned)
    checked_forests = 0
    checked_entries = 0
    for forest in forests:
        label_a = auto_original.label(forest)
        label_b = auto_pruned.label(forest)
        cover_a = extract_cover(label_a, forest, start)
        cover_b = extract_cover(label_b, forest, start)
        if cover_a.total_cost() != cover_b.total_cost():
            raise AnalysisError(
                f"differential check failed on forest {forest.name!r}: total cost "
                f"{cover_a.total_cost()} (original) != {cover_b.total_cost()} (pruned)"
            )
        trace_a = [_entry_key(entry) for entry in cover_a.entries]
        trace_b = [_entry_key(entry) for entry in cover_b.entries]
        if trace_a != trace_b:
            raise AnalysisError(
                f"differential check failed on forest {forest.name!r}: covers differ "
                f"({len(trace_a)} vs {len(trace_b)} entries)"
            )
        checked_forests += 1
        checked_entries += len(trace_a)
    return {"forests": checked_forests, "entries": checked_entries}


def _entry_key(entry) -> tuple[int, str, int]:
    """Comparison key for one cover entry, stable across normalizations."""
    nonterminal = "__helper" if entry.nonterminal.startswith("__h") else entry.nonterminal
    return (id(entry.node), nonterminal, entry.rule.original.number)
