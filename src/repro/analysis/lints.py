"""Grammar lints: structural checks producing ``GRM00x`` diagnostics.

The linter never raises — even a grammar that would fail
:meth:`~repro.grammar.grammar.Grammar.validate` is linted to the end so
all problems are reported in one pass.  Severity policy:

* **error** — the grammar cannot work: a nonterminal that derives no
  tree (GRM001), a missing/underivable start (GRM003), a
  self-referential chain rule (GRM007), or a pattern conflicting with
  the supplied operator set (GRM010).
* **warning** — the grammar works but something is off: dead rules
  (GRM002), rules that can never win (GRM004/GRM005), zero-cost chain
  cycles that make derivations ambiguous (GRM006), and dynamic chain
  rules, which disable eager table construction grammar-wide (GRM008).
* **info** — dialect operators no rule covers (GRM009); harmless when
  the front end never produces them.
"""

from __future__ import annotations

from repro.analysis.diagnostics import (
    ERROR,
    INFO,
    WARNING,
    Diagnostic,
    DiagnosticReport,
)
from repro.grammar.analysis import (
    productive_nonterminals,
    reachable_nonterminals,
    uncovered_operators,
)
from repro.grammar.closure import chain_cost_matrix
from repro.grammar.costs import is_finite
from repro.grammar.grammar import Grammar
from repro.grammar.rule import Rule
from repro.ir.ops import OperatorSet

__all__ = ["lint_grammar"]


def _rule_diag(
    grammar: Grammar, code: str, severity: str, message: str, rule: Rule
) -> Diagnostic:
    return Diagnostic(
        code=code,
        severity=severity,
        message=message,
        grammar=grammar.name,
        rule_number=rule.number,
        rule=rule.describe(),
        line=rule.line,
        column=rule.column,
    )


def _grammar_diag(grammar: Grammar, code: str, severity: str, message: str) -> Diagnostic:
    return Diagnostic(code=code, severity=severity, message=message, grammar=grammar.name)


def lint_grammar(grammar: Grammar, operators: OperatorSet | None = None) -> DiagnosticReport:
    """Lint *grammar* and return a :class:`DiagnosticReport`.

    Args:
        grammar: The grammar to lint (need not pass ``validate()``).
        operators: Operator set to check rule patterns against; defaults
            to the grammar's own operator set (under which GRM010 cannot
            fire, because ``add_rule`` already rejects conflicts — pass
            a different dialect to cross-check a description).
    """
    report = DiagnosticReport(grammar=grammar.name)
    diags = report.diagnostics

    # GRM003 — start nonterminal.
    start_ok = True
    derived = {rule.lhs for rule in grammar.rules}
    if grammar.start is None:
        diags.append(
            _grammar_diag(grammar, "GRM003", ERROR, "grammar has no start nonterminal")
        )
        start_ok = False
    elif grammar.start not in derived:
        diags.append(
            _grammar_diag(
                grammar,
                "GRM003",
                ERROR,
                f"start nonterminal {grammar.start!r} is never derived by any rule",
            )
        )
        start_ok = False

    # GRM001 — unproductive nonterminals (used by some rule but never
    # able to derive a finite operator tree).
    productive = productive_nonterminals(grammar)
    for nt in grammar.nonterminals:
        if nt not in productive:
            diags.append(
                _grammar_diag(
                    grammar,
                    "GRM001",
                    ERROR,
                    f"nonterminal {nt!r} cannot derive any finite tree "
                    f"(every rule for it depends on an unproductive nonterminal)",
                )
            )

    # GRM002 — unreachable nonterminals (only meaningful with a start).
    if start_ok:
        reachable = reachable_nonterminals(grammar)
        for nt in grammar.nonterminals:
            if nt not in reachable:
                diags.append(
                    _grammar_diag(
                        grammar,
                        "GRM002",
                        WARNING,
                        f"nonterminal {nt!r} is unreachable from start "
                        f"{grammar.start!r}; its rules are dead",
                    )
                )

    # GRM004 / GRM005 — duplicate and cost-shadowed rules.  Rules are
    # grouped by (lhs, pattern); within a group the earlier rule wins
    # ties (first-wins tie-break), so a later rule whose cost cannot
    # beat an earlier unconditional rule is dead weight.
    groups: dict[tuple[str, str], list[Rule]] = {}
    for rule in grammar.rules:
        groups.setdefault((rule.lhs, str(rule.pattern)), []).append(rule)
    for group in groups.values():
        for i, rule in enumerate(group):
            if i == 0:
                continue
            earlier = group[:i]
            duplicate = next(
                (
                    e
                    for e in earlier
                    if e.cost == rule.cost
                    and e.dynamic_cost is rule.dynamic_cost
                    and e.constraint is rule.constraint
                ),
                None,
            )
            if duplicate is not None:
                diags.append(
                    _rule_diag(
                        grammar,
                        "GRM004",
                        WARNING,
                        f"rule duplicates rule {duplicate.number} "
                        f"({duplicate.describe()})",
                        rule,
                    )
                )
                continue
            if rule.dynamic_cost is not None:
                # A general dynamic cost can undercut anything; never shadowed.
                continue
            shadow = next(
                (e for e in earlier if not e.is_dynamic and e.cost <= rule.cost), None
            )
            if shadow is not None:
                diags.append(
                    _rule_diag(
                        grammar,
                        "GRM005",
                        WARNING,
                        f"rule can never win: rule {shadow.number} matches the same "
                        f"pattern unconditionally at cost {shadow.cost} <= {rule.cost}",
                        rule,
                    )
                )

    # GRM007 — self-referential chain rules.
    for rule in grammar.chain_rules():
        if rule.pattern.symbol == rule.lhs:
            diags.append(
                _rule_diag(
                    grammar,
                    "GRM007",
                    ERROR,
                    f"chain rule derives {rule.lhs!r} from itself",
                    rule,
                )
            )

    # GRM006 — zero-cost chain cycles between distinct nonterminals.
    matrix = chain_cost_matrix(grammar)
    seen_pairs: set[frozenset[str]] = set()
    for a, row in matrix.items():
        for b, cost in row.items():
            if a == b or not is_finite(cost) or cost != 0:
                continue
            back = matrix[b][a]
            if is_finite(back) and back == 0:
                pair = frozenset((a, b))
                if pair not in seen_pairs:
                    seen_pairs.add(pair)
                    first, second = sorted(pair)
                    diags.append(
                        _grammar_diag(
                            grammar,
                            "GRM006",
                            WARNING,
                            f"zero-cost chain cycle between {first!r} and {second!r}: "
                            f"covers may pick either side arbitrarily",
                        )
                    )

    # GRM008 — dynamic chain rules force every operator onto the
    # dynamic-programming fallback (the automaton cannot intern states
    # whose chain closure depends on the node).
    for rule in grammar.chain_rules():
        if rule.is_dynamic:
            diags.append(
                _rule_diag(
                    grammar,
                    "GRM008",
                    WARNING,
                    "dynamic chain rule disables eager/offline table "
                    "construction for the whole grammar",
                    rule,
                )
            )

    # GRM010 — pattern conflicts against a supplied operator set.
    if operators is not None:
        for rule in grammar.rules:
            for part in rule.pattern.walk():
                if not part.is_operator:
                    continue
                declared = operators.get(part.symbol)
                if declared is None:
                    diags.append(
                        _rule_diag(
                            grammar,
                            "GRM010",
                            ERROR,
                            f"pattern uses operator {part.symbol!r} not in "
                            f"operator set {operators.name!r}",
                            rule,
                        )
                    )
                elif declared.arity != len(part.kids):
                    diags.append(
                        _rule_diag(
                            grammar,
                            "GRM010",
                            ERROR,
                            f"pattern uses operator {part.symbol} with "
                            f"{len(part.kids)} children, dialect "
                            f"{operators.name!r} declares arity {declared.arity}",
                            rule,
                        )
                    )

    # GRM009 — dialect operators with no rule at all (aggregated).
    uncovered = uncovered_operators(grammar)
    if uncovered:
        diags.append(
            _grammar_diag(
                grammar,
                "GRM009",
                INFO,
                f"{len(uncovered)} dialect operator(s) not covered by any rule: "
                + ", ".join(uncovered),
            )
        )

    return report
