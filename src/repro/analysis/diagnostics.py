"""Structured diagnostics for grammar static analysis.

Every lint finding is a :class:`Diagnostic` with a stable ``GRM00x``
code, a severity, and rule provenance (rule number plus the 1-based
line/column recorded by the grammar parser), so tools and CI can match
on codes while humans read ``grammar:line:col: CODE severity: message``
lines, compiler style.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "DIAGNOSTIC_CODES",
    "Diagnostic",
    "DiagnosticReport",
    "ERROR",
    "INFO",
    "WARNING",
]

ERROR = "error"
WARNING = "warning"
INFO = "info"

#: Stable code registry: code → (default severity, short title).
DIAGNOSTIC_CODES: dict[str, tuple[str, str]] = {
    "GRM001": (ERROR, "unproductive nonterminal"),
    "GRM002": (WARNING, "unreachable nonterminal"),
    "GRM003": (ERROR, "missing or underivable start nonterminal"),
    "GRM004": (WARNING, "duplicate rule"),
    "GRM005": (WARNING, "cost-shadowed rule"),
    "GRM006": (WARNING, "zero-cost chain-rule cycle"),
    "GRM007": (ERROR, "self-referential chain rule"),
    "GRM008": (WARNING, "dynamic chain rule disables eager table construction"),
    "GRM009": (INFO, "dialect operators not covered by any rule"),
    "GRM010": (ERROR, "pattern/operator conflict"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding, with provenance back to the grammar source."""

    code: str
    severity: str
    message: str
    grammar: str = ""
    #: Number of the offending rule, or ``None`` for grammar-level findings.
    rule_number: int | None = None
    #: ``describe()`` rendering of the offending rule ("" when grammar-level).
    rule: str = ""
    #: 1-based position in the grammar text (0 when unknown / programmatic).
    line: int = 0
    column: int = 0

    def format(self) -> str:
        """``grammar:line:col: CODE severity: message`` (compiler style)."""
        origin = self.grammar or "<grammar>"
        if self.line > 0:
            origin = f"{origin}:{self.line}:{self.column}"
        return f"{origin}: {self.code} {self.severity}: {self.message}"


@dataclass
class DiagnosticReport:
    """All diagnostics produced by one lint run over one grammar."""

    grammar: str
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == WARNING]

    @property
    def has_errors(self) -> bool:
        return any(d.severity == ERROR for d in self.diagnostics)

    def codes(self) -> set[str]:
        """The distinct diagnostic codes present in this report."""
        return {d.code for d in self.diagnostics}

    def format(self) -> str:
        if not self.diagnostics:
            return f"{self.grammar}: clean (no diagnostics)"
        return "\n".join(d.format() for d in self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)
