"""Command-line interface for the grammar static-analysis tools.

::

    python -m repro.analysis lint   <grammar>... [--operators SPEC]
    python -m repro.analysis verify <grammar>... [--max-states N]
    python -m repro.analysis prune  <grammar>... [--max-states N]

Each ``<grammar>`` is either a path to a burg-style grammar text file
or a ``module:attr`` spec naming a Grammar or a zero-argument factory
(e.g. ``repro.bench.workloads:bench_grammar``).  Exit status is 1 when
any grammar has an error-severity diagnostic (``lint``), is not
certified complete (``verify``), or cannot be analyzed (``prune``).
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.completeness import verify_completeness
from repro.analysis.dominance import analyze_dominance, prune
from repro.analysis.lints import lint_grammar
from repro.errors import ReproError
from repro.selection.selector import resolve_grammar


def _add_grammar_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "grammars",
        nargs="+",
        help="grammar text file or module:attr spec (Grammar or factory)",
    )
    parser.add_argument(
        "--operators", default=None, help="module:attr OperatorSet for text grammars"
    )
    parser.add_argument(
        "--bindings",
        default=None,
        help="module:attr mapping of dynamic-cost/constraint callables for text grammars",
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static analysis of machine grammars: lint diagnostics, "
        "completeness certification, dominated-rule pruning.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lint_cmd = sub.add_parser("lint", help="report GRM00x diagnostics; exit 1 on errors")
    _add_grammar_arguments(lint_cmd)

    verify_cmd = sub.add_parser(
        "verify", help="certify completeness; exit 1 with a counterexample when not total"
    )
    _add_grammar_arguments(verify_cmd)
    verify_cmd.add_argument(
        "--max-states", type=int, default=None, help="eager-build state-pool cap"
    )

    prune_cmd = sub.add_parser(
        "prune", help="report rules never selected in any optimal cover"
    )
    _add_grammar_arguments(prune_cmd)
    prune_cmd.add_argument(
        "--max-states", type=int, default=None, help="eager-build state-pool cap"
    )

    args = parser.parse_args(argv)
    failed = False
    for spec in args.grammars:
        try:
            grammar = resolve_grammar(spec, args.operators, args.bindings)
            if args.command == "lint":
                report = lint_grammar(grammar)
                print(report.format())
                if report.has_errors:
                    failed = True
            elif args.command == "verify":
                completeness = verify_completeness(grammar, args.max_states)
                print(completeness.describe())
                if not completeness.certified:
                    failed = True
            else:
                dominance = analyze_dominance(grammar, args.max_states)
                print(dominance.describe())
                if not dominance.analyzable:
                    failed = True
                elif dominance.dominated:
                    result = prune(grammar, report=dominance)
                    print(
                        f"pruned grammar {result.grammar.name!r}: "
                        f"{len(result.grammar.rules)} rule(s) remain "
                        f"({len(result.removed)} removed)"
                    )
        except ReproError as exc:
            print(f"error: {spec}: {exc}", file=sys.stderr)
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
