"""Static analysis of machine grammars and their automata.

Three tools, also available as ``python -m repro.analysis``:

* :func:`lint_grammar` — structural lints producing stable ``GRM00x``
  diagnostics with rule provenance (see
  :mod:`repro.analysis.diagnostics` for the code table);
* :func:`verify_completeness` — drives the eager fixed point to prove
  the grammar total over its covered operators (or produce a minimal
  counterexample tree), the bit behind ``Selector.verify()`` and the
  *certified total* AOT guarantee;
* :func:`analyze_dominance` / :func:`prune` — find rules never selected
  in any optimal cover and produce a semantics-preserving reduced
  grammar, differentially validated by :func:`differential_check`.
"""

from repro.analysis.completeness import (
    CompletenessReport,
    render_tree,
    verify_completeness,
)
from repro.analysis.diagnostics import (
    DIAGNOSTIC_CODES,
    Diagnostic,
    DiagnosticReport,
)
from repro.analysis.dominance import (
    DominanceReport,
    PruneResult,
    analyze_dominance,
    differential_check,
    prune,
)
from repro.analysis.lints import lint_grammar

__all__ = [
    "DIAGNOSTIC_CODES",
    "CompletenessReport",
    "Diagnostic",
    "DiagnosticReport",
    "DominanceReport",
    "PruneResult",
    "analyze_dominance",
    "differential_check",
    "lint_grammar",
    "prune",
    "render_tree",
    "verify_completeness",
]
