"""Completeness certification for tree-parsing automata.

A grammar is *complete* (total) when every forest built from the
operators it covers labels to states from which the start nonterminal
is derivable — i.e. instruction selection can never fail with a "no
cover" error.  On-demand automata defer table construction to runtime,
so an incomplete grammar only fails when a user's forest hits the bad
(operator, child-state) combination; this verifier finds such holes
*offline* by driving the eager fixed point
(:meth:`~repro.selection.automaton.OnDemandAutomaton.build_eager`) and
checking every reachable combination, and emits a **minimal
counterexample tree** when the grammar is incomplete.

Soundness notes:

* Dynamic-cost and constrained rules can only *add* derivations (a
  failed constraint removes one rule, but the verifier certifies the
  static core obtained via ``without_dynamic_rules()``, which has no
  such rules to lose).  Completeness of the static core therefore
  implies completeness of the full grammar; the report records how many
  dynamic rules were set aside under ``dynamic_rules_assumed``.
* After ``build_eager``, the pool holds exactly the reachable states
  (children of distinct subtrees are independent).  The verifier then
  restricts attention to **value-reachable** states — the fixed point
  of transitions over value (non-statement) operators from the leaf
  states up — because forest operands can only be value trees; states
  produced by statement operators never appear as children.
* Error states (no derivations) are kept in the value-reachable set and
  propagate upward, so a value subtree that breaks labeling is found
  through whichever statement combination it reaches.

Completeness is certified **relative to the covered operator set**: the
operators for which the grammar has at least one rule.  Forests using
other operators of the dialect fail trivially and are reported by the
``GRM009`` lint instead.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import AnalysisError
from repro.grammar.costs import is_finite
from repro.grammar.grammar import Grammar
from repro.ir.node import Node
from repro.selection.automaton import OnDemandAutomaton

__all__ = ["CompletenessReport", "render_tree", "verify_completeness"]

#: Witness entry: (tree size, operator name, child state indices).
_Witness = tuple[int, str, tuple[int, ...]]


@dataclass
class CompletenessReport:
    """Outcome of :func:`verify_completeness`."""

    grammar: str
    start: str | None
    #: True when every reachable combination derives the start nonterminal.
    complete: bool = False
    #: Human-readable explanation when not complete (or not analyzable).
    reason: str = ""
    #: Reachable state count after the eager fixed point.
    states: int = 0
    #: Value-reachable states (the child universe actually checked).
    value_states: int = 0
    #: (statement operator, child combination) pairs checked.
    transitions_checked: int = 0
    #: Statement operators whose combinations were checked.
    operators_checked: list[str] = field(default_factory=list)
    #: Dynamic rules set aside (their applicability only adds derivations).
    dynamic_rules_assumed: int = 0
    #: True when the max_states cap stopped the eager build (not analyzable).
    capped: bool = False
    #: Minimal failing statement tree, or None when complete/not analyzable.
    counterexample: Node | None = None
    #: Root operator of the counterexample.
    counterexample_operator: str = ""

    @property
    def certified(self) -> bool:
        """True only for a full, uncapped proof of completeness."""
        return self.complete and not self.capped

    def describe(self) -> str:
        head = f"grammar {self.grammar!r} (start {self.start!r}): "
        if self.certified:
            return head + (
                f"COMPLETE — {self.transitions_checked} statement combination(s) over "
                f"{self.value_states} value state(s) all derive {self.start!r}"
                + (
                    f" ({self.dynamic_rules_assumed} dynamic rule(s) assumed additive)"
                    if self.dynamic_rules_assumed
                    else ""
                )
            )
        lines = [head + f"INCOMPLETE — {self.reason}"]
        if self.counterexample is not None:
            lines.append(f"counterexample: {render_tree(self.counterexample)}")
        return "\n".join(lines)


def render_tree(node: Node) -> str:
    """Compact one-line rendering of a counterexample tree."""
    if node.kids:
        inner = ", ".join(render_tree(kid) for kid in node.kids)
        return f"{node.op.name}({inner})"
    return node.op.name


def verify_completeness(grammar: Grammar, max_states: int | None = None) -> CompletenessReport:
    """Prove *grammar* complete over its covered operators, or refute it.

    Args:
        grammar: The grammar to certify (dynamic rules are set aside —
            the static core is what gets verified; see module docs).
        max_states: Safety cap forwarded to ``build_eager``; when the
            cap fires the report is inconclusive (``capped=True``,
            ``complete=False``).

    Returns:
        A :class:`CompletenessReport`; ``report.certified`` is the bit
        stamped into AOT artifacts.
    """
    report = CompletenessReport(grammar=grammar.name, start=grammar.start)
    if grammar.start is None:
        report.reason = "grammar has no start nonterminal"
        return report
    if grammar.start not in {rule.lhs for rule in grammar.rules}:
        report.reason = f"start nonterminal {grammar.start!r} is never derived"
        return report

    static = grammar
    if grammar.has_dynamic_rules:
        static = grammar.without_dynamic_rules()
        static.start = grammar.start
        report.dynamic_rules_assumed = len(grammar.rules) - len(static.rules)

    automaton = OnDemandAutomaton(static)
    stats = automaton.build_eager(max_states)
    report.states = len(automaton.pool)
    if stats["capped"]:
        report.capped = True
        report.reason = (
            f"eager construction capped at {max_states} states; completeness is undecided"
        )
        return report
    # The static core has no dynamic rules, so nothing can be skipped.
    assert not stats["skipped"], "static core unexpectedly skipped operators"

    operators = automaton.grammar.operators
    tables = automaton._tables
    value_ops = {name: t for name, t in tables.items() if not operators[name].is_statement}
    stmt_ops = {name: t for name, t in tables.items() if operators[name].is_statement}
    if not stmt_ops:
        report.reason = "no rule covers any statement operator; no forest root can be labeled"
        return report

    # -- value-reachable states and minimal witness trees ---------------
    # Bellman-Ford-style relaxation over value-operator transitions:
    # witness[dest] = minimal tree size reaching dest, with the edge
    # (operator, child states) achieving it.
    witness: dict[int, _Witness] = {}
    changed = True
    while changed:
        changed = False
        for name, table in value_ops.items():
            for arity in table.rules_by_arity:
                for kid_idxs, dest in _table_edges(table, arity):
                    if any(idx not in witness for idx in kid_idxs):
                        continue
                    size = 1 + sum(witness[idx][0] for idx in kid_idxs)
                    best = witness.get(dest)
                    if best is None or size < best[0]:
                        witness[dest] = (size, name, kid_idxs)
                        changed = True
    value_reachable = sorted(witness)
    report.value_states = len(value_reachable)

    # -- check every statement combination over value children ----------
    start = automaton.grammar.start or grammar.start
    report.operators_checked = sorted(stmt_ops)
    failures: list[tuple[int, str, tuple[int, ...]]] = []
    for name, table in sorted(stmt_ops.items()):
        for arity in table.rules_by_arity:
            for kid_idxs in itertools.product(value_reachable, repeat=arity):
                dest = _lookup(table, arity, kid_idxs)
                report.transitions_checked += 1
                if dest is None or not is_finite(dest.cost_of(start)):
                    size = 1 + sum(witness[idx][0] for idx in kid_idxs)
                    failures.append((size, name, kid_idxs))

    if not failures:
        report.complete = True
        return report

    size, op_name, kid_idxs = min(failures)
    report.counterexample_operator = op_name
    report.counterexample = _build_tree(operators, op_name, kid_idxs, witness)
    kids = ", ".join(
        f"state {idx} ({render_tree(_build_tree_for_state(operators, idx, witness))})"
        for idx in kid_idxs
    )
    report.reason = (
        f"statement operator {op_name} over [{kids}] labels to a state that does not "
        f"derive start {start!r}"
        if kid_idxs
        else f"statement operator {op_name} labels to a state that does not derive "
        f"start {start!r}"
    )
    return report


def _table_edges(table, arity):
    """Yield ``(child index tuple, destination index)`` for one arity."""
    if arity == 0:
        if table.nullary is not None:
            yield (), table.nullary.index
    elif arity == 1:
        for idx, dest in table.unary.items():
            yield (idx,), dest.index
    elif arity == 2:
        for idx0, row in table.binary.items():
            for idx1, dest in row.items():
                yield (idx0, idx1), dest.index
    else:
        for key, dest in table.nary.items():
            yield key, dest.index


def _lookup(table, arity, kid_idxs):
    """Transition lookup mirroring the automaton's arity specialization."""
    if arity == 0:
        return table.nullary
    if arity == 1:
        return table.unary.get(kid_idxs[0])
    if arity == 2:
        row = table.binary.get(kid_idxs[0])
        return None if row is None else row.get(kid_idxs[1])
    return table.nary.get(kid_idxs)


def _build_tree_for_state(operators, index: int, witness: dict[int, _Witness]) -> Node:
    """Reconstruct the minimal value tree whose labeling is state *index*."""
    entry = witness.get(index)
    if entry is None:
        raise AnalysisError(f"no witness tree recorded for state {index}")
    _, op_name, kid_idxs = entry
    return _build_tree(operators, op_name, kid_idxs, witness)


def _build_tree(operators, op_name: str, kid_idxs, witness: dict[int, _Witness]) -> Node:
    """Build the tree rooted at *op_name* over the witness children."""
    op = operators[op_name]
    kids = [_build_tree_for_state(operators, idx, witness) for idx in kid_idxs]
    value = 0 if op.has_payload else None
    return Node(op, kids, value=value)
