"""Unified metrics registry: counters, gauges, log2-bucket histograms.

One :class:`MetricsRegistry` per process replaces the previously
fragmented measurement surfaces (``LabelMetrics`` work counters, the
``stats()["resilience"]`` block, ``ServiceStats``, bench-local
percentile lists) with three primitive shapes:

* :class:`Counter` — a monotone integer (``inc``).
* :class:`Gauge` — a point-in-time value (``set``).
* :class:`Histogram` — fixed **log2 buckets** over non-negative
  integers (nanosecond latencies): observation *v* lands in bucket
  ``v.bit_length()``, i.e. bucket *b* covers ``[2^(b-1), 2^b - 1]``.
  Fixed buckets make :meth:`Histogram.merge` **exact** — merging is
  element-wise addition of bucket counts plus min/max/sum/count — so a
  histogram snapshot can ride home from a forked worker on the reply
  tuple and aggregate supervisor-side without any loss beyond the
  bucket resolution both sides already share.

Metrics are keyed Prometheus-style: a name plus sorted labels render
to one flat string key (``service_request_latency_ns{tenant="bench"}``),
which is also the snapshot/export key — snapshots are plain dicts of
ints and lists, picklable across the fork boundary and JSON-ready.

:func:`percentile` is the repository's one nearest-rank percentile
implementation (previously a private bench helper): exact percentiles
over raw sample lists.  :meth:`Histogram.quantile` is its mergeable
counterpart — deterministic bucket-bound estimates clamped to the
observed min/max — used where samples have already been folded into
buckets (cross-process aggregation, trace renders).
"""

from __future__ import annotations

from math import ceil
from typing import Any, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "percentile",
]

#: Log2 bucket count: bucket 63 tops out past 2^62 ns (~146 years), so
#: every real latency has a dedicated bucket and the last never clips.
BUCKETS = 64


def percentile(values: Iterable[int | float], pct: float) -> int | float | None:
    """Nearest-rank percentile over raw samples (``None`` when empty).

    The single shared implementation behind the bench report's latency
    percentiles and the trace renderer's per-phase tables.
    """
    ordered = sorted(values)
    if not ordered:
        return None
    index = min(len(ordered) - 1, round(pct / 100.0 * (len(ordered) - 1)))
    return ordered[index]


def metric_key(name: str, labels: dict[str, Any]) -> str:
    """The flat Prometheus-style key for *name* + *labels*."""
    if not labels:
        return name
    inner = ",".join(f'{key}="{labels[key]}"' for key in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotone integer counter."""

    __slots__ = ("value",)

    def __init__(self, value: int = 0) -> None:
        self.value = value

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.value})"


class Gauge:
    """A point-in-time value (queue depth, pool size)."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0) -> None:
        self.value = value

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.value})"


class Histogram:
    """Fixed-log2-bucket histogram over non-negative integers.

    Bucket index of observation *v* is ``v.bit_length()`` (0 for
    ``v <= 0``), clamped to the last bucket.  ``count``/``sum``/``min``/
    ``max`` are tracked exactly; :meth:`merge` is exact by construction.
    """

    __slots__ = ("counts", "count", "sum", "min", "max")

    def __init__(self) -> None:
        self.counts = [0] * BUCKETS
        self.count = 0
        self.sum = 0
        self.min: int | None = None
        self.max: int | None = None

    def observe(self, value: int | float) -> None:
        value = int(value)
        index = value.bit_length() if value > 0 else 0
        if index >= BUCKETS:
            index = BUCKETS - 1
        self.counts[index] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @staticmethod
    def bucket_upper(index: int) -> int:
        """Inclusive upper bound of bucket *index* (0 for bucket 0)."""
        return (1 << index) - 1 if index > 0 else 0

    def quantile(self, q: float) -> int | None:
        """Deterministic nearest-rank quantile estimate (``q`` in [0, 1]).

        Returns the containing bucket's upper bound, clamped to the
        observed ``[min, max]`` — so two histograms built from the same
        observations (in any split or order) answer identically, which
        is what lets a trace render reproduce a bench report's numbers
        exactly.
        """
        if self.count == 0 or self.min is None or self.max is None:
            return None
        rank = min(self.count, max(1, ceil(q * self.count)))
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank:
                return max(self.min, min(self.bucket_upper(index), self.max))
        return self.max  # pragma: no cover - counts always reach rank

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def merge(self, other: "Histogram | dict[str, Any]") -> "Histogram":
        """Exactly accumulate *other* (a histogram or its snapshot)."""
        if isinstance(other, Histogram):
            other = other.snapshot()
        counts = other["counts"]
        own = self.counts
        for index, bucket_count in enumerate(counts[:BUCKETS]):
            own[index] += bucket_count
        self.count += other["count"]
        self.sum += other["sum"]
        other_min = other["min"]
        other_max = other["max"]
        if other_min is not None and (self.min is None or other_min < self.min):
            self.min = other_min
        if other_max is not None and (self.max is None or other_max > self.max):
            self.max = other_max
        return self

    def snapshot(self) -> dict[str, Any]:
        """Picklable/JSON-ready view; :meth:`merge` accepts it back."""
        return {
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_snapshot(cls, snapshot: dict[str, Any]) -> "Histogram":
        histogram = cls()
        histogram.merge(snapshot)
        return histogram

    @classmethod
    def of(cls, values: Iterable[int | float]) -> "Histogram":
        histogram = cls()
        for value in values:
            histogram.observe(value)
        return histogram

    def __repr__(self) -> str:
        return f"Histogram(count={self.count}, min={self.min}, max={self.max})"


class MetricsRegistry:
    """A process-local registry of named, labeled metrics.

    ``counter``/``gauge``/``histogram`` are get-or-create: callers may
    hold the returned object to skip the key lookup on hot paths.
    :meth:`snapshot` is picklable (it rides on worker reply tuples) and
    :meth:`merge_snapshot` folds a snapshot back in — counters and
    histograms add exactly, gauges overwrite (last writer wins).
    """

    enabled = True

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str, **labels: Any) -> Counter:
        key = metric_key(name, labels)
        metric = self.counters.get(key)
        if metric is None:
            metric = self.counters[key] = Counter()
        return metric

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = metric_key(name, labels)
        metric = self.gauges.get(key)
        if metric is None:
            metric = self.gauges[key] = Gauge()
        return metric

    def histogram(self, name: str, **labels: Any) -> Histogram:
        key = metric_key(name, labels)
        metric = self.histograms.get(key)
        if metric is None:
            metric = self.histograms[key] = Histogram()
        return metric

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict view: picklable across forks, JSON-serializable."""
        return {
            "counters": {key: c.value for key, c in self.counters.items()},
            "gauges": {key: g.value for key, g in self.gauges.items()},
            "histograms": {key: h.snapshot() for key, h in self.histograms.items()},
        }

    def merge_snapshot(self, snapshot: dict[str, Any]) -> "MetricsRegistry":
        """Fold a :meth:`snapshot` (e.g. from a forked worker) back in."""
        if not snapshot:
            return self
        for key, value in snapshot.get("counters", {}).items():
            metric = self.counters.get(key)
            if metric is None:
                metric = self.counters[key] = Counter()
            metric.value += value
        for key, value in snapshot.get("gauges", {}).items():
            gauge = self.gauges.get(key)
            if gauge is None:
                gauge = self.gauges[key] = Gauge()
            gauge.value = value
        for key, hist_snapshot in snapshot.get("histograms", {}).items():
            histogram = self.histograms.get(key)
            if histogram is None:
                histogram = self.histograms[key] = Histogram()
            histogram.merge(hist_snapshot)
        return self

    def flatten(self) -> dict[str, Any]:
        """One flat ``key -> value`` view (the ``stats()["obs"]`` shape).

        Counters and gauges map to their values; each histogram expands
        to ``_count``/``_sum``/``_min``/``_max``/``_p50``/``_p95``/
        ``_p99`` entries (label braces stay attached to the base name).
        """
        flat: dict[str, Any] = {}
        for key, counter in self.counters.items():
            flat[key] = counter.value
        for key, gauge in self.gauges.items():
            flat[key] = gauge.value
        for key, histogram in self.histograms.items():
            name, labels = _split_key(key)
            for suffix, value in (
                ("count", histogram.count),
                ("sum", histogram.sum),
                ("min", histogram.min),
                ("max", histogram.max),
                ("p50", histogram.quantile(0.50)),
                ("p95", histogram.quantile(0.95)),
                ("p99", histogram.quantile(0.99)),
            ):
                flat[f"{name}_{suffix}{labels}"] = value
        return flat

    def clear(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()

    def __len__(self) -> int:
        return len(self.counters) + len(self.gauges) + len(self.histograms)

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self.counters)}, "
            f"gauges={len(self.gauges)}, histograms={len(self.histograms)})"
        )


def _split_key(key: str) -> tuple[str, str]:
    """Split ``name{labels}`` into ``(name, "{labels}")`` ("" without)."""
    brace = key.find("{")
    if brace < 0:
        return key, ""
    return key[:brace], key[brace:]


class _NullMetric:
    """Shared no-op metric for the disabled registry."""

    __slots__ = ()
    value = 0
    count = 0
    sum = 0
    min = None
    max = None

    def inc(self, amount: int = 1) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: int | float) -> None:
        return None

    def quantile(self, q: float) -> None:
        return None

    def mean(self) -> float:
        return 0.0


_NULL_METRIC = _NullMetric()


class NullRegistry:
    """The disabled registry: hands out shared no-op metrics."""

    enabled = False

    def counter(self, name: str, **labels: Any) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str, **labels: Any) -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str, **labels: Any) -> _NullMetric:
        return _NULL_METRIC

    def snapshot(self) -> dict[str, Any]:
        return {}

    def merge_snapshot(self, snapshot: dict[str, Any]) -> "NullRegistry":
        return self

    def flatten(self) -> dict[str, Any]:
        return {}

    def clear(self) -> None:
        return None

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "NullRegistry()"


#: The process-wide disabled registry.
NULL_REGISTRY = NullRegistry()
