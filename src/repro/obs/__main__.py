"""CLI for the observability subsystem.

Subcommands::

    python -m repro.obs render trace.jsonl [--json]
        Summarize a JSONL trace dump into per-phase and per-tenant
        latency tables (``--json`` emits the machine-readable summary).

    python -m repro.obs prom metrics.json
        Convert a metrics-registry snapshot (a JSON dump of
        :meth:`~repro.obs.MetricsRegistry.snapshot`) to Prometheus
        text exposition on stdout.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs.export import load_trace, render_trace, to_prometheus, trace_summary


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs", description="Observability exporters"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    render = sub.add_parser("render", help="summarize a JSONL trace dump")
    render.add_argument("trace", type=Path, help="path to a JSONL trace dump")
    render.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable summary instead of tables",
    )

    prom = sub.add_parser("prom", help="snapshot JSON -> Prometheus text")
    prom.add_argument("snapshot", type=Path, help="metrics-registry snapshot JSON")

    args = parser.parse_args(argv)

    if args.command == "render":
        spans = load_trace(args.trace)
        if args.json:
            print(json.dumps(trace_summary(spans), indent=2, sort_keys=True))
        else:
            sys.stdout.write(render_trace(spans))
        return 0

    snapshot = json.loads(args.snapshot.read_text(encoding="utf-8"))
    sys.stdout.write(to_prometheus(snapshot))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
