"""Observability: span tracing, unified metrics, exporters.

The subsystem has three layers:

* :mod:`repro.obs.trace` — nanosecond span tracer with parent links and
  a bounded ring buffer (plus the span-native ``Timer``/``Stopwatch``).
* :mod:`repro.obs.metrics` — counters, gauges, and exactly-mergeable
  log2-bucket latency histograms behind one registry.
* :mod:`repro.obs.export` — Prometheus text exposition, JSONL trace
  dumps, and the ``python -m repro.obs`` render CLI.

:class:`Observability` bundles one tracer + one registry; the
process-wide :data:`NULL_OBS` is the disabled bundle — every component
answers ``enabled = False``, so instrumented code guards hot work with
a single attribute check and pays nothing when observability is off::

    obs = Observability()
    selector = Selector(grammar, config=SelectorConfig(observe=obs))
    ...
    print(obs.metrics.flatten())
    write_trace(path, obs.tracer.spans())
"""

from __future__ import annotations

from typing import Any

from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    metric_key,
    percentile,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Stopwatch,
    Timer,
    Tracer,
    spans_by_name,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_OBS",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullObservability",
    "NullRegistry",
    "NullTracer",
    "Observability",
    "Span",
    "Stopwatch",
    "Timer",
    "Tracer",
    "metric_key",
    "percentile",
    "resolve_obs",
    "spans_by_name",
]


class Observability:
    """One tracer + one metrics registry, handed through the stack.

    ``SelectorConfig(observe=obs)``, ``ArtifactCache(..., obs=obs)`` and
    ``SelectionService(..., obs=obs)`` all accept the same bundle, so a
    single instance sees the whole request path.
    """

    enabled = True

    def __init__(self, *, trace_capacity: int = 4096) -> None:
        self.tracer = Tracer(capacity=trace_capacity)
        self.metrics = MetricsRegistry()

    def clear(self) -> None:
        self.tracer.clear()
        self.metrics.clear()

    def __repr__(self) -> str:
        return f"Observability(tracer={self.tracer!r}, metrics={self.metrics!r})"


class NullObservability:
    """The disabled bundle: null tracer + null registry, all no-ops."""

    enabled = False
    tracer = NULL_TRACER
    metrics = NULL_REGISTRY

    def clear(self) -> None:
        return None

    def __repr__(self) -> str:
        return "NullObservability()"


#: The process-wide disabled bundle (safe to share: it holds no state).
NULL_OBS = NullObservability()


def resolve_obs(obs: Any) -> "Observability | NullObservability":
    """Normalize an ``observe=``/``obs=`` argument to a bundle.

    ``None``/``False`` mean disabled, ``True`` builds a fresh bundle,
    and an existing bundle passes through.
    """
    if obs is None or obs is False:
        return NULL_OBS
    if obs is True:
        return Observability()
    return obs
