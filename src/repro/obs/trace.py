"""Low-overhead span tracing for the selection pipeline and service.

A :class:`Span` is one named, nanosecond-bounded unit of work —
a pipeline phase (``pipeline.validate`` / ``pipeline.label`` /
``pipeline.tape_compile`` / ``pipeline.emit``), an artifact-cache
operation (``artifact.load`` / ``artifact.compile`` /
``artifact.quarantine``), or a service request's full lifecycle
(``service.request``, with ``service.batch`` covering dispatch →
reply).  Spans carry ids and parent links so a dump reconstructs the
tree, and land in a bounded ring buffer (oldest spans drop first), so
a long-lived service traces its recent past at O(1) memory.

Two design rules keep the tracer honest about overhead:

* **The disabled path is one attribute check.**  Hot code holds a
  tracer reference and guards with ``if tracer.enabled:``; the
  process-wide :data:`NULL_TRACER` answers ``False`` forever, so a
  selector built without observability pays a single attribute load
  per batch, not a call.
* **Recording is append-only.**  :meth:`Tracer.record` takes
  already-measured ``start_ns``/``end_ns`` boundaries (the pipeline
  already times its phases; the tracer never adds clock calls to a
  measured window) and appends one :class:`Span` to a
  :class:`collections.deque` — no locks, no allocation beyond the span
  itself.

:class:`Timer` and :class:`Stopwatch` — previously
``repro.metrics.timer`` — live here now as the span-native timing
helpers: both keep their historical wall-clock-seconds surface and
optionally record a span per measured window when handed a tracer.
"""

from __future__ import annotations

import time
from collections import deque
from itertools import count
from typing import Any, Iterable, Iterator

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Stopwatch",
    "Timer",
    "Tracer",
]


class Span:
    """One completed, named unit of work with nanosecond bounds."""

    __slots__ = ("name", "span_id", "parent_id", "start_ns", "end_ns", "attrs")

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: int | None,
        start_ns: int,
        end_ns: int,
        attrs: dict[str, Any] | None = None,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.attrs = attrs if attrs is not None else {}

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready view (one JSONL trace-dump line)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, row: dict[str, Any]) -> "Span":
        return cls(
            row["name"],
            row["span_id"],
            row.get("parent_id"),
            row["start_ns"],
            row["end_ns"],
            dict(row.get("attrs") or {}),
        )

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id}, "
            f"duration={self.duration_ns} ns, attrs={self.attrs})"
        )


class _SpanHandle:
    """Context manager behind :meth:`Tracer.span` (lexical spans)."""

    __slots__ = ("_tracer", "_name", "_attrs", "span_id", "_start_ns")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self.span_id = tracer.next_id()

    def __enter__(self) -> "_SpanHandle":
        tracer = self._tracer
        tracer._stack.append(self.span_id)
        self._start_ns = time.monotonic_ns()
        return self

    def __exit__(self, *exc_info: object) -> None:
        end_ns = time.monotonic_ns()
        tracer = self._tracer
        stack = tracer._stack
        if stack and stack[-1] == self.span_id:
            stack.pop()
        parent_id = stack[-1] if stack else None
        tracer.record(
            self._name,
            self._start_ns,
            end_ns,
            span_id=self.span_id,
            parent_id=parent_id,
            **self._attrs,
        )


class Tracer:
    """Bounded-ring-buffer span recorder.  ``enabled`` is always True —
    disable by holding :data:`NULL_TRACER` instead."""

    enabled = True

    def __init__(self, capacity: int = 4096) -> None:
        self._spans: deque[Span] = deque(maxlen=max(1, capacity))
        self._ids = count(1)
        #: Lexical-span parent stack (single-threaded use; cross-thread
        #: spans pass parent_id explicitly to :meth:`record`).
        self._stack: list[int] = []
        #: Total spans ever recorded (``recorded - len(spans())`` were
        #: dropped by the ring buffer).
        self.recorded = 0

    @property
    def capacity(self) -> int:
        return self._spans.maxlen or 0

    def next_id(self) -> int:
        """Allocate a span id (for pre-linking children to a parent)."""
        return next(self._ids)

    def record(
        self,
        name: str,
        start_ns: int,
        end_ns: int,
        *,
        span_id: int | None = None,
        parent_id: int | None = None,
        **attrs: Any,
    ) -> int:
        """Append one already-measured span; returns its id."""
        if span_id is None:
            span_id = next(self._ids)
        self._spans.append(Span(name, span_id, parent_id, start_ns, end_ns, attrs))
        self.recorded += 1
        return span_id

    def span(self, name: str, **attrs: Any) -> _SpanHandle:
        """A lexical span: ``with tracer.span("artifact.load"): ...``.

        Nested ``span()`` calls on the same thread link parent ids
        automatically.
        """
        return _SpanHandle(self, name, attrs)

    def spans(self) -> list[Span]:
        """Snapshot of the ring buffer, oldest first."""
        return list(self._spans)

    def clear(self) -> None:
        self._spans.clear()
        self._stack.clear()

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans())

    def __repr__(self) -> str:
        return f"Tracer(spans={len(self._spans)}, capacity={self.capacity})"


class _NullSpanHandle:
    """Shared no-op context manager for the disabled tracer."""

    __slots__ = ()
    span_id = 0

    def __enter__(self) -> "_NullSpanHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN_HANDLE = _NullSpanHandle()


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    Hot paths guard with ``if tracer.enabled:`` — one attribute check —
    so holding the process-wide :data:`NULL_TRACER` costs nothing
    beyond that load.
    """

    enabled = False
    recorded = 0
    capacity = 0

    def next_id(self) -> int:
        return 0

    def record(self, name: str, start_ns: int, end_ns: int, **kwargs: Any) -> int:
        return 0

    def span(self, name: str, **attrs: Any) -> _NullSpanHandle:
        return _NULL_SPAN_HANDLE

    def spans(self) -> list[Span]:
        return []

    def clear(self) -> None:
        return None

    def __len__(self) -> int:
        return 0

    def __iter__(self) -> Iterator[Span]:
        return iter(())

    def __repr__(self) -> str:
        return "NullTracer()"


#: The process-wide disabled tracer (the single-attribute-check path).
NULL_TRACER = NullTracer()


# ----------------------------------------------------------------------
# Span-native timing helpers (the former repro.metrics.timer surface)


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Optionally records a span: ``Timer(tracer=obs.tracer,
    name="eager.build")`` appends one span for the measured window on
    exit (skipped when the tracer is disabled).

    Example::

        with Timer() as t:
            work()
        print(t.elapsed)
    """

    def __init__(
        self,
        tracer: "Tracer | NullTracer | None" = None,
        name: str = "timer",
        **attrs: Any,
    ) -> None:
        self.elapsed = 0.0
        self._start = 0.0
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._start
        tracer = self._tracer
        if tracer is not None and tracer.enabled:
            end_ns = time.monotonic_ns()
            tracer.record(
                self._name, end_ns - int(self.elapsed * 1e9), end_ns, **self._attrs
            )


class Stopwatch:
    """Accumulating stopwatch with named laps.

    With a tracer, each :meth:`stop` records one span named
    ``<name>.<lap>`` (or *name* when the lap is anonymous).
    """

    def __init__(
        self, tracer: "Tracer | NullTracer | None" = None, name: str = "stopwatch"
    ) -> None:
        self.total = 0.0
        self.laps: dict[str, float] = {}
        self._start = 0.0
        self._running = False
        self._tracer = tracer
        self._name = name

    def start(self) -> None:
        self._start = time.perf_counter()
        self._running = True

    def stop(self, lap: str | None = None) -> float:
        if not self._running:
            return 0.0
        elapsed = time.perf_counter() - self._start
        self._running = False
        self.total += elapsed
        if lap is not None:
            self.laps[lap] = self.laps.get(lap, 0.0) + elapsed
        tracer = self._tracer
        if tracer is not None and tracer.enabled:
            end_ns = time.monotonic_ns()
            name = f"{self._name}.{lap}" if lap is not None else self._name
            tracer.record(name, end_ns - int(elapsed * 1e9), end_ns)
        return elapsed


def spans_by_name(spans: Iterable[Span]) -> dict[str, list[Span]]:
    """Group *spans* by name, preserving order (render/summary helper)."""
    groups: dict[str, list[Span]] = {}
    for span in spans:
        groups.setdefault(span.name, []).append(span)
    return groups
