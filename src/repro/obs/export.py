"""Exporters: Prometheus text exposition, JSONL trace dumps, renders.

Three output shapes, all built from the in-memory tracer/registry:

* :func:`to_prometheus` — the plain-text exposition format any
  Prometheus-compatible scraper ingests (counters, gauges, and
  histograms flattened to ``_count``/``_sum``/``_min``/``_max``/
  quantile samples).
* :func:`write_trace` / :func:`load_trace` — a JSONL dump of spans,
  one :meth:`Span.as_dict` object per line, loss-free both ways.
* :func:`render_trace` — per-phase and per-tenant latency summaries of
  a dump.  Per-tenant ``service.request`` quantiles are computed by
  rebuilding the same :class:`~repro.obs.metrics.Histogram` the bench
  report used, so a render of a bench-produced trace reproduces the
  report's per-tenant p50/p99 exactly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

from repro.metrics.tables import format_table
from repro.obs.metrics import Histogram, MetricsRegistry, metric_key, percentile
from repro.obs.trace import Span, spans_by_name

__all__ = [
    "load_trace",
    "render_trace",
    "to_prometheus",
    "trace_summary",
    "write_trace",
]


# ----------------------------------------------------------------------
# Prometheus text exposition


def _prom_line(name: str, labels: str, value: Any) -> str:
    if value is None:
        value = "NaN"
    return f"{name}{labels} {value}"


def _split_key(key: str) -> tuple[str, str]:
    brace = key.find("{")
    if brace < 0:
        return key, ""
    return key[:brace], key[brace:]


def _label_join(labels: str, extra: str) -> str:
    """Append one ``k="v"`` pair to a ``{...}`` label block ("" allowed)."""
    if not labels:
        return f"{{{extra}}}"
    return f"{labels[:-1]},{extra}}}"


def to_prometheus(source: "MetricsRegistry | dict[str, Any]") -> str:
    """Render a registry (or its snapshot) as Prometheus text format.

    Histograms expose cumulative ``_bucket`` samples with ``le`` bounds
    (log2 upper bounds, then ``+Inf``) plus ``_count``/``_sum``, so
    standard ``histogram_quantile`` queries work unmodified.
    """
    snapshot = source.snapshot() if isinstance(source, MetricsRegistry) else source
    lines: list[str] = []
    seen_types: set[str] = set()

    def declare(name: str, kind: str) -> None:
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for key in sorted(snapshot.get("counters", {})):
        name, labels = _split_key(key)
        declare(name, "counter")
        lines.append(_prom_line(name, labels, snapshot["counters"][key]))
    for key in sorted(snapshot.get("gauges", {})):
        name, labels = _split_key(key)
        declare(name, "gauge")
        lines.append(_prom_line(name, labels, snapshot["gauges"][key]))
    for key in sorted(snapshot.get("histograms", {})):
        name, labels = _split_key(key)
        hist = snapshot["histograms"][key]
        declare(name, "histogram")
        cumulative = 0
        for index, bucket_count in enumerate(hist["counts"]):
            if not bucket_count:
                continue
            cumulative += bucket_count
            bound = Histogram.bucket_upper(index)
            lines.append(
                _prom_line(
                    f"{name}_bucket", _label_join(labels, f'le="{bound}"'), cumulative
                )
            )
        lines.append(
            _prom_line(f"{name}_bucket", _label_join(labels, 'le="+Inf"'), hist["count"])
        )
        lines.append(_prom_line(f"{name}_count", labels, hist["count"]))
        lines.append(_prom_line(f"{name}_sum", labels, hist["sum"]))
    return "\n".join(lines) + "\n" if lines else ""


# ----------------------------------------------------------------------
# JSONL trace dumps


def write_trace(path: str | Path, spans: Iterable[Span]) -> int:
    """Dump *spans* as JSONL (one object per line); returns the count."""
    path = Path(path)
    written = 0
    with path.open("w", encoding="utf-8") as handle:
        for span in spans:
            handle.write(json.dumps(span.as_dict(), sort_keys=True))
            handle.write("\n")
            written += 1
    return written


def load_trace(path: str | Path) -> list[Span]:
    """Load a JSONL trace dump back into :class:`Span` objects."""
    spans: list[Span] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(Span.from_dict(json.loads(line)))
    return spans


# ----------------------------------------------------------------------
# Render: summarize a trace dump into latency tables


def trace_summary(spans: Iterable[Span]) -> dict[str, Any]:
    """Machine-readable per-phase and per-tenant summary of *spans*.

    ``per_phase`` holds nearest-rank percentiles over the raw span
    durations of each span name.  ``per_tenant`` summarizes
    ``service.request`` spans grouped by their ``tenant`` attribute
    through :class:`Histogram` — the same class the service metrics
    use, so these numbers match a bench report built from the same
    requests.
    """
    groups = spans_by_name(spans)
    per_phase: dict[str, dict[str, Any]] = {}
    for name in sorted(groups):
        durations = [span.duration_ns for span in groups[name]]
        per_phase[name] = {
            "count": len(durations),
            "total_ns": sum(durations),
            "p50_ns": percentile(durations, 50.0),
            "p95_ns": percentile(durations, 95.0),
            "p99_ns": percentile(durations, 99.0),
        }

    per_tenant: dict[str, dict[str, Any]] = {}
    by_tenant: dict[str, list[int]] = {}
    for span in groups.get("service.request", []):
        tenant = str(span.attrs.get("tenant", "?"))
        by_tenant.setdefault(tenant, []).append(span.duration_ns)
    for tenant in sorted(by_tenant):
        histogram = Histogram.of(by_tenant[tenant])
        per_tenant[tenant] = {
            "count": histogram.count,
            "latency_p50_ns": histogram.quantile(0.50),
            "latency_p95_ns": histogram.quantile(0.95),
            "latency_p99_ns": histogram.quantile(0.99),
        }
    return {"per_phase": per_phase, "per_tenant": per_tenant}


def render_trace(spans: Iterable[Span]) -> str:
    """Human-readable render of :func:`trace_summary` (two tables)."""
    summary = trace_summary(list(spans))
    sections: list[str] = []

    phase_rows = [
        {"span": name, **stats} for name, stats in summary["per_phase"].items()
    ]
    if phase_rows:
        sections.append(
            format_table(
                phase_rows,
                columns=["span", "count", "total_ns", "p50_ns", "p95_ns", "p99_ns"],
                title="spans by name",
            )
        )
    else:
        sections.append("(no spans)")

    tenant_rows = [
        {"tenant": tenant, **stats} for tenant, stats in summary["per_tenant"].items()
    ]
    if tenant_rows:
        sections.append(
            format_table(
                tenant_rows,
                columns=[
                    "tenant",
                    "count",
                    "latency_p50_ns",
                    "latency_p95_ns",
                    "latency_p99_ns",
                ],
                title="service requests by tenant",
            )
        )
    return "\n\n".join(sections) + "\n"


def metric_key_for(name: str, **labels: Any) -> str:
    """Convenience re-export of :func:`repro.obs.metrics.metric_key`."""
    return metric_key(name, labels)
