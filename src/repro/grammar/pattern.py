"""Tree patterns: the right-hand sides of tree-grammar rules.

A pattern is a tree whose internal nodes name IR operators and whose
leaves are either leaf operators or nonterminals.  A pattern consisting
of a single nonterminal makes its rule a *chain rule*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import GrammarError

__all__ = ["Pattern", "op_pattern", "nt_pattern"]


@dataclass(frozen=True)
class Pattern:
    """One pattern node.

    Attributes:
        kind: ``"op"`` for an operator node, ``"nt"`` for a nonterminal leaf.
        symbol: Operator name or nonterminal name.
        kids: Child patterns (empty for nonterminal leaves and leaf operators).
    """

    kind: str
    symbol: str
    kids: tuple["Pattern", ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("op", "nt"):
            raise GrammarError(f"invalid pattern kind {self.kind!r}")
        if self.kind == "nt" and self.kids:
            raise GrammarError(f"nonterminal pattern {self.symbol!r} cannot have children")

    @property
    def is_nonterminal(self) -> bool:
        return self.kind == "nt"

    @property
    def is_operator(self) -> bool:
        return self.kind == "op"

    def nonterminal_leaves(self) -> list[str]:
        """Nonterminal names in left-to-right order (with repetition).

        These are the operands the reducer recurses into; their order
        defines the order of operand values passed to emit actions.
        """
        if self.is_nonterminal:
            return [self.symbol]
        leaves: list[str] = []
        for kid in self.kids:
            leaves.extend(kid.nonterminal_leaves())
        return leaves

    def operators(self) -> list[str]:
        """Operator names used anywhere in the pattern."""
        if self.is_nonterminal:
            return []
        ops = [self.symbol]
        for kid in self.kids:
            ops.extend(kid.operators())
        return ops

    def depth(self) -> int:
        """Height of the pattern (1 for a single node)."""
        if not self.kids:
            return 1
        return 1 + max(kid.depth() for kid in self.kids)

    def node_count(self) -> int:
        """Number of operator nodes in the pattern."""
        if self.is_nonterminal:
            return 0
        return 1 + sum(kid.node_count() for kid in self.kids)

    def walk(self) -> Iterator["Pattern"]:
        """Preorder traversal of all pattern nodes."""
        yield self
        for kid in self.kids:
            yield from kid.walk()

    def __str__(self) -> str:
        if self.is_nonterminal:
            return self.symbol
        if not self.kids:
            return self.symbol
        inner = ",".join(str(kid) for kid in self.kids)
        return f"{self.symbol}({inner})"


def op_pattern(op_name: str, *kids: Pattern) -> Pattern:
    """Build an operator pattern node."""
    return Pattern("op", op_name, tuple(kids))


def nt_pattern(nt_name: str) -> Pattern:
    """Build a nonterminal pattern leaf."""
    return Pattern("nt", nt_name)
