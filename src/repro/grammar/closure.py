"""Chain-rule closure shared by all labelers and the automaton generators.

Given per-nonterminal costs established by base rules, the closure
repeatedly applies chain rules ``lhs : rhs (c)`` — improving
``cost[lhs]`` to ``cost[rhs] + c`` when that is cheaper — until a fixed
point is reached.  This is exactly the "checked repeatedly until there
are no changes" loop of lburg's labeler and of burg-style state
construction.
"""

from __future__ import annotations

from typing import Callable

from repro.grammar.costs import INFINITE, add_costs
from repro.grammar.grammar import Grammar
from repro.grammar.rule import Rule

__all__ = ["chain_closure", "chain_cost_matrix"]


def chain_closure(
    grammar: Grammar,
    costs: dict[str, int],
    rules: dict[str, Rule],
    rule_cost: Callable[[Rule], int] | None = None,
) -> int:
    """Apply chain rules to *costs*/*rules* until a fixed point.

    Args:
        grammar: The grammar whose chain rules are applied.
        costs: Mutable map nonterminal → best cost so far; missing
            entries count as :data:`~repro.grammar.costs.INFINITE`.
        rules: Mutable map nonterminal → rule achieving that cost.
        rule_cost: Cost of a chain rule; defaults to its static cost.
            Labelers that evaluate dynamic costs pass a node-specific
            function here.

    Returns:
        The number of chain-rule checks performed (a labeling-effort
        metric: dynamic programming pays this per node, automata pay it
        per state construction).
    """
    if rule_cost is None:
        rule_cost = Rule.static_cost
    chain_rules = grammar.chain_rules()
    checks = 0
    changed = True
    while changed:
        changed = False
        for rule in chain_rules:
            checks += 1
            source_cost = costs.get(rule.pattern.symbol, INFINITE)
            if source_cost >= INFINITE:
                continue
            cost = rule_cost(rule)
            if cost >= INFINITE:
                continue
            total = add_costs(source_cost, cost)
            if total < costs.get(rule.lhs, INFINITE):
                costs[rule.lhs] = total
                rules[rule.lhs] = rule
                changed = True
    return checks


def chain_cost_matrix(grammar: Grammar) -> dict[str, dict[str, int]]:
    """Minimum chain-derivation cost between every pair of nonterminals.

    ``matrix[a][b]`` is the cheapest cost of deriving ``a ⇒* b`` using
    chain rules only (0 when ``a == b``, INFINITE when unreachable).
    Used by grammar analyses and by tests that validate the closure.
    """
    nts = list(grammar.nonterminals)
    matrix: dict[str, dict[str, int]] = {
        a: {b: (0 if a == b else INFINITE) for b in nts} for a in nts
    }
    for rule in grammar.chain_rules():
        if rule.cost < matrix[rule.lhs][rule.pattern.symbol]:
            matrix[rule.lhs][rule.pattern.symbol] = rule.cost
    # Floyd-Warshall over the (small) nonterminal set.
    for mid in nts:
        for a in nts:
            through = matrix[a][mid]
            if through >= INFINITE:
                continue
            row_mid = matrix[mid]
            row_a = matrix[a]
            for b in nts:
                candidate = through + row_mid[b]
                if candidate < row_a[b]:
                    row_a[b] = candidate
    return matrix
