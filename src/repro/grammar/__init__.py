"""Tree grammars: rules, patterns, costs, normalization, analyses, parsing."""

from repro.grammar.analysis import (
    GrammarAnalysis,
    analyze,
    check_grammar,
    productive_nonterminals,
    reachable_nonterminals,
    uncovered_operators,
)
from repro.grammar.closure import chain_closure, chain_cost_matrix
from repro.grammar.costs import INFINITE, add_costs, is_finite, normalize_costs
from repro.grammar.grammar import Grammar, GrammarStats
from repro.grammar.normalize import NormalizationResult, normalize
from repro.grammar.parser import parse_grammar
from repro.grammar.pattern import Pattern, nt_pattern, op_pattern
from repro.grammar.rule import Rule

__all__ = [
    "Grammar",
    "GrammarAnalysis",
    "GrammarStats",
    "INFINITE",
    "NormalizationResult",
    "Pattern",
    "Rule",
    "add_costs",
    "analyze",
    "chain_closure",
    "chain_cost_matrix",
    "check_grammar",
    "is_finite",
    "normalize",
    "normalize_costs",
    "nt_pattern",
    "op_pattern",
    "parse_grammar",
    "productive_nonterminals",
    "reachable_nonterminals",
    "uncovered_operators",
]
