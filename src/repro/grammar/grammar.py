"""The tree grammar: a machine description for instruction selection."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator

from repro.errors import GrammarError
from repro.grammar.costs import DynamicCost
from repro.grammar.pattern import Pattern, nt_pattern, op_pattern
from repro.grammar.rule import EmitAction, Rule
from repro.ir.ops import DEFAULT_OPERATORS, OperatorSet

__all__ = ["Grammar", "GrammarStats"]


@dataclass
class GrammarStats:
    """Size statistics of one grammar (reported in experiment T1)."""

    name: str
    rules: int
    chain_rules: int
    base_rules: int
    multi_node_rules: int
    dynamic_rules: int
    constrained_rules: int
    nonterminals: int
    operators_used: int
    is_normal_form: bool

    def as_row(self) -> dict[str, object]:
        return {
            "grammar": self.name,
            "rules": self.rules,
            "chain": self.chain_rules,
            "base": self.base_rules,
            "multi-node": self.multi_node_rules,
            "dynamic": self.dynamic_rules,
            "constrained": self.constrained_rules,
            "nonterminals": self.nonterminals,
            "operators": self.operators_used,
            "normal form": self.is_normal_form,
        }


class Grammar:
    """A tree grammar: nonterminals, rules, a start nonterminal.

    Rules are added through :meth:`add_rule` (or the :meth:`rule` /
    :meth:`chain` conveniences) and numbered consecutively in the order
    of addition, which mirrors burg's rule numbers.  Index structures
    used by the labelers (rules grouped by root operator, chain rules
    grouped by right-hand-side nonterminal) are maintained incrementally
    so a grammar can also be extended while a JIT is running — one of
    the flexibility arguments of the on-demand approach.
    """

    def __init__(
        self,
        name: str = "grammar",
        operators: OperatorSet | None = None,
        start: str | None = None,
    ) -> None:
        self.name = name
        self.operators = operators if operators is not None else DEFAULT_OPERATORS
        self.start = start
        self.rules: list[Rule] = []
        self.nonterminals: list[str] = []
        self._nt_index: dict[str, int] = {}
        self._rules_by_op: dict[str, list[Rule]] = {}
        self._chain_rules: list[Rule] = []
        self._chain_rules_cache: tuple[Rule, ...] | None = None
        self._chain_rules_by_rhs: dict[str, list[Rule]] = {}
        self.version = 0

    # ------------------------------------------------------------------
    # Construction

    def declare_nonterminal(self, name: str) -> str:
        """Register a nonterminal name (idempotent) and return it."""
        if name not in self._nt_index:
            self._nt_index[name] = len(self.nonterminals)
            self.nonterminals.append(name)
        return name

    def nonterminal_index(self, name: str) -> int:
        """Dense index of a nonterminal (used for cost vectors)."""
        try:
            return self._nt_index[name]
        except KeyError:
            raise GrammarError(f"unknown nonterminal {name!r} in grammar {self.name!r}") from None

    def operator_ids(self) -> dict[str, int]:
        """Dense ids for the operators rooting any non-chain rule.

        Ids follow first-use order, so they are stable under grammar
        extension (new operators get new ids).  Used by the automaton to
        intern per-operator transition tables at sync time.
        """
        return {name: i for i, name in enumerate(self._rules_by_op)}

    def add_rule(
        self,
        lhs: str,
        pattern: Pattern,
        cost: int = 0,
        *,
        name: str = "",
        template: str | None = None,
        action: EmitAction | None = None,
        dynamic_cost: DynamicCost | None = None,
        constraint: Callable[[Any], bool] | None = None,
        constraint_name: str = "",
        is_helper: bool = False,
        source: Rule | None = None,
        line: int = 0,
        column: int = 0,
    ) -> Rule:
        """Add a rule and return it (rule number assigned automatically)."""
        self._check_pattern(pattern)
        if self.start is None:
            self.start = lhs
        self.declare_nonterminal(lhs)
        for leaf in pattern.nonterminal_leaves():
            self.declare_nonterminal(leaf)

        rule = Rule(
            lhs=lhs,
            pattern=pattern,
            cost=cost,
            number=len(self.rules) + 1,
            name=name,
            template=template,
            action=action,
            dynamic_cost=dynamic_cost,
            constraint=constraint,
            constraint_name=constraint_name,
            is_helper=is_helper,
            source=source,
            line=line,
            column=column,
        )
        self.rules.append(rule)
        if rule.is_chain:
            self._chain_rules.append(rule)
            self._chain_rules_cache = None
            self._chain_rules_by_rhs.setdefault(rule.pattern.symbol, []).append(rule)
        else:
            self._rules_by_op.setdefault(rule.pattern.symbol, []).append(rule)
        self.version += 1
        return rule

    def rule(self, text_lhs: str, pattern: Pattern, cost: int = 0, **kwargs: Any) -> Rule:
        """Alias of :meth:`add_rule` for fluent grammar construction."""
        return self.add_rule(text_lhs, pattern, cost, **kwargs)

    def chain(self, lhs: str, rhs: str, cost: int = 0, **kwargs: Any) -> Rule:
        """Add a chain rule ``lhs : rhs``."""
        return self.add_rule(lhs, nt_pattern(rhs), cost, **kwargs)

    def op_rule(self, lhs: str, op_name: str, kids: Iterable[str], cost: int = 0, **kwargs: Any) -> Rule:
        """Add a normal-form base rule ``lhs : Op(kid_nts...)``."""
        pattern = op_pattern(op_name, *[nt_pattern(kid) for kid in kids])
        return self.add_rule(lhs, pattern, cost, **kwargs)

    def _check_pattern(self, pattern: Pattern) -> None:
        for part in pattern.walk():
            if part.is_operator:
                if part.symbol not in self.operators:
                    raise GrammarError(
                        f"grammar {self.name!r}: pattern uses unknown operator {part.symbol!r}"
                    )
                expected = self.operators[part.symbol].arity
                if len(part.kids) != expected:
                    raise GrammarError(
                        f"grammar {self.name!r}: operator {part.symbol} used with "
                        f"{len(part.kids)} children, expects {expected}"
                    )

    # ------------------------------------------------------------------
    # Queries used by the labelers

    def rules_for_op(self, op_name: str) -> list[Rule]:
        """Non-chain rules whose pattern is rooted at *op_name*."""
        return self._rules_by_op.get(op_name, [])

    def chain_rules(self) -> tuple[Rule, ...]:
        """All chain rules, in rule order.

        Labelers call this once per node / state construction, so the
        result is a cached tuple returned without copying (invalidated
        when a chain rule is added).
        """
        if self._chain_rules_cache is None:
            self._chain_rules_cache = tuple(self._chain_rules)
        return self._chain_rules_cache

    def chain_rules_from(self, rhs_nt: str) -> list[Rule]:
        """Chain rules whose right-hand side is *rhs_nt*."""
        return self._chain_rules_by_rhs.get(rhs_nt, [])

    def rules_for_lhs(self, lhs: str) -> list[Rule]:
        """All rules deriving *lhs*."""
        return [rule for rule in self.rules if rule.lhs == lhs]

    def operators_used(self) -> list[str]:
        """Operator names appearing in any rule pattern."""
        seen: list[str] = []
        for rule in self.rules:
            for op_name in rule.pattern.operators():
                if op_name not in seen:
                    seen.append(op_name)
        return seen

    def dynamic_rules(self) -> list[Rule]:
        """Rules with a dynamic cost or a constraint."""
        return [rule for rule in self.rules if rule.is_dynamic]

    @property
    def is_normal_form(self) -> bool:
        """True if every rule is a chain rule or a base rule."""
        return all(rule.is_normal_form for rule in self.rules)

    @property
    def has_dynamic_rules(self) -> bool:
        return any(rule.is_dynamic for rule in self.rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    # ------------------------------------------------------------------
    # Derived grammars

    def without_dynamic_rules(self, name: str | None = None) -> "Grammar":
        """A copy with all dynamic-cost / constrained rules removed.

        Used by the code-quality experiment (T6): the paper compares
        code generated with and without the rules that need dynamic
        applicability checks.
        """
        clone = Grammar(name or f"{self.name}-static", self.operators, self.start)
        for rule in self.rules:
            if rule.is_dynamic:
                continue
            clone.add_rule(
                rule.lhs,
                rule.pattern,
                rule.cost,
                name=rule.name,
                template=rule.template,
                action=rule.action,
                is_helper=rule.is_helper,
                source=rule,
                line=rule.line,
                column=rule.column,
            )
        return clone

    def copy(self, name: str | None = None) -> "Grammar":
        """A shallow copy sharing rule objects (useful for extension tests)."""
        clone = Grammar(name or self.name, self.operators, self.start)
        for rule in self.rules:
            clone.add_rule(
                rule.lhs,
                rule.pattern,
                rule.cost,
                name=rule.name,
                template=rule.template,
                action=rule.action,
                dynamic_cost=rule.dynamic_cost,
                constraint=rule.constraint,
                constraint_name=rule.constraint_name,
                is_helper=rule.is_helper,
                source=rule.source,
                line=rule.line,
                column=rule.column,
            )
        return clone

    # ------------------------------------------------------------------
    # Statistics and validation

    def stats(self) -> GrammarStats:
        """Size statistics (experiment T1)."""
        chain = sum(1 for rule in self.rules if rule.is_chain)
        base = sum(1 for rule in self.rules if rule.is_base)
        multi = sum(1 for rule in self.rules if not rule.is_normal_form)
        dynamic = sum(1 for rule in self.rules if rule.dynamic_cost is not None)
        constrained = sum(1 for rule in self.rules if rule.constraint is not None)
        return GrammarStats(
            name=self.name,
            rules=len(self.rules),
            chain_rules=chain,
            base_rules=base,
            multi_node_rules=multi,
            dynamic_rules=dynamic,
            constrained_rules=constrained,
            nonterminals=len(self.nonterminals),
            operators_used=len(self.operators_used()),
            is_normal_form=self.is_normal_form,
        )

    def validate(self) -> None:
        """Raise :class:`~repro.errors.GrammarError` on structural problems."""
        if self.start is None:
            raise GrammarError(f"grammar {self.name!r} has no start nonterminal")
        if self.start not in self._nt_index:
            raise GrammarError(f"start nonterminal {self.start!r} never defined")
        defined = {rule.lhs for rule in self.rules}
        for rule in self.rules:
            for leaf in rule.pattern.nonterminal_leaves():
                if leaf not in defined:
                    raise GrammarError(
                        f"rule {rule.describe()} uses nonterminal {leaf!r} "
                        f"that no rule derives"
                    )
        for rule in self.rules:
            if rule.is_chain and rule.pattern.symbol == rule.lhs:
                raise GrammarError(f"self-referential chain rule {rule.describe()}")

    def __repr__(self) -> str:
        return f"Grammar({self.name!r}, rules={len(self.rules)}, nonterminals={len(self.nonterminals)})"
