"""Conversion of tree grammars to normal form.

A grammar is in normal form when every rule is either a chain rule
``nt : other_nt`` or a base rule ``nt : Op(nt, ..., nt)``.  Rules whose
patterns span several operator nodes are split by introducing helper
nonterminals, exactly as described in the tree-parsing literature: the
helper rules get cost 0 and no emit action, and the rule's cost, action
and dynamic cost / constraint stay on the *top* rule (the one matching
the pattern root), where the information they need is available.

Normalisation preserves minimum cover costs: any derivation using the
original multi-node rule corresponds one-to-one to a derivation using
the top rule plus its helpers (same total cost), and helper
nonterminals cannot be derived in any other way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.grammar.grammar import Grammar
from repro.grammar.pattern import Pattern, nt_pattern, op_pattern
from repro.grammar.rule import Rule

__all__ = ["NormalizationResult", "normalize"]


@dataclass
class NormalizationResult:
    """Outcome of :func:`normalize`."""

    grammar: Grammar
    #: Maps each original rule to the normalized rule carrying its cost/action.
    top_rule_of: dict[int, Rule] = field(default_factory=dict)
    #: Number of helper nonterminals introduced.
    helpers_introduced: int = 0


def normalize(grammar: Grammar, name: str | None = None) -> NormalizationResult:
    """Return a normal-form version of *grammar*.

    Rules already in normal form are copied as-is (keeping their
    relative order); multi-node rules are split.  The result's rules
    reference the original rules through :attr:`Rule.source`, so
    reducers and reports can always recover the user-written rule.
    """
    normalized = Grammar(
        name or f"{grammar.name}-nf",
        operators=grammar.operators,
        start=grammar.start,
    )
    # Keep the original nonterminal ordering stable (helps debugging and
    # keeps state dumps comparable between the original and the
    # normalized grammar).
    for nt in grammar.nonterminals:
        normalized.declare_nonterminal(nt)

    result = NormalizationResult(grammar=normalized)
    helper_counter = 0

    for rule in grammar.rules:
        if rule.is_normal_form:
            top = normalized.add_rule(
                rule.lhs,
                rule.pattern,
                rule.cost,
                name=rule.name,
                template=rule.template,
                action=rule.action,
                dynamic_cost=rule.dynamic_cost,
                constraint=rule.constraint,
                constraint_name=rule.constraint_name,
                source=rule,
                line=rule.line,
                column=rule.column,
            )
            result.top_rule_of[rule.number] = top
            continue

        # Multi-node rule: flatten nested operator subtrees bottom-up.
        def flatten(pattern: Pattern) -> Pattern:
            """Replace *pattern* (an operator subtree) by a helper nonterminal."""
            nonlocal helper_counter
            helper_counter += 1
            helper_nt = f"__h{helper_counter}.{rule.number}"
            flattened_kids = tuple(
                kid if kid.is_nonterminal else flatten(kid) for kid in pattern.kids
            )
            helper_pattern = op_pattern(pattern.symbol, *flattened_kids)
            normalized.add_rule(
                helper_nt,
                helper_pattern,
                0,
                name=f"{rule.name or rule.lhs}.helper",
                is_helper=True,
                source=rule,
                line=rule.line,
                column=rule.column,
            )
            return nt_pattern(helper_nt)

        top_kids = tuple(
            kid if kid.is_nonterminal else flatten(kid) for kid in rule.pattern.kids
        )
        top_pattern = Pattern("op", rule.pattern.symbol, top_kids)
        top = normalized.add_rule(
            rule.lhs,
            top_pattern,
            rule.cost,
            name=rule.name,
            template=rule.template,
            action=rule.action,
            dynamic_cost=rule.dynamic_cost,
            constraint=rule.constraint,
            constraint_name=rule.constraint_name,
            source=rule,
            line=rule.line,
            column=rule.column,
        )
        result.top_rule_of[rule.number] = top

    result.helpers_introduced = helper_counter
    return result
