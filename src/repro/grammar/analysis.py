"""Static analyses over tree grammars.

These analyses are used to diagnose machine descriptions before they
are handed to a labeler: productivity (can each nonterminal derive a
pure operator tree?), reachability from the start nonterminal, operator
coverage (can every operator of the IR dialect be labeled at all?), and
the chain-cost diameter that bounds normalized state costs and thereby
guarantees a finite automaton.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import GrammarError
from repro.grammar.closure import chain_cost_matrix
from repro.grammar.costs import is_finite
from repro.grammar.grammar import Grammar

__all__ = [
    "GrammarAnalysis",
    "analyze",
    "productive_nonterminals",
    "reachable_nonterminals",
    "uncovered_operators",
    "check_grammar",
]


def productive_nonterminals(grammar: Grammar) -> set[str]:
    """Nonterminals that can derive at least one finite operator tree."""
    productive: set[str] = set()
    changed = True
    while changed:
        changed = False
        for rule in grammar.rules:
            if rule.lhs in productive:
                continue
            leaves = rule.pattern.nonterminal_leaves()
            if all(leaf in productive for leaf in leaves):
                productive.add(rule.lhs)
                changed = True
    return productive


def reachable_nonterminals(grammar: Grammar) -> set[str]:
    """Nonterminals reachable from the start symbol through rule patterns."""
    if grammar.start is None:
        return set()
    reachable = {grammar.start}
    changed = True
    while changed:
        changed = False
        for rule in grammar.rules:
            if rule.lhs not in reachable:
                continue
            for leaf in rule.pattern.nonterminal_leaves():
                if leaf not in reachable:
                    reachable.add(leaf)
                    changed = True
    return reachable


def uncovered_operators(grammar: Grammar) -> list[str]:
    """IR operators for which the grammar has no rule at all.

    A grammar need not cover every operator of its dialect (front ends
    may never produce some of them), but the list is valuable when
    debugging "no cover" errors.
    """
    used = set(grammar.operators_used())
    return [op.name for op in grammar.operators if op.name not in used]


@dataclass
class GrammarAnalysis:
    """Bundle of analysis results for one grammar."""

    grammar_name: str
    productive: set[str] = field(default_factory=set)
    reachable: set[str] = field(default_factory=set)
    unproductive: set[str] = field(default_factory=set)
    unreachable: set[str] = field(default_factory=set)
    uncovered_operators: list[str] = field(default_factory=list)
    max_chain_cost: int = 0
    chain_cycles_with_cost_zero: bool = False

    @property
    def is_clean(self) -> bool:
        """True if the grammar has no unproductive or unreachable nonterminals."""
        return not self.unproductive and not self.unreachable


def analyze(grammar: Grammar) -> GrammarAnalysis:
    """Run all analyses and return a :class:`GrammarAnalysis`."""
    productive = productive_nonterminals(grammar)
    reachable = reachable_nonterminals(grammar)
    all_nts = set(grammar.nonterminals)

    matrix = chain_cost_matrix(grammar)
    finite_costs = [
        cost
        for row in matrix.values()
        for cost in row.values()
        if is_finite(cost)
    ]
    max_chain = max(finite_costs, default=0)

    zero_cycle = False
    for a, row in matrix.items():
        for b, cost in row.items():
            if a != b and cost == 0 and is_finite(matrix[b][a]) and matrix[b][a] == 0:
                zero_cycle = True

    return GrammarAnalysis(
        grammar_name=grammar.name,
        productive=productive,
        reachable=reachable,
        unproductive=all_nts - productive,
        unreachable=all_nts - reachable,
        uncovered_operators=uncovered_operators(grammar),
        max_chain_cost=max_chain,
        chain_cycles_with_cost_zero=zero_cycle,
    )


def check_grammar(grammar: Grammar) -> GrammarAnalysis:
    """Validate *grammar* and raise on unproductive nonterminals.

    Unreachable nonterminals only produce dead rules and are tolerated;
    unproductive nonterminals make every rule mentioning them useless
    and almost always indicate a typo in the machine description, so
    they are treated as errors.
    """
    grammar.validate()
    analysis = analyze(grammar)
    if analysis.unproductive:
        names = ", ".join(sorted(analysis.unproductive))
        raise GrammarError(f"grammar {grammar.name!r} has unproductive nonterminals: {names}")
    return analysis
