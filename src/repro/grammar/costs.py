"""Cost arithmetic for tree-grammar rules.

Costs are small non-negative integers; :data:`INFINITE` is a saturating
"cannot match" value, large enough that no realistic sum of rule costs
reaches it but small enough that additions never overflow into
unrepresentable territory.  Dynamic costs (lburg-style) are callables
evaluated per IR node at instruction-selection time; they return either
a regular cost or :data:`INFINITE` to signal that the rule does not
apply to this node.
"""

from __future__ import annotations

from typing import Callable

from repro.ir.node import Node

__all__ = ["INFINITE", "is_finite", "add_costs", "DynamicCost", "normalize_costs"]

#: Saturating "rule does not apply" cost.
INFINITE = 1 << 24

#: Type of an lburg-style dynamic cost function.
DynamicCost = Callable[[Node], int]


def is_finite(cost: int) -> bool:
    """True if *cost* represents an applicable rule."""
    return cost < INFINITE


def add_costs(a: int, b: int) -> int:
    """Saturating cost addition."""
    total = a + b
    return total if total < INFINITE else INFINITE


def normalize_costs(costs: dict[str, int]) -> dict[str, int]:
    """Shift a nonterminal→cost map so its finite minimum becomes zero.

    Infinite entries stay infinite.  Normalisation is what keeps the
    number of automaton states finite: two cost vectors that differ by a
    constant select the same rules everywhere above them, so they are
    the same state.
    """
    finite = [cost for cost in costs.values() if is_finite(cost)]
    if not finite:
        return dict(costs)
    delta = min(finite)
    return {
        nt: (cost - delta if is_finite(cost) else INFINITE)
        for nt, cost in costs.items()
    }
