"""Tree-grammar rules.

A rule derives its left-hand-side nonterminal to a tree pattern, at a
cost.  Costs are fixed integers, optionally refined at instruction-
selection time by a *dynamic cost* function (lburg-style: the function
replaces the cost entirely) or a *constraint* (a predicate: the rule
keeps its fixed cost when the predicate holds and becomes inapplicable
otherwise).  Constraints are the restricted form of dynamic costs that
the on-demand automaton can exploit without falling back to dynamic
programming; fully general dynamic costs are also supported through the
per-node check path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import GrammarError
from repro.grammar.costs import INFINITE, DynamicCost
from repro.grammar.pattern import Pattern
from repro.ir.node import Node

__all__ = ["Rule", "EmitAction"]

#: An emit action receives ``(context, node, operands)`` where *context*
#: is the reducer's emit context (an :class:`repro.machine.emitter.Emitter`
#: for the bundled targets), *node* is the IR node matched by the rule's
#: pattern root, and *operands* are the semantic values produced by
#: reducing the pattern's nonterminal leaves, left to right.  The action
#: returns the semantic value of this (node, nonterminal) reduction.
EmitAction = Callable[[Any, Node, list[Any]], Any]


@dataclass(eq=False)
class Rule:
    """One tree-grammar rule ``lhs : pattern = number (cost)``.

    Rules compare and hash by identity: two textually identical rules in
    different grammars are distinct objects, and labelers freely use
    rules as dictionary keys.
    """

    lhs: str
    pattern: Pattern
    cost: int = 0
    number: int = -1
    name: str = ""
    template: str | None = None
    action: EmitAction | None = None
    dynamic_cost: DynamicCost | None = None
    constraint: Callable[[Node], bool] | None = None
    constraint_name: str = ""
    #: True for cost-0 helper rules introduced by normalisation; their
    #: semantic values are spliced into the parent rule's operand list so
    #: user actions see the same flat operands as on the original grammar.
    is_helper: bool = False
    source: "Rule | None" = field(default=None, repr=False)
    #: 1-based source position of the rule in its grammar text (0 when
    #: the rule was built programmatically).  Provenance only: diagnostics
    #: point at grammar source through these, and derived rules
    #: (normalisation, pruning) inherit their source rule's position.
    line: int = 0
    column: int = 0

    def __post_init__(self) -> None:
        if self.cost < 0:
            raise GrammarError(f"rule {self.lhs}: {self.pattern} has negative cost {self.cost}")
        if self.dynamic_cost is not None and self.constraint is not None:
            raise GrammarError(
                f"rule {self.lhs}: {self.pattern} has both a dynamic cost and a constraint"
            )

    # ------------------------------------------------------------------
    # Shape predicates

    @property
    def is_chain(self) -> bool:
        """True for chain rules ``nt : other_nt``."""
        return self.pattern.is_nonterminal

    @property
    def is_base(self) -> bool:
        """True for normal-form base rules ``nt : Op(nt, ..., nt)``."""
        return self.pattern.is_operator and all(kid.is_nonterminal for kid in self.pattern.kids)

    @property
    def is_normal_form(self) -> bool:
        """True if this rule is already in normal form."""
        return self.is_chain or self.is_base

    @property
    def is_dynamic(self) -> bool:
        """True if the rule's applicability depends on the IR node."""
        return self.dynamic_cost is not None or self.constraint is not None

    @property
    def operator(self) -> str | None:
        """The root operator of the pattern, or ``None`` for chain rules."""
        return None if self.is_chain else self.pattern.symbol

    @property
    def original(self) -> "Rule":
        """The user-written rule this rule was derived from (or itself)."""
        rule: Rule = self
        while rule.source is not None:
            rule = rule.source
        return rule

    @property
    def location(self) -> str:
        """``"line:column"`` in the grammar text, or ``""`` when unknown."""
        return f"{self.line}:{self.column}" if self.line > 0 else ""

    # ------------------------------------------------------------------
    # Costs

    def static_cost(self) -> int:
        """The cost used when no IR node is available (automaton construction)."""
        return self.cost

    def cost_at(self, node: Node) -> int:
        """The rule's cost when matched at *node*.

        Dynamic-cost rules delegate to the dynamic cost function;
        constrained rules return their fixed cost when the constraint
        holds and :data:`~repro.grammar.costs.INFINITE` otherwise.
        """
        if self.dynamic_cost is not None:
            return self.dynamic_cost(node)
        if self.constraint is not None:
            return self.cost if self.constraint(node) else INFINITE
        return self.cost

    def applicable_at(self, node: Node) -> bool:
        """True if the rule may be used at *node* (dynamic checks included)."""
        return self.cost_at(node) < INFINITE

    def describe(self) -> str:
        """Human-readable one-line rendering, burg style."""
        suffix = ""
        if self.dynamic_cost is not None:
            suffix = f" @dynamic({getattr(self.dynamic_cost, '__name__', 'fn')})"
        elif self.constraint is not None:
            suffix = f" @constraint({self.constraint_name or getattr(self.constraint, '__name__', 'fn')})"
        return f"{self.lhs}: {self.pattern} = {self.number} ({self.cost}){suffix}"

    def __str__(self) -> str:
        return self.describe()
