"""Parser for the burg-style grammar description language.

Machine descriptions can be written as text in a notation close to
burg/lburg and parsed with :func:`parse_grammar`::

    %grammar demo
    %start stmt

    # nonterminals are lower case, operators upper case (they must
    # exist in the operator set supplied to the parser)
    addr: reg                          (0)
    reg:  REG                          (0)
    reg:  LOAD(addr)                   (1) "mov (%0), %d"
    reg:  ADD(reg, reg)                (1) "add %1, %0 -> %d"
    stmt: STORE(addr, reg)             (1) "mov %1, (%0)"
    stmt: STORE(addr, ADD(LOAD(addr), reg)) (1) "add %1, (%0)" @constraint(same_addr)
    reg:  CNST                         (small_const) "mov $%c, %d"

A rule is::

    lhs ':' pattern ['=' number] ['(' cost ')'] [template-string] [annotation...]

* ``cost`` is an integer, or an identifier naming an lburg-style
  dynamic-cost function looked up in the *bindings* mapping.
* ``@constraint(name)`` attaches a constraint predicate from *bindings*.
* ``@dynamic(name)`` attaches a dynamic-cost function from *bindings*
  (equivalent to using the identifier as the cost).
* Explicit rule numbers (after ``=``) are accepted for compatibility
  with burg input files and recorded as the rule's name; rules are
  renumbered consecutively.
* ``#`` and ``//`` start comments; rules end at end of line (a rule may
  span lines while parentheses are open) or at ``;``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.errors import GrammarError
from repro.grammar.grammar import Grammar
from repro.grammar.pattern import Pattern, nt_pattern, op_pattern
from repro.ir.node import Node
from repro.ir.ops import DEFAULT_OPERATORS, OperatorSet

__all__ = ["parse_grammar", "Token"]


@dataclass(frozen=True)
class Token:
    """One lexical token of the grammar language.

    ``line`` and ``column`` are 1-based source positions, threaded onto
    parsed rules so diagnostics can point at the grammar text.
    """

    kind: str
    text: str
    line: int
    column: int = 1


_TOKEN_RE = re.compile(
    r"""
    (?P<comment>\#[^\n]*|//[^\n]*)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<number>\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.]*)
  | (?P<punct>[:(),=;@%])
  | (?P<newline>\n)
  | (?P<space>[ \t\r]+)
  | (?P<bad>.)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> list[Token]:
    tokens: list[Token] = []
    line = 1
    line_start = 0
    for match in _TOKEN_RE.finditer(text):
        kind = match.lastgroup or "bad"
        value = match.group()
        column = match.start() - line_start + 1
        if kind == "newline":
            tokens.append(Token("newline", "\n", line, column))
            line += 1
            line_start = match.end()
            continue
        if kind in ("space", "comment"):
            continue
        if kind == "bad":
            raise GrammarError(f"line {line}:{column}: unexpected character {value!r}")
        tokens.append(Token(kind, value, line, column))
    tokens.append(Token("eof", "", line, len(text) - line_start + 1))
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(
        self,
        tokens: list[Token],
        operators: OperatorSet,
        bindings: Mapping[str, Callable],
        name: str,
    ) -> None:
        self.tokens = tokens
        self.pos = 0
        self.operators = operators
        self.bindings = bindings
        self.grammar = Grammar(name=name, operators=operators)
        self.start: str | None = None

    # -- token helpers -------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def expect(self, kind: str, text: str | None = None) -> Token:
        token = self.advance()
        if token.kind != kind or (text is not None and token.text != text):
            wanted = text or kind
            raise GrammarError(
                f"line {token.line}:{token.column}: expected {wanted!r}, "
                f"found {token.text!r}"
            )
        return token

    def skip_newlines(self) -> None:
        while self.peek().kind == "newline" or (
            self.peek().kind == "punct" and self.peek().text == ";"
        ):
            self.advance()

    # -- grammar-level productions --------------------------------------

    def parse(self) -> Grammar:
        self.skip_newlines()
        while self.peek().kind != "eof":
            if self.peek().kind == "punct" and self.peek().text == "%":
                self._parse_directive()
            else:
                self._parse_rule()
            self.skip_newlines()
        if self.start is not None:
            self.grammar.start = self.start
        self.grammar.validate()
        return self.grammar

    def _parse_directive(self) -> None:
        self.expect("punct", "%")
        keyword_token = self.expect("ident")
        keyword = keyword_token.text
        if keyword == "start":
            self.start = self.expect("ident").text
        elif keyword == "grammar":
            self.grammar.name = self.expect("ident").text
        elif keyword == "term":
            # Accepted for burg compatibility; operators come from the
            # operator set, so the declaration list is simply consumed.
            while self.peek().kind not in ("newline", "eof"):
                self.advance()
        else:
            raise GrammarError(
                f"line {keyword_token.line}:{keyword_token.column}: "
                f"unknown directive %{keyword}"
            )

    def _parse_rule(self) -> None:
        lhs_token = self.expect("ident")
        lhs = lhs_token.text
        self.expect("punct", ":")
        pattern = self._parse_pattern()

        explicit_number: str = ""
        cost = 0
        dynamic_token: Token | None = None
        template: str | None = None
        constraint_token: Token | None = None
        rule_name = ""

        while True:
            token = self.peek()
            if token.kind == "punct" and token.text == "=":
                self.advance()
                explicit_number = self.expect("number").text
            elif token.kind == "punct" and token.text == "(":
                self.advance()
                cost_token = self.advance()
                if cost_token.kind == "number":
                    cost = int(cost_token.text)
                elif cost_token.kind == "ident":
                    dynamic_token = cost_token
                else:
                    raise GrammarError(
                        f"line {cost_token.line}:{cost_token.column}: cost must be "
                        f"an integer or an identifier, found {cost_token.text!r}"
                    )
                self.expect("punct", ")")
            elif token.kind == "string":
                template = self.advance().text[1:-1].replace('\\"', '"')
            elif token.kind == "punct" and token.text == "@":
                self.advance()
                annotation_token = self.expect("ident")
                annotation = annotation_token.text
                self.expect("punct", "(")
                argument = self.expect("ident")
                self.expect("punct", ")")
                if annotation == "constraint":
                    constraint_token = argument
                elif annotation == "dynamic":
                    dynamic_token = argument
                elif annotation == "name":
                    rule_name = argument.text
                else:
                    raise GrammarError(
                        f"line {annotation_token.line}:{annotation_token.column}: "
                        f"unknown annotation @{annotation}"
                    )
            else:
                break

        dynamic_cost = None
        constraint = None
        constraint_name: str | None = None
        if dynamic_token is not None:
            dynamic_cost = self._lookup(dynamic_token)
        if constraint_token is not None:
            constraint_name = constraint_token.text
            constraint = self._lookup(constraint_token)

        self.grammar.add_rule(
            lhs,
            pattern,
            cost,
            name=rule_name or explicit_number,
            template=template,
            dynamic_cost=dynamic_cost,
            constraint=constraint,
            constraint_name=constraint_name or "",
            line=lhs_token.line,
            column=lhs_token.column,
        )

    def _lookup(self, token: Token) -> Callable[[Node], int]:
        """Resolve a dynamic-cost / constraint identifier *token*.

        The error points at the identifier itself (the cost expression
        or annotation argument), not at the rule's left-hand side.
        """
        try:
            return self.bindings[token.text]
        except KeyError:
            raise GrammarError(
                f"line {token.line}:{token.column}: no binding provided for "
                f"dynamic cost / constraint {token.text!r}"
            ) from None

    def _parse_pattern(self) -> Pattern:
        token = self.expect("ident")
        symbol = token.text
        if self.peek().kind == "punct" and self.peek().text == "(":
            # A parenthesis directly after an identifier is a child list
            # only if the identifier names an operator with arity > 0;
            # otherwise it is the rule's cost "(n)".
            if symbol in self.operators and self.operators[symbol].arity > 0:
                self.advance()
                kids = [self._parse_pattern()]
                while self.peek().kind == "punct" and self.peek().text == ",":
                    self.advance()
                    kids.append(self._parse_pattern())
                self.expect("punct", ")")
                return op_pattern(symbol, *kids)
        if symbol in self.operators:
            operator = self.operators[symbol]
            if operator.arity != 0 and symbol.isupper():
                raise GrammarError(
                    f"line {token.line}:{token.column}: operator {symbol} needs "
                    f"{operator.arity} children"
                )
            if operator.arity == 0:
                return op_pattern(symbol)
        return nt_pattern(symbol)


def parse_grammar(
    text: str,
    operators: OperatorSet | None = None,
    bindings: Mapping[str, Callable] | None = None,
    name: str = "grammar",
) -> Grammar:
    """Parse grammar *text* into a :class:`~repro.grammar.grammar.Grammar`.

    Args:
        text: Grammar source in the notation described in the module
            docstring.
        operators: IR operator set used to distinguish operators from
            nonterminals; defaults to the library's default dialect.
        bindings: Mapping of identifier → callable for dynamic costs and
            constraints referenced from the text.
        name: Grammar name (overridden by a ``%grammar`` directive).
    """
    ops = operators if operators is not None else DEFAULT_OPERATORS
    parser = _Parser(_tokenize(text), ops, bindings or {}, name)
    return parser.parse()
