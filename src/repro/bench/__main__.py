"""``python -m repro.bench``: run the selection benchmarks, emit JSON.

Examples::

    python -m repro.bench                      # full run, BENCH_selection.json
    python -m repro.bench --smoke              # seconds-scale CI smoke run
    python -m repro.bench --seed 7 --out /tmp/bench.json
    python -m repro.bench --baseline BENCH_selection.json   # regression gate
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.bench.runner import BenchConfig, run_selection_bench, write_report
from repro.metrics.tables import format_table
from repro.obs import Observability
from repro.obs.export import to_prometheus, write_trace

_LABELERS = ("dp", "automaton_cold", "automaton_warm", "automaton_eager")


def _summary_rows(report: dict) -> list[dict[str, object]]:
    rows: list[dict[str, object]] = []
    for workload in report["workloads"]:
        labelers = workload["labelers"]
        for labeler in _LABELERS:
            row = labelers[labeler]
            hit_rate = row.get("hit_rate")  # absent for the table-free DP labeler
            rows.append(
                {
                    "workload": workload["name"],
                    "labeler": labeler,
                    "nodes": workload["nodes"],
                    "ns/node": round(row["ns_per_node"], 1),
                    "ops/node": round(row["operations_per_node"], 2),
                    "hit rate": "-" if hit_rate is None else round(hit_rate, 3),
                    "states": workload["automaton"]["states"],
                    "transitions": workload["automaton"]["transitions"],
                }
            )
    return rows


def _pipeline_rows(report: dict) -> list[dict[str, object]]:
    rows: list[dict[str, object]] = []
    for workload in report.get("pipeline", []):
        labelers = workload["labelers"]
        for labeler in _LABELERS:
            row = labelers[labeler]
            rows.append(
                {
                    "workload": workload["name"],
                    "labeler": labeler,
                    "nodes": workload["nodes"],
                    "ns/node": round(row["ns_per_node"], 1),
                    "label ns/node": round(row["label_ns_per_node"], 1),
                    "reduce ns/node": round(row["reduce_ns_per_node"], 1),
                    "reduce %": round(100.0 * row["reduce_fraction"], 1),
                    "reductions": row["reductions"],
                    "memo hits": row["memo_hits"],
                    "tapes": row.get("tapes_compiled", 0),
                    "tape hits": row.get("tape_cache_hits", 0),
                }
            )
    return rows


def _selector_aot_rows(report: dict) -> list[dict[str, object]]:
    rows: list[dict[str, object]] = []
    for workload in report.get("selector_aot", []):
        labelers = workload["labelers"]
        for labeler in ("selector_aot", "inprocess_eager", "inprocess_ondemand"):
            row = labelers[labeler]
            rows.append(
                {
                    "workload": workload["name"],
                    "config": labeler,
                    "nodes": workload["nodes"],
                    "startup [ms]": round(row["startup_ns"] / 1e6, 2),
                    "select ns/node": round(row["select_ns_per_node"], 1),
                    "cold ns/node": round(row["ns_per_node"], 1),
                }
            )
        warm = labelers["aot_warm"]
        rows.append(
            {
                "workload": workload["name"],
                "config": "aot_warm",
                "nodes": workload["nodes"],
                "startup [ms]": 0.0,
                "select ns/node": round(warm["ns_per_node"], 1),
                "cold ns/node": round(warm["ns_per_node"], 1),
            }
        )
    return rows


def _sweep_rows(report: dict) -> list[dict[str, object]]:
    rows: list[dict[str, object]] = []
    for point in report.get("sweep", []):
        rows.append(
            {
                "operators": point["operators"],
                "nonterminals": point["nonterminals"],
                "rules": point["rules"],
                "on-demand trans": point["ondemand"]["transitions"],
                "eager trans": point["eager"]["transitions"],
                "ratio": round(point["table_ratio"], 1),
                "eager build [ms]": round(point["eager"]["build_seconds"] * 1000.0, 1),
                "capped": point["eager"]["capped"],
            }
        )
    return rows


def _faults_rows(report: dict) -> list[dict[str, object]]:
    rows: list[dict[str, object]] = []
    for row in report.get("faults", []):
        name = row["name"]
        if name == "isolate_overhead":
            rows.append(
                {
                    "row": name,
                    "nodes": row["nodes"],
                    "metric": "isolate vs raise overhead",
                    "ns/node": round(row["median_overhead_ns_per_node"], 2),
                    "detail": f"cleanest pair {row['overhead_ns_per_node']:.2f} ns/node "
                    f"= {100 * row['overhead_fraction']:.2f}% "
                    f"(budget {100 * row['max_overhead_fraction']:.0f}%)",
                }
            )
        elif name == "obs_overhead":
            rows.append(
                {
                    "row": name,
                    "nodes": row["nodes"],
                    "metric": "enabled obs vs null obs",
                    "ns/node": round(row["median_overhead_ns_per_node"], 2),
                    "detail": f"cleanest pair {row['overhead_ns_per_node']:.2f} ns/node "
                    f"= {100 * row['overhead_fraction']:.2f}%, "
                    f"{row['spans_recorded']} spans, "
                    f"{row['batches_observed']} batches observed",
                }
            )
        elif name == "injected_faults":
            rows.append(
                {
                    "row": name,
                    "nodes": row["nodes"],
                    "metric": "isolated failures / injected",
                    "ns/node": "-",
                    "detail": f"{row['isolated_failures']}/{row['injected_faults']} "
                    f"in phase {row['failure_phase']}, survivors "
                    f"{'match' if row['survivors_match_clean_run'] else 'DIVERGE'}",
                }
            )
        elif name == "artifact_ladder":
            rows.append(
                {
                    "row": name,
                    "nodes": "-",
                    "metric": "miss / hit / quarantine-rebuild",
                    "ns/node": "-",
                    "detail": f"{row['miss_compile_ns'] / 1e6:.2f} / "
                    f"{row['hit_load_ns'] / 1e6:.2f} / "
                    f"{row['quarantine_rebuild_ns'] / 1e6:.2f} ms, "
                    f"quarantined {row['cache']['quarantined']}",
                }
            )
    return rows


def _service_rows(report: dict) -> list[dict[str, object]]:
    rows: list[dict[str, object]] = []
    for row in report.get("service", []):
        name = row["name"]
        if name == "sustained_traffic":
            per_tenant = row.get("latency_per_tenant") or {}
            tenant_detail = "; ".join(
                f"{tenant} p50/p99 {t['latency_p50_ns'] / 1e6:.2f}/"
                f"{t['latency_p99_ns'] / 1e6:.2f} ms"
                for tenant, t in sorted(per_tenant.items())
            )
            rows.append(
                {
                    "row": name,
                    "requests": row["requests"],
                    "outcome": f"{row['statuses'].get('ok', 0)} ok, {row['lost']} lost",
                    "throughput": f"{row['requests_per_s']:.0f} req/s",
                    "detail": f"p50 {row['latency_p50_ns'] / 1e6:.2f} ms, "
                    f"p99 {row['latency_p99_ns'] / 1e6:.2f} ms "
                    f"({row['workers']} workers, {row['batches']} batches)"
                    + (f"; {tenant_detail}" if tenant_detail else ""),
                }
            )
        elif name == "chaos_soak":
            rows.append(
                {
                    "row": name,
                    "requests": row["requests"],
                    "outcome": f"{row['statuses'].get('ok', 0)} ok, "
                    f"{row['typed_failures']} typed, {row['lost']} lost",
                    "throughput": "-",
                    "detail": f"worker killed (restarts {row['restarts_total']}), "
                    f"re-dispatched {row['re_dispatches']}, breaker "
                    f"{'recovered' if row['breaker_recovered'] else 'STUCK'} "
                    f"after {len(row['breaker_transitions'])} transitions",
                }
            )
        elif name == "overload_shedding":
            rows.append(
                {
                    "row": name,
                    "requests": row["burst"],
                    "outcome": f"{row['served']} served, {row['shed']} shed",
                    "throughput": "-",
                    "detail": f"queue limit {row['queue_limit']}, "
                    f"high water {row['queue_depth_high_water']}",
                }
            )
    return rows


def _gate_warm_rows(
    new_section: list[dict],
    base_section: list[dict],
    max_regression: float,
    prefix: str,
) -> list[str]:
    """Dual-condition warm-path gate over one report section.

    A workload fails when warm ``ns_per_node`` regressed by more than
    *max_regression* **and** the DP-normalized warm ratio (warm ns/node
    divided by the same run's DP ns/node) regressed by the same margin.
    The second condition makes the gate machine-independent: a CI
    runner that is uniformly slower than the machine that produced the
    committed baseline shifts both labelers equally and leaves the
    ratio unchanged, while a genuinely lost optimisation moves both
    numbers.  Workloads absent from the baseline — new families — are
    skipped.
    """
    base_workloads = {w["name"]: w for w in base_section}
    failures: list[str] = []
    for workload in new_section:
        base = base_workloads.get(workload["name"])
        if base is None:
            continue
        base_warm = base["labelers"]["automaton_warm"]["ns_per_node"]
        new_warm = workload["labelers"]["automaton_warm"]["ns_per_node"]
        base_dp = base["labelers"]["dp"]["ns_per_node"]
        new_dp = workload["labelers"]["dp"]["ns_per_node"]
        if base_warm <= 0 or base_dp <= 0 or new_dp <= 0:
            continue
        absolute_regressed = new_warm > base_warm * (1.0 + max_regression)
        base_ratio = base_warm / base_dp
        new_ratio = new_warm / new_dp
        normalized_regressed = new_ratio > base_ratio * (1.0 + max_regression)
        if absolute_regressed and normalized_regressed:
            failures.append(
                f"{prefix}{workload['name']}: warm {new_warm:.0f} ns/node vs baseline "
                f"{base_warm:.0f} ns/node, warm/dp ratio {new_ratio:.3f} vs "
                f"{base_ratio:.3f} (> {100 * max_regression:.0f}% regression)"
            )
    return failures


def _gate_emit_rows(
    new_section: list[dict],
    base_section: list[dict],
    max_regression: float,
) -> list[str]:
    """Dual-condition emit-phase gate over the pipeline rows.

    The warm gate above watches end-to-end ``ns_per_node``; this one
    watches the *emit phase* in isolation — ``reduce_ns_per_node`` of
    the warm automaton row, the number the emission-tape compiler
    exists to shrink — so a lost tape optimisation cannot hide behind a
    labeling win.  Same machine-independence construction as
    :func:`_gate_warm_rows`: a workload fails only when the absolute
    emit cost **and** the DP-normalized emit ratio both regress past
    *max_regression*.  Workloads absent from the baseline are skipped,
    and so are workloads whose warm row shows no tape activity
    (``tapes_compiled + tape_cache_hits == 0``): those run the frame
    engine — dynamic-rule grammars route away from the tape compiler —
    so their emit phase is not the claim this gate protects, and the
    frame engine's run-to-run jitter would make the gate flaky.
    """
    base_workloads = {w["name"]: w for w in base_section}
    failures: list[str] = []
    for workload in new_section:
        base = base_workloads.get(workload["name"])
        if base is None:
            continue
        warm = workload["labelers"]["automaton_warm"]
        if warm.get("tapes_compiled", 0) + warm.get("tape_cache_hits", 0) == 0:
            continue
        base_emit = base["labelers"]["automaton_warm"].get("reduce_ns_per_node", 0)
        new_emit = warm.get("reduce_ns_per_node", 0)
        base_dp = base["labelers"]["dp"].get("reduce_ns_per_node", 0)
        new_dp = workload["labelers"]["dp"].get("reduce_ns_per_node", 0)
        if base_emit <= 0 or base_dp <= 0 or new_dp <= 0:
            continue
        absolute_regressed = new_emit > base_emit * (1.0 + max_regression)
        base_ratio = base_emit / base_dp
        new_ratio = new_emit / new_dp
        normalized_regressed = new_ratio > base_ratio * (1.0 + max_regression)
        if absolute_regressed and normalized_regressed:
            failures.append(
                f"pipeline/{workload['name']}: warm emit {new_emit:.0f} ns/node vs "
                f"baseline {base_emit:.0f} ns/node, emit/dp ratio {new_ratio:.3f} vs "
                f"{base_ratio:.3f} (> {100 * max_regression:.0f}% regression)"
            )
    return failures


def check_baseline(
    report: dict,
    baseline_path: str | Path,
    max_regression: float = 0.5,
    max_pipeline_regression: float | None = None,
    max_obs_regression: float | None = None,
) -> list[str]:
    """Soft regression gate against a committed baseline report.

    Applies the dual-condition warm gate (see :func:`_gate_warm_rows`)
    to the labeling workloads *and* to the end-to-end pipeline rows —
    plus the emit-phase gate (:func:`_gate_emit_rows`) over the same
    pipeline rows — so a lost optimisation in the warm label path, the
    whole pipeline, or the emission tape alone fails CI.  The pipeline
    rows — the resilience work's happy path — can be held to a tighter
    budget via *max_pipeline_regression* (defaults to *max_regression*
    when not given).

    *max_obs_regression*, when given, re-runs the warm pipeline gate at
    a (typically much tighter) budget as the disabled-observability
    contract: the pipeline rows run with observability off, so any warm
    regression past this margin means the null-object fast path — the
    one attribute check instrumented code pays when observability is
    disabled — has grown measurable weight.
    """
    baseline = json.loads(Path(baseline_path).read_text())
    pipeline_regression = (
        max_pipeline_regression if max_pipeline_regression is not None else max_regression
    )
    failures = _gate_warm_rows(
        report["workloads"], baseline.get("workloads", []), max_regression, ""
    )
    failures += _gate_warm_rows(
        report.get("pipeline", []),
        baseline.get("pipeline", []),
        pipeline_regression,
        "pipeline/",
    )
    failures += _gate_emit_rows(
        report.get("pipeline", []),
        baseline.get("pipeline", []),
        pipeline_regression,
    )
    if max_obs_regression is not None:
        failures += _gate_warm_rows(
            report.get("pipeline", []),
            baseline.get("pipeline", []),
            max_obs_regression,
            "obs-disabled/pipeline/",
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Benchmark DP vs. cold/warm/eager automaton labeling.",
    )
    parser.add_argument("--out", default="BENCH_selection.json", help="report path")
    parser.add_argument("--seed", type=int, default=42, help="workload generator seed")
    parser.add_argument(
        "--repetitions", type=int, default=None, help="timed repetitions (best is kept)"
    )
    parser.add_argument(
        "--smoke", action="store_true", help="seconds-scale sizes for CI smoke runs"
    )
    parser.add_argument(
        "--no-verify", action="store_true", help="skip the cross-labeler cover check"
    )
    parser.add_argument(
        "--selector-artifact",
        default=None,
        help="AOT selector artifact (from `python -m repro.selection.selector "
        "compile`) to load the selector_aot rows from when its grammar "
        "fingerprint matches",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline report to gate against: exit 1 if warm ns/node regresses "
        "more than --max-regression on any workload",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.5,
        help="allowed fractional warm-path regression vs --baseline (default 0.5)",
    )
    parser.add_argument(
        "--max-pipeline-regression",
        type=float,
        default=0.1,
        help="allowed fractional warm regression for the end-to-end pipeline rows "
        "(the resilience happy path) vs --baseline (default 0.1)",
    )
    parser.add_argument(
        "--max-obs-regression",
        type=float,
        default=None,
        help="when set, additionally gate the warm pipeline rows (which run with "
        "observability disabled) against --baseline at this tighter budget — "
        "the disabled-observability overhead contract (CI uses 0.02)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        help="write the sustained service benchmark's span trace as JSONL "
        "(render with `python -m repro.obs render`)",
    )
    parser.add_argument(
        "--prom-out",
        default=None,
        help="write the sustained service benchmark's metrics in Prometheus "
        "text exposition format",
    )
    args = parser.parse_args(argv)

    config = BenchConfig.smoke(seed=args.seed) if args.smoke else BenchConfig(seed=args.seed)
    if args.repetitions is not None:
        config.repetitions = args.repetitions
    if args.no_verify:
        config.verify_covers = False

    service_obs = None
    if args.trace_out is not None or args.prom_out is not None:
        service_obs = Observability(trace_capacity=1 << 16)

    report = run_selection_bench(
        config, selector_artifact=args.selector_artifact, service_obs=service_obs
    )
    path = write_report(report, args.out)

    print(format_table(_summary_rows(report), title="selection labeling benchmark"))
    for workload in report["workloads"]:
        warm = workload["speedup_warm_vs_dp"]
        cold = workload["speedup_cold_vs_dp"]
        eager = workload["speedup_eager_vs_dp"]
        print(
            f"{workload['name']}: warm automaton {warm:.1f}x vs DP, "
            f"cold {cold:.1f}x, eager {eager:.1f}x"
        )
    print()
    print(
        format_table(
            _pipeline_rows(report), title="selection pipeline benchmark (label + reduce + emit)"
        )
    )
    for workload in report.get("pipeline", []):
        warm = workload["speedup_warm_vs_dp"]
        eager = workload["speedup_eager_vs_dp"]
        print(f"pipeline/{workload['name']}: warm {warm:.1f}x vs DP, eager {eager:.1f}x")
    print()
    print(
        format_table(
            _selector_aot_rows(report),
            title="ahead-of-time selector cold start (load vs in-process build)",
        )
    )
    for workload in report.get("selector_aot", []):
        speedup = workload["load_speedup_vs_build"]
        source = "CLI artifact" if workload["artifact"]["from_cli"] else "temp artifact"
        print(
            f"selector_aot/{workload['name']}: load {workload['load_ns'] / 1e6:.2f} ms vs "
            f"eager build {workload['build_ns'] / 1e6:.2f} ms "
            f"({speedup:.1f}x, {source}, {workload['artifact']['bytes']} bytes)"
        )
    print()
    print(format_table(_sweep_rows(report), title="grammar-size sweep (on-demand vs eager)"))
    print()
    print(
        format_table(
            _faults_rows(report),
            title="resilience benchmarks (isolation overhead, faults, degradation ladder)",
        )
    )
    print()
    print(
        format_table(
            _service_rows(report),
            title="selection service (sustained traffic, chaos soak, overload shedding)",
        )
    )
    print(f"report written to {path}")

    if service_obs is not None:
        if args.trace_out is not None:
            count = write_trace(args.trace_out, service_obs.tracer.spans())
            print(f"span trace written to {args.trace_out} ({count} spans)")
        if args.prom_out is not None:
            Path(args.prom_out).write_text(to_prometheus(service_obs.metrics))
            print(f"prometheus metrics written to {args.prom_out}")

    if args.baseline is not None:
        failures = check_baseline(
            report,
            args.baseline,
            args.max_regression,
            args.max_pipeline_regression,
            args.max_obs_regression,
        )
        if failures:
            print("\nwarm-path regression gate FAILED:", file=sys.stderr)
            for line in failures:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"regression gate passed against {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
