"""``python -m repro.bench``: run the selection benchmarks, emit JSON.

Examples::

    python -m repro.bench                      # full run, BENCH_selection.json
    python -m repro.bench --smoke              # seconds-scale CI smoke run
    python -m repro.bench --seed 7 --out /tmp/bench.json
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.runner import BenchConfig, run_selection_bench, write_report
from repro.metrics.tables import format_table


def _summary_rows(report: dict) -> list[dict[str, object]]:
    rows: list[dict[str, object]] = []
    for workload in report["workloads"]:
        labelers = workload["labelers"]
        for labeler in ("dp", "automaton_cold", "automaton_warm"):
            row = labelers[labeler]
            hit_rate = row.get("hit_rate")  # absent for the table-free DP labeler
            rows.append(
                {
                    "workload": workload["name"],
                    "labeler": labeler,
                    "nodes": workload["nodes"],
                    "ns/node": round(row["ns_per_node"], 1),
                    "ops/node": round(row["operations_per_node"], 2),
                    "hit rate": "-" if hit_rate is None else round(hit_rate, 3),
                    "states": workload["automaton"]["states"],
                    "transitions": workload["automaton"]["transitions"],
                }
            )
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Benchmark DP vs. cold/warm on-demand automaton labeling.",
    )
    parser.add_argument("--out", default="BENCH_selection.json", help="report path")
    parser.add_argument("--seed", type=int, default=42, help="workload generator seed")
    parser.add_argument(
        "--repetitions", type=int, default=None, help="timed repetitions (best is kept)"
    )
    parser.add_argument(
        "--smoke", action="store_true", help="seconds-scale sizes for CI smoke runs"
    )
    parser.add_argument(
        "--no-verify", action="store_true", help="skip the DP-vs-automaton cover check"
    )
    args = parser.parse_args(argv)

    config = BenchConfig.smoke(seed=args.seed) if args.smoke else BenchConfig(seed=args.seed)
    if args.repetitions is not None:
        config.repetitions = args.repetitions
    if args.no_verify:
        config.verify_covers = False

    report = run_selection_bench(config)
    path = write_report(report, args.out)

    print(format_table(_summary_rows(report), title="selection labeling benchmark"))
    for workload in report["workloads"]:
        warm = workload["speedup_warm_vs_dp"]
        cold = workload["speedup_cold_vs_dp"]
        print(
            f"{workload['name']}: warm automaton {warm:.1f}x vs DP, "
            f"cold {cold:.1f}x vs DP"
        )
    print(f"report written to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
