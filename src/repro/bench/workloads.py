"""Seeded workload generators for the selection benchmarks.

Labeling families, mirroring the paper's motivating scenarios:

* **random tree forests** — independent statement trees, the generic
  compile-a-function workload;
* **DAG-heavy forests** — statements sharing common subexpressions
  (post-CSE basic blocks), stressing the labelers' sharing awareness;
* **recurring-shape streams** — a small set of template forests cloned
  over and over with fresh nodes, the JIT workload whose repetition the
  on-demand automaton amortizes into pure table lookups;
* **dynamic-constraint forests** — trees biased toward
  immediate-operand shapes, labeled under a grammar whose constrained
  rules (small immediates, power-of-two multiplies) split transitions
  by signature — the restricted-dynamic-cost scenario.

Pipeline (label→reduce→emit) families, over the emit-action variant of
the benchmark grammar (:func:`emit_bench_grammar` / :class:`EmitContext`):

* **reduce-heavy forests** — trees biased toward chain-rule ladders,
  templated rules, and the multi-node add-to-memory shape, so the
  reduction/emission phase dominates the pipeline;
* **shared-reduction forests** — statements drawing most operands from
  a pool of shared subtrees, so the reducer's (node, nonterminal) memo
  pays off (each shared subtree is reduced — and emitted — once).

A separate **grammar-size sweep** builds synthetic grammars of growing
operator/nonterminal counts (:func:`synthetic_grammar`) to chart how
on-demand table population compares with eager (offline) construction
as the grammar grows.

All generators are driven by :class:`random.Random` seeded explicitly,
so workloads are reproducible across runs and machines; the equivalence
test sweep reuses them with many seeds.
"""

from __future__ import annotations

import random

from repro.grammar import Grammar, parse_grammar
from repro.ir import Forest, Node, NodeBuilder
from repro.ir.node import fresh_nid
from repro.ir.ops import OperatorSet
from repro.ir.traversal import topological_order

__all__ = [
    "BENCH_GRAMMAR_TEXT",
    "DYNAMIC_BENCH_RULES",
    "EmitContext",
    "bench_grammar",
    "clone_forest",
    "dag_heavy_forest",
    "dag_heavy_forests",
    "dynamic_bench_grammar",
    "dynamic_constraint_forests",
    "emit_bench_grammar",
    "random_forests",
    "random_tree_forest",
    "recurring_shape_stream",
    "reduce_heavy_forests",
    "shared_reduction_forests",
    "synthetic_forests",
    "synthetic_grammar",
]

#: Machine description used by the benchmarks: a demo-scale burg-style
#: grammar with chain rules, a multi-node add-to-memory rule, immediate
#: addressing, and one rule per generated operator.
BENCH_GRAMMAR_TEXT = """
%grammar bench
%start stmt

stmt: EXPR(reg)                          (0)
stmt: STORE(addr, reg)                   (1) "st %1, (%0)"
stmt: STORE(addr, ADD(LOAD(addr), reg))  (2) "add %1, (%0)"
addr: reg                                (0)
addr: ADD(reg, con)                      (0) "index"
reg:  REG                                (0)
reg:  LOAD(addr)                         (3)
reg:  ADD(reg, reg)                      (1)
reg:  ADD(reg, con)                      (1) "addi"
reg:  SUB(reg, reg)                      (1)
reg:  MUL(reg, reg)                      (2)
reg:  AND(reg, reg)                      (1)
reg:  OR(reg, reg)                       (1)
reg:  XOR(reg, reg)                      (1)
reg:  NEG(reg)                           (1)
reg:  NOT(reg)                           (1)
reg:  con                                (1) "li"
con:  CNST                               (0)
reg:  MUL(reg, con)                      (4) "muli"
addr: LOAD(addr)                         (4)
"""


def bench_grammar() -> Grammar:
    """A fresh instance of the benchmark machine description."""
    return parse_grammar(BENCH_GRAMMAR_TEXT)


#: Constrained rules appended to the benchmark grammar by
#: :func:`dynamic_bench_grammar`.  All three are *constraints* (fixed
#: cost, node predicate), so each has exactly two signature outcomes and
#: the offline automaton can enumerate them — the paper's restricted
#: dynamic costs.
DYNAMIC_BENCH_RULES = """
reg:  ADD(reg, con)     (0) "addi4" @constraint(imm4)
reg:  MUL(reg, con)     (1) "shl"   @constraint(pow2)
stmt: STORE(addr, con)  (0) "sti"   @constraint(imm4)
"""


def _imm4(node: Node) -> bool:
    """Constraint: the second operand is a 4-bit constant."""
    kid = node.kids[1]
    return kid.op.name == "CNST" and kid.value is not None and 0 <= kid.value < 16


def _pow2(node: Node) -> bool:
    """Constraint: the second operand is a power-of-two constant."""
    kid = node.kids[1]
    value = kid.value
    return (
        kid.op.name == "CNST"
        and isinstance(value, int)
        and value > 0
        and value & (value - 1) == 0
    )


def dynamic_bench_grammar() -> Grammar:
    """The benchmark grammar extended with constrained (dynamic) rules.

    Shares every static rule with :func:`bench_grammar`, so differences
    between the two benchmark families isolate the cost of the dynamic
    signature machinery.
    """
    text = BENCH_GRAMMAR_TEXT.replace("%grammar bench", "%grammar bench_dyn", 1)
    return parse_grammar(text + DYNAMIC_BENCH_RULES, bindings={"imm4": _imm4, "pow2": _pow2})


_BINARY_OPS = ("ADD", "SUB", "MUL", "AND", "OR", "XOR")
_UNARY_OPS = ("NEG", "NOT")


def _random_value(rng: random.Random, builder: NodeBuilder, depth: int) -> Node:
    """A random value-producing expression of height ≤ *depth* + 1."""
    if depth <= 0 or rng.random() < 0.15:
        if rng.random() < 0.4:
            return builder.cnst(rng.randrange(256))
        return builder.reg(rng.randrange(16))
    roll = rng.random()
    if roll < 0.15:
        return builder.node(rng.choice(_UNARY_OPS), _random_value(rng, builder, depth - 1))
    if roll < 0.25:
        return builder.load(_random_value(rng, builder, depth - 1))
    return builder.node(
        rng.choice(_BINARY_OPS),
        _random_value(rng, builder, depth - 1),
        _random_value(rng, builder, depth - 1),
    )


def _random_statement(rng: random.Random, builder: NodeBuilder, depth: int) -> Node:
    value = _random_value(rng, builder, depth)
    if rng.random() < 0.35:
        address = _random_value(rng, builder, max(1, depth - 2))
        return builder.store(address, value)
    return builder.expr(value)


def random_tree_forest(
    rng: random.Random, statements: int = 10, max_depth: int = 6, name: str = "random"
) -> Forest:
    """One forest of independent random statement trees."""
    builder = NodeBuilder()
    return Forest(
        [_random_statement(rng, builder, max_depth) for _ in range(statements)], name=name
    )


def random_forests(
    seed: int, forests: int = 8, statements: int = 10, max_depth: int = 6
) -> list[Forest]:
    """A reproducible batch of random tree forests."""
    rng = random.Random(seed)
    return [
        random_tree_forest(rng, statements, max_depth, name=f"random-{i}")
        for i in range(forests)
    ]


def dag_heavy_forest(
    rng: random.Random,
    statements: int = 10,
    shared: int = 6,
    max_depth: int = 4,
    name: str = "dag",
) -> Forest:
    """One forest whose statements share a pool of common subexpressions.

    A pool of *shared* random subtrees is built first; every statement
    combines pool picks (with high probability) and fresh expressions,
    so most value nodes have several parents — the post-CSE shape.
    """
    builder = NodeBuilder()
    pool = [_random_value(rng, builder, rng.randint(1, max_depth)) for _ in range(shared)]

    def operand(depth: int) -> Node:
        if rng.random() < 0.7:
            return rng.choice(pool)
        return _random_value(rng, builder, depth)

    forest = Forest(name=name)
    for _ in range(statements):
        value = builder.node(rng.choice(_BINARY_OPS), operand(max_depth), operand(max_depth))
        if rng.random() < 0.35:
            forest.add(builder.store(operand(max_depth - 1), value))
        else:
            forest.add(builder.expr(value))
    return forest


def dag_heavy_forests(
    seed: int, forests: int = 8, statements: int = 10, shared: int = 6, max_depth: int = 4
) -> list[Forest]:
    """A reproducible batch of DAG-heavy forests."""
    rng = random.Random(seed)
    return [
        dag_heavy_forest(rng, statements, shared, max_depth, name=f"dag-{i}")
        for i in range(forests)
    ]


def clone_forest(forest: Forest, name: str | None = None) -> Forest:
    """A deep copy of *forest* with fresh node objects, sharing preserved.

    This models a JIT recompiling the same code shape: node identities
    differ (so labelers and reducers cannot cheat through identity
    memoisation — clones get fresh nids, not the template's) but the
    structure — including DAG sharing — is identical.
    """
    cloned: dict[int, Node] = {}
    for node in topological_order(forest.roots):
        cloned[id(node)] = Node(
            node.op, [cloned[id(kid)] for kid in node.kids], node.value, fresh_nid()
        )
    return Forest([cloned[id(root)] for root in forest.roots], name=name or forest.name)


def recurring_shape_stream(
    seed: int,
    shapes: int = 6,
    length: int = 32,
    statements: int = 8,
    max_depth: int = 5,
) -> list[Forest]:
    """A JIT-style stream: *length* forests drawn from *shapes* templates.

    Each emitted forest is a fresh-node clone of a randomly chosen
    template, so an on-demand automaton sees every transition after the
    first few forests and labels the rest of the stream warm.
    """
    rng = random.Random(seed)
    templates = [
        random_tree_forest(rng, statements, max_depth, name=f"shape-{i}") for i in range(shapes)
    ]
    return [
        clone_forest(rng.choice(templates), name=f"stream-{i}") for i in range(length)
    ]


# ----------------------------------------------------------------------
# Pipeline (label→reduce→emit) workload families


class EmitContext:
    """Instruction-collecting emit context for the pipeline benchmarks.

    Rule actions (and templated rules routed through
    :meth:`emit_template`) append one rendered instruction per
    application and receive a fresh virtual register as the semantic
    value.  :attr:`trace` records ``(original rule number, mnemonic,
    operands)`` per application, so differential tests can compare
    emission *order and operands* exactly across labelers, not just
    final values.
    """

    __slots__ = ("instructions", "trace", "_temps")

    def __init__(self) -> None:
        self.instructions: list[str] = []
        self.trace: list[tuple[int, str, tuple]] = []
        self._temps = 0

    def new_temp(self) -> str:
        self._temps += 1
        return f"t{self._temps}"

    def emit(self, rule_number: int, mnemonic: str, operands: list) -> str:
        """Record one instruction; returns the result virtual register."""
        temp = self.new_temp()
        rendered = ", ".join(str(operand) for operand in operands)
        self.instructions.append(f"{mnemonic} {rendered} -> {temp}" if rendered else f"{mnemonic} -> {temp}")
        self.trace.append((rule_number, mnemonic, tuple(operands)))
        return temp

    def emit_template(self, rule, node, operands: list) -> str:
        """Reducer hook for rules carrying a template but no action."""
        original = rule.original
        return self.emit(original.number, original.template or original.lhs, operands)


def _make_emit_action(rule):
    """An emit action bound to *rule* (closing over the user-written
    rule, so normalized top rules emit identically to their originals)."""
    number = rule.number
    if rule.is_chain:
        mnemonic = f"{rule.lhs}<-{rule.pattern.symbol}"
    else:
        mnemonic = rule.pattern.symbol.lower()

    def action(ctx, node, operands):
        return ctx.emit(number, mnemonic, operands)

    return action


def emit_bench_grammar() -> Grammar:
    """The benchmark grammar with emit actions on every untemplated rule.

    Templated rules keep relying on the context's ``emit_template``
    hook, so the pipeline benchmarks exercise both emission paths of
    the reducer; rules added later (e.g. by extension tests) are not
    touched.  Shares all rule shapes with :func:`bench_grammar`, so
    pipeline-versus-labeling comparisons isolate reduction/emission.
    """
    text = BENCH_GRAMMAR_TEXT.replace("%grammar bench", "%grammar bench_emit", 1)
    grammar = parse_grammar(text)
    for rule in grammar.rules:
        if rule.template is None:
            rule.action = _make_emit_action(rule)
    return grammar


def _reduce_heavy_value(rng: random.Random, builder: NodeBuilder, depth: int) -> Node:
    """A random expression biased toward chain ladders and templated shapes.

    Constants force the ``con → reg`` chain plus the "li" template,
    ``ADD(x, CNST)`` hits the "addi"/"index" rules, and loads force
    ``addr`` chain decisions — all shapes whose reduction runs several
    rule applications (and emissions) per IR node.
    """
    if depth <= 0 or rng.random() < 0.2:
        if rng.random() < 0.5:
            return builder.cnst(rng.randrange(64))
        return builder.reg(rng.randrange(8))
    roll = rng.random()
    if roll < 0.3:
        return builder.add(_reduce_heavy_value(rng, builder, depth - 1), builder.cnst(rng.randrange(32)))
    if roll < 0.45:
        return builder.load(_reduce_heavy_value(rng, builder, depth - 1))
    if roll < 0.55:
        return builder.node(rng.choice(_UNARY_OPS), _reduce_heavy_value(rng, builder, depth - 1))
    return builder.node(
        rng.choice(_BINARY_OPS),
        _reduce_heavy_value(rng, builder, depth - 1),
        _reduce_heavy_value(rng, builder, depth - 1),
    )


def reduce_heavy_forests(
    seed: int, forests: int = 8, statements: int = 10, max_depth: int = 5
) -> list[Forest]:
    """Forests whose reduction/emission phase dominates the pipeline.

    Statements mix plain expressions, stores, and the multi-node
    add-to-memory shape ``STORE(addr, ADD(LOAD(addr), reg))`` with the
    address subtree *shared*, so helper-rule splicing and the reducer's
    DAG memo both fire.
    """
    rng = random.Random(seed)
    out: list[Forest] = []
    for i in range(forests):
        builder = NodeBuilder()
        forest = Forest(name=f"reduce-{i}")
        for _ in range(statements):
            roll = rng.random()
            if roll < 0.25:
                address = _reduce_heavy_value(rng, builder, 2)
                forest.add(
                    builder.store(
                        address,
                        builder.add(
                            builder.load(address),
                            _reduce_heavy_value(rng, builder, max_depth - 2),
                        ),
                    )
                )
            elif roll < 0.5:
                forest.add(
                    builder.store(
                        _reduce_heavy_value(rng, builder, 2),
                        _reduce_heavy_value(rng, builder, max_depth),
                    )
                )
            else:
                forest.add(builder.expr(_reduce_heavy_value(rng, builder, max_depth)))
        out.append(forest)
    return out


def _pool_operand(rng: random.Random, builder: NodeBuilder, pool: list[Node]) -> Node:
    """An operand drawn (usually) from the shared-subtree pool."""
    if rng.random() < 0.85:
        return rng.choice(pool)
    return _reduce_heavy_value(rng, builder, 2)


def shared_reduction_forests(
    seed: int, forests: int = 8, statements: int = 12, shared: int = 6, max_depth: int = 5
) -> list[Forest]:
    """DAG-sharing forests where memoized reduction pays off.

    Most operands come from a per-forest pool of shared subtrees, so
    the same (node, nonterminal) pairs are requested over and over;
    the reducer answers every repeat from its memo and each shared
    subtree is emitted exactly once.
    """
    rng = random.Random(seed)
    out: list[Forest] = []
    for i in range(forests):
        builder = NodeBuilder()
        pool = [
            _reduce_heavy_value(rng, builder, rng.randint(2, max_depth)) for _ in range(shared)
        ]
        forest = Forest(name=f"dag-reduce-{i}")
        for _ in range(statements):
            value = builder.node(
                rng.choice(_BINARY_OPS),
                _pool_operand(rng, builder, pool),
                _pool_operand(rng, builder, pool),
            )
            if rng.random() < 0.4:
                forest.add(builder.store(_pool_operand(rng, builder, pool), value))
            else:
                forest.add(builder.expr(value))
        out.append(forest)
    return out


# ----------------------------------------------------------------------
# Dynamic-constraint workload family

#: Constant pool mixing 4-bit immediates, powers of two, and values that
#: satisfy neither, so every constraint outcome (and so every dynamic
#: transition signature) actually occurs in the workload.
_DYN_CONSTANTS = (1, 2, 3, 4, 7, 8, 15, 16, 17, 32, 64, 100, 200, 255)


def _dyn_value(rng: random.Random, builder: NodeBuilder, depth: int) -> Node:
    """A random expression biased toward immediate-operand shapes."""
    if depth <= 0 or rng.random() < 0.2:
        if rng.random() < 0.4:
            return builder.cnst(rng.choice(_DYN_CONSTANTS))
        return builder.reg(rng.randrange(8))
    roll = rng.random()
    if roll < 0.3:
        return builder.add(_dyn_value(rng, builder, depth - 1), builder.cnst(rng.choice(_DYN_CONSTANTS)))
    if roll < 0.5:
        return builder.mul(_dyn_value(rng, builder, depth - 1), builder.cnst(rng.choice(_DYN_CONSTANTS)))
    if roll < 0.6:
        return builder.load(_dyn_value(rng, builder, depth - 1))
    return builder.node(
        rng.choice(_BINARY_OPS),
        _dyn_value(rng, builder, depth - 1),
        _dyn_value(rng, builder, depth - 1),
    )


def dynamic_constraint_forests(
    seed: int, forests: int = 8, statements: int = 10, max_depth: int = 5
) -> list[Forest]:
    """Forests for the dynamic (constraint) grammar family.

    Statements lean on ``ADD(x, CNST)`` / ``MUL(x, CNST)`` shapes and
    occasional constant stores so the constrained rules of
    :func:`dynamic_bench_grammar` fire in both outcomes.
    """
    rng = random.Random(seed)
    out: list[Forest] = []
    for i in range(forests):
        builder = NodeBuilder()
        forest = Forest(name=f"dyn-{i}")
        for _ in range(statements):
            value = _dyn_value(rng, builder, max_depth)
            roll = rng.random()
            if roll < 0.2:
                forest.add(builder.store(_dyn_value(rng, builder, 2), builder.cnst(rng.choice(_DYN_CONSTANTS))))
            elif roll < 0.45:
                forest.add(builder.store(_dyn_value(rng, builder, 2), value))
            else:
                forest.add(builder.expr(value))
        out.append(forest)
    return out


# ----------------------------------------------------------------------
# Grammar-size sweep


def synthetic_grammar(operators: int, nonterminals: int, seed: int = 0) -> Grammar:
    """A deterministic normal-form grammar of parameterized size.

    Builds its own operator dialect — one statement root ``TOP``, two
    payload leaves ``L0``/``L1``, and *operators* value operators split
    one-third unary (``U*``), two-thirds binary (``B*``) — plus
    *nonterminals* value nonterminals connected by a chain ladder.
    Every nonterminal is derivable at every leaf (directly or through
    the ladder), so states stay finite and eager construction reaches a
    fixed point; rule placement and costs are drawn from a seeded RNG,
    making each (operators, nonterminals) point reproducible.
    """
    rng = random.Random(seed * 7919 + operators * 31 + nonterminals)
    ops = OperatorSet(name=f"synth-{operators}x{nonterminals}")
    ops.define("TOP", 1, is_statement=True, doc="statement root")
    for i in range(2):
        ops.define(f"L{i}", 0, has_payload=True, doc="leaf")
    n_unary = max(1, operators // 3)
    unary = [ops.define(f"U{i}", 1) for i in range(n_unary)]
    binary = [ops.define(f"B{i}", 2) for i in range(operators - n_unary)]

    grammar = Grammar(f"synth-{operators}x{nonterminals}", operators=ops, start="top")
    nts = [f"n{i}" for i in range(nonterminals)]
    grammar.op_rule("top", "TOP", [nts[0]], 0)
    for i, nt in enumerate(nts):
        grammar.op_rule(nt, f"L{i % 2}", [], cost=i % 2)
    for i, op in enumerate(unary):
        grammar.op_rule(nts[i % nonterminals], op.name, [rng.choice(nts)], cost=rng.randint(0, 2))
    for op in binary:
        grammar.op_rule(
            rng.choice(nts), op.name, [rng.choice(nts), rng.choice(nts)], cost=rng.randint(1, 3)
        )
    # Acyclic chain ladder: n0 <- n1 <- ... keeps closure non-trivial.
    for i in range(nonterminals - 1):
        grammar.chain(nts[i], nts[i + 1], cost=1)
    return grammar


def synthetic_forests(
    operators: OperatorSet,
    seed: int,
    forests: int = 4,
    statements: int = 8,
    max_depth: int = 5,
) -> list[Forest]:
    """Random tree forests over a :func:`synthetic_grammar` dialect."""
    rng = random.Random(seed)
    leaves = [op.name for op in operators if op.arity == 0]
    unary = [op.name for op in operators if op.arity == 1 and not op.is_statement]
    binary = [op.name for op in operators if op.arity == 2]
    builder = NodeBuilder(operators)

    def value(depth: int) -> Node:
        if depth <= 0 or rng.random() < 0.2:
            return builder.leaf(rng.choice(leaves), value=rng.randrange(16))
        if unary and rng.random() < 0.25:
            return builder.node(rng.choice(unary), value(depth - 1))
        return builder.node(rng.choice(binary), value(depth - 1), value(depth - 1))

    out: list[Forest] = []
    for i in range(forests):
        forest = Forest(name=f"synth-{i}")
        for _ in range(statements):
            forest.add(builder.node("TOP", value(max_depth)))
        out.append(forest)
    return out
