"""Seeded workload generators for the selection benchmarks.

Three families, mirroring the paper's motivating scenarios:

* **random tree forests** — independent statement trees, the generic
  compile-a-function workload;
* **DAG-heavy forests** — statements sharing common subexpressions
  (post-CSE basic blocks), stressing the labelers' sharing awareness;
* **recurring-shape streams** — a small set of template forests cloned
  over and over with fresh nodes, the JIT workload whose repetition the
  on-demand automaton amortizes into pure table lookups.

All generators are driven by :class:`random.Random` seeded explicitly,
so workloads are reproducible across runs and machines; the equivalence
test sweep reuses them with many seeds.
"""

from __future__ import annotations

import random

from repro.grammar import Grammar, parse_grammar
from repro.ir import Forest, Node, NodeBuilder
from repro.ir.traversal import topological_order

__all__ = [
    "BENCH_GRAMMAR_TEXT",
    "bench_grammar",
    "clone_forest",
    "dag_heavy_forest",
    "dag_heavy_forests",
    "random_forests",
    "random_tree_forest",
    "recurring_shape_stream",
]

#: Machine description used by the benchmarks: a demo-scale burg-style
#: grammar with chain rules, a multi-node add-to-memory rule, immediate
#: addressing, and one rule per generated operator.
BENCH_GRAMMAR_TEXT = """
%grammar bench
%start stmt

stmt: EXPR(reg)                          (0)
stmt: STORE(addr, reg)                   (1) "st %1, (%0)"
stmt: STORE(addr, ADD(LOAD(addr), reg))  (2) "add %1, (%0)"
addr: reg                                (0)
addr: ADD(reg, con)                      (0) "index"
reg:  REG                                (0)
reg:  LOAD(addr)                         (3)
reg:  ADD(reg, reg)                      (1)
reg:  ADD(reg, con)                      (1) "addi"
reg:  SUB(reg, reg)                      (1)
reg:  MUL(reg, reg)                      (2)
reg:  AND(reg, reg)                      (1)
reg:  OR(reg, reg)                       (1)
reg:  XOR(reg, reg)                      (1)
reg:  NEG(reg)                           (1)
reg:  NOT(reg)                           (1)
reg:  con                                (1) "li"
con:  CNST                               (0)
"""


def bench_grammar() -> Grammar:
    """A fresh instance of the benchmark machine description."""
    return parse_grammar(BENCH_GRAMMAR_TEXT)


_BINARY_OPS = ("ADD", "SUB", "MUL", "AND", "OR", "XOR")
_UNARY_OPS = ("NEG", "NOT")


def _random_value(rng: random.Random, builder: NodeBuilder, depth: int) -> Node:
    """A random value-producing expression of height ≤ *depth* + 1."""
    if depth <= 0 or rng.random() < 0.15:
        if rng.random() < 0.4:
            return builder.cnst(rng.randrange(256))
        return builder.reg(rng.randrange(16))
    roll = rng.random()
    if roll < 0.15:
        return builder.node(rng.choice(_UNARY_OPS), _random_value(rng, builder, depth - 1))
    if roll < 0.25:
        return builder.load(_random_value(rng, builder, depth - 1))
    return builder.node(
        rng.choice(_BINARY_OPS),
        _random_value(rng, builder, depth - 1),
        _random_value(rng, builder, depth - 1),
    )


def _random_statement(rng: random.Random, builder: NodeBuilder, depth: int) -> Node:
    value = _random_value(rng, builder, depth)
    if rng.random() < 0.35:
        address = _random_value(rng, builder, max(1, depth - 2))
        return builder.store(address, value)
    return builder.expr(value)


def random_tree_forest(
    rng: random.Random, statements: int = 10, max_depth: int = 6, name: str = "random"
) -> Forest:
    """One forest of independent random statement trees."""
    builder = NodeBuilder()
    return Forest(
        [_random_statement(rng, builder, max_depth) for _ in range(statements)], name=name
    )


def random_forests(
    seed: int, forests: int = 8, statements: int = 10, max_depth: int = 6
) -> list[Forest]:
    """A reproducible batch of random tree forests."""
    rng = random.Random(seed)
    return [
        random_tree_forest(rng, statements, max_depth, name=f"random-{i}")
        for i in range(forests)
    ]


def dag_heavy_forest(
    rng: random.Random,
    statements: int = 10,
    shared: int = 6,
    max_depth: int = 4,
    name: str = "dag",
) -> Forest:
    """One forest whose statements share a pool of common subexpressions.

    A pool of *shared* random subtrees is built first; every statement
    combines pool picks (with high probability) and fresh expressions,
    so most value nodes have several parents — the post-CSE shape.
    """
    builder = NodeBuilder()
    pool = [_random_value(rng, builder, rng.randint(1, max_depth)) for _ in range(shared)]

    def operand(depth: int) -> Node:
        if rng.random() < 0.7:
            return rng.choice(pool)
        return _random_value(rng, builder, depth)

    forest = Forest(name=name)
    for _ in range(statements):
        value = builder.node(rng.choice(_BINARY_OPS), operand(max_depth), operand(max_depth))
        if rng.random() < 0.35:
            forest.add(builder.store(operand(max_depth - 1), value))
        else:
            forest.add(builder.expr(value))
    return forest


def dag_heavy_forests(
    seed: int, forests: int = 8, statements: int = 10, shared: int = 6, max_depth: int = 4
) -> list[Forest]:
    """A reproducible batch of DAG-heavy forests."""
    rng = random.Random(seed)
    return [
        dag_heavy_forest(rng, statements, shared, max_depth, name=f"dag-{i}")
        for i in range(forests)
    ]


def clone_forest(forest: Forest, name: str | None = None) -> Forest:
    """A deep copy of *forest* with fresh node objects, sharing preserved.

    This models a JIT recompiling the same code shape: node identities
    differ (so labelers cannot cheat through identity memoisation) but
    the structure — including DAG sharing — is identical.
    """
    cloned: dict[int, Node] = {}
    for node in topological_order(forest.roots):
        cloned[id(node)] = Node(
            node.op, [cloned[id(kid)] for kid in node.kids], node.value, node.nid
        )
    return Forest([cloned[id(root)] for root in forest.roots], name=name or forest.name)


def recurring_shape_stream(
    seed: int,
    shapes: int = 6,
    length: int = 32,
    statements: int = 8,
    max_depth: int = 5,
) -> list[Forest]:
    """A JIT-style stream: *length* forests drawn from *shapes* templates.

    Each emitted forest is a fresh-node clone of a randomly chosen
    template, so an on-demand automaton sees every transition after the
    first few forests and labels the rest of the stream warm.
    """
    rng = random.Random(seed)
    templates = [
        random_tree_forest(rng, statements, max_depth, name=f"shape-{i}") for i in range(shapes)
    ]
    return [
        clone_forest(rng.choice(templates), name=f"stream-{i}") for i in range(length)
    ]
