"""Benchmark runner: DP versus cold/warm on-demand automaton labeling.

For each workload the runner measures, with metrics disabled (the
null-metrics fast paths, so only labeling work is on the clock):

* ``dp`` — the dynamic-programming baseline, which pays full rule-check
  and chain-closure work on every node of every forest;
* ``automaton_cold`` — a fresh :class:`OnDemandAutomaton` per
  repetition, paying state construction on first sight of each
  transition;
* ``automaton_warm`` — the same automaton after a prewarming pass, so
  every node is labeled by table lookups alone.

Counter-based facts (table-hit rate, warm fraction, operations/node)
come from separate *untimed* metric passes, so counting never pollutes
the timings.  Every workload also runs a DP-versus-automaton
cover-equality check: a benchmark of a labeler that changed observable
results would be meaningless, so the runner refuses to report one.

The report is JSON-serialisable and written to ``BENCH_selection.json``
by :func:`write_report` / ``python -m repro.bench``.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.bench.workloads import (
    bench_grammar,
    dag_heavy_forests,
    random_forests,
    recurring_shape_stream,
)
from repro.errors import CoverError
from repro.ir.node import Forest
from repro.metrics.counters import LabelMetrics
from repro.selection.automaton import OnDemandAutomaton
from repro.selection.cover import extract_cover
from repro.selection.label_dp import label_dp

__all__ = ["BenchConfig", "run_selection_bench", "write_report"]


@dataclass
class BenchConfig:
    """Sizes and seeds of one benchmark run."""

    seed: int = 42
    #: Timed repetitions per measurement; the best (minimum) is reported.
    repetitions: int = 3
    random_forests: int = 12
    random_statements: int = 12
    random_depth: int = 6
    dag_forests: int = 12
    dag_statements: int = 12
    dag_shared: int = 8
    dag_depth: int = 4
    stream_shapes: int = 6
    stream_length: int = 48
    stream_statements: int = 8
    stream_depth: int = 5
    #: Assert DP and automaton covers agree per workload before timing.
    verify_covers: bool = True

    @classmethod
    def smoke(cls, seed: int = 42) -> "BenchConfig":
        """A seconds-scale configuration for CI smoke runs."""
        return cls(
            seed=seed,
            repetitions=1,
            random_forests=2,
            random_statements=6,
            random_depth=4,
            dag_forests=2,
            dag_statements=6,
            dag_shared=4,
            stream_shapes=3,
            stream_length=6,
            stream_statements=5,
            stream_depth=4,
        )


def _best_seconds(label_forests, forests: list[Forest], repetitions: int) -> float:
    """Minimum wall-clock seconds to label *forests* over *repetitions*."""
    best = float("inf")
    for _ in range(max(1, repetitions)):
        started = time.perf_counter()
        label_forests(forests)
        best = min(best, time.perf_counter() - started)
    return best


def _metrics_row(
    metrics: LabelMetrics, nodes: int, seconds: float, tables: bool = True
) -> dict[str, object]:
    row: dict[str, object] = {
        "seconds": seconds,
        "ns_per_node": 1e9 * seconds / max(nodes, 1),
        "operations_per_node": metrics.operations() / max(nodes, 1),
        "rule_checks": metrics.rule_checks,
        "chain_checks": metrics.chain_checks,
    }
    if tables:
        # Table-derived facts only make sense for automaton labelers;
        # a DP row reporting warm_fraction=1.0 would just be misread.
        row.update(
            {
                "table_lookups": metrics.table_lookups,
                "table_misses": metrics.table_misses,
                "states_created": metrics.states_created,
                "hit_rate": metrics.hit_rate,
                "warm_fraction": metrics.warm_fraction,
            }
        )
    return row


def _verify_covers(grammar, automaton: OnDemandAutomaton, forests: list[Forest]) -> None:
    """Refuse to benchmark labelers that disagree about cover costs."""
    for forest in forests:
        dp_cost = extract_cover(label_dp(grammar, forest), forest).total_cost()
        auto_cost = extract_cover(automaton.label(forest), forest).total_cost()
        if dp_cost != auto_cost:
            raise CoverError(
                f"benchmark aborted: DP cover cost {dp_cost} != automaton cover "
                f"cost {auto_cost} on forest {forest.name!r}"
            )


def bench_workload(
    name: str, forests: list[Forest], grammar, config: BenchConfig
) -> dict[str, object]:
    """Measure one workload; returns the JSON-ready result row."""
    nodes = sum(forest.node_count() for forest in forests)
    repetitions = config.repetitions

    if config.verify_covers:
        _verify_covers(grammar, OnDemandAutomaton(grammar), forests)

    # --- timed passes (metrics disabled: the null-metrics fast paths) ---
    dp_seconds = _best_seconds(
        lambda fs: [label_dp(grammar, forest) for forest in fs], forests, repetitions
    )

    cold_seconds = float("inf")
    for _ in range(max(1, repetitions)):
        automaton = OnDemandAutomaton(grammar)
        started = time.perf_counter()
        for forest in forests:
            automaton.label(forest)
        cold_seconds = min(cold_seconds, time.perf_counter() - started)

    warm_automaton = OnDemandAutomaton(grammar)
    for forest in forests:
        warm_automaton.label(forest)  # prewarm: populate all transitions
    warm_seconds = _best_seconds(
        lambda fs: [warm_automaton.label(forest) for forest in fs], forests, repetitions
    )

    # --- untimed metric passes (counters on, timings ignored) ---
    dp_metrics = LabelMetrics()
    for forest in forests:
        label_dp(grammar, forest, dp_metrics)
    counted = OnDemandAutomaton(grammar)
    cold_metrics = LabelMetrics()
    for forest in forests:
        counted.label(forest, cold_metrics)
    warm_metrics = LabelMetrics()
    for forest in forests:
        counted.label(forest, warm_metrics)
    stats = counted.stats()

    return {
        "name": name,
        "forests": len(forests),
        "nodes": nodes,
        "labelers": {
            "dp": _metrics_row(dp_metrics, nodes, dp_seconds, tables=False),
            "automaton_cold": _metrics_row(cold_metrics, nodes, cold_seconds),
            "automaton_warm": _metrics_row(warm_metrics, nodes, warm_seconds),
        },
        "automaton": {
            "states": stats["states"],
            "transitions": stats["transitions"],
        },
        "speedup_cold_vs_dp": dp_seconds / cold_seconds if cold_seconds > 0 else None,
        "speedup_warm_vs_dp": dp_seconds / warm_seconds if warm_seconds > 0 else None,
    }


def run_selection_bench(config: BenchConfig | None = None) -> dict[str, object]:
    """Run every workload family and return the full report dict."""
    config = config if config is not None else BenchConfig()
    grammar = bench_grammar()
    workloads = [
        (
            "random_trees",
            random_forests(
                config.seed, config.random_forests, config.random_statements, config.random_depth
            ),
        ),
        (
            "dag_heavy",
            dag_heavy_forests(
                config.seed + 1,
                config.dag_forests,
                config.dag_statements,
                config.dag_shared,
                config.dag_depth,
            ),
        ),
        (
            "recurring_stream",
            recurring_shape_stream(
                config.seed + 2,
                config.stream_shapes,
                config.stream_length,
                config.stream_statements,
                config.stream_depth,
            ),
        ),
    ]
    return {
        "benchmark": "selection-labeling",
        "meta": {
            "python": sys.version.split()[0],
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "grammar": grammar.stats().as_row(),
            "config": asdict(config),
        },
        "workloads": [
            bench_workload(name, forests, grammar, config) for name, forests in workloads
        ],
    }


def write_report(report: dict[str, object], path: str | Path = "BENCH_selection.json") -> Path:
    """Write *report* as pretty-printed JSON; returns the path written."""
    target = Path(path)
    target.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
    return target
