"""Benchmark runner: DP versus cold/warm/eager automaton labeling, and
the end-to-end selection pipeline (label + reduce + emit).

For each labeling workload the runner measures, with metrics disabled
(the null-metrics fast paths, so only labeling work is on the clock):

* ``dp`` — the dynamic-programming baseline, which pays full rule-check
  and chain-closure work on every node of every forest;
* ``automaton_cold`` — a fresh :class:`OnDemandAutomaton` per
  repetition, paying state construction on first sight of each
  transition;
* ``automaton_warm`` — the same automaton after a prewarming pass, so
  every node is labeled by table lookups alone;
* ``automaton_eager`` — an automaton whose tables were precomputed with
  :meth:`OnDemandAutomaton.build_eager`, the offline end of the
  trade-off: zero cold cost at labeling time, bigger tables (the
  ``automaton.eager`` entry reports the build).

All labelers run through the batched ``label_many`` entry point — the
fused warm path under measurement.  Node counts are taken once, outside
all timed regions, and timing uses ``time.perf_counter_ns`` so
sub-millisecond workloads do not accumulate float error.

Counter-based facts (table-hit rate, warm fraction, operations/node)
come from separate *untimed* metric passes, so counting never pollutes
the timings.  Every workload also runs a cover-equality check across
all four labeler configurations: a benchmark of a labeler that changed
observable results would be meaningless, so the runner refuses to
report one.  Eager runs additionally refuse to report a first contact
that was not 100% table hits.

A grammar-size sweep (``sweep`` in the report) charts on-demand versus
eager table growth over synthetic grammars of increasing size.

The ``selector_aot`` section measures the ahead-of-time path of the
:class:`~repro.selection.selector.Selector` facade: the in-process
eager build is compiled **once per grammar** (the same automaton is
shared by the labeling and pipeline sections — no redundant eager
builds anywhere in a run), saved to an artifact, and cold-start *full
selection* is measured from freshly loaded selectors (each repetition
loads its own instance, so every timed select is genuinely first
contact) against building on-demand or eager in-process.  Selector
``build_ns`` / ``save_ns`` / ``load_ns`` are recorded per row, the
runner refuses to report a loaded selector whose first contact was not
100% table hits or whose covers/values differ from the in-process eager
selector, and a CLI-compiled artifact (``--selector-artifact``) is used
for the loads when its grammar fingerprint matches.

The ``pipeline`` section measures *full selection* — one
:func:`~repro.selection.pipeline.select_many` call fusing batched
labeling with the iterative reducer and emit actions — across the same
four labeler configurations, on four workloads: the random-tree and
dynamic-constraint families above plus two reduce-focused families
(reduce-heavy trees with emit actions, and shared-reduction DAGs where
the reducer's memo pays off).  Per-phase nanoseconds come from the
pipeline's own :class:`~repro.selection.pipeline.SelectionReport`, so
label versus reduce/emit time is reported per configuration.  Before
timing, the runner runs every configuration once with a fresh
:class:`~repro.bench.workloads.EmitContext` and refuses to report
unless semantic values, emitted instruction streams, action traces,
and cover costs are all identical across configurations.

The report is JSON-serialisable and written to ``BENCH_selection.json``
by :func:`write_report` / ``python -m repro.bench``.
"""

from __future__ import annotations

import gc
import json
import platform
import random
import sys
import tempfile
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.bench.workloads import (
    EmitContext,
    bench_grammar,
    dag_heavy_forests,
    dynamic_bench_grammar,
    dynamic_constraint_forests,
    emit_bench_grammar,
    random_forests,
    recurring_shape_stream,
    reduce_heavy_forests,
    shared_reduction_forests,
    synthetic_forests,
    synthetic_grammar,
)
from repro.errors import CoverError, ResilienceError, SelectorError
from repro.ir.node import Forest
from repro.metrics.counters import LabelMetrics
from repro.obs import Observability, metric_key, percentile
from repro.selection.automaton import OnDemandAutomaton
from repro.selection.cover import extract_cover
from repro.selection.label_dp import DPLabeler, label_dp
from repro.selection.pipeline import SelectionReport, select_many
from repro.selection.resilience import ArtifactCache, BuildBudget, SelectionFailure
from repro.selection.selector import (
    Selector,
    SelectorConfig,
    grammar_fingerprint,
    read_artifact_header,
)
from repro.service import SelectionService, ServiceConfig
from repro.testing.faults import corrupt_bytes, poison_action

__all__ = [
    "BenchConfig",
    "bench_pipeline_workload",
    "bench_selector_aot_workload",
    "run_faults_bench",
    "run_grammar_sweep",
    "run_pipeline_bench",
    "run_selection_bench",
    "run_selector_aot_bench",
    "run_service_bench",
    "write_report",
]


class _EagerCache:
    """One eagerly-built automaton per grammar instance.

    The labeling, pipeline, and selector-AOT sections of a run all need
    the same grammar's complete tables; building them once and sharing
    the (immutable after a complete build) automaton keeps the run to
    exactly one eager build per grammar.
    """

    def __init__(self) -> None:
        self._by_grammar: dict[int, OnDemandAutomaton] = {}

    def adopt(self, grammar, automaton: OnDemandAutomaton) -> None:
        """Register an already-built automaton for *grammar*."""
        self._by_grammar[id(grammar)] = automaton

    def automaton(self, grammar) -> OnDemandAutomaton:
        automaton = self._by_grammar.get(id(grammar))
        if automaton is None:
            automaton = OnDemandAutomaton(grammar)
            automaton.build_eager()
            self._by_grammar[id(grammar)] = automaton
        return automaton


@dataclass
class BenchConfig:
    """Sizes and seeds of one benchmark run."""

    seed: int = 42
    #: Timed repetitions per measurement; the best (minimum) is reported.
    repetitions: int = 5
    random_forests: int = 12
    random_statements: int = 12
    random_depth: int = 6
    dag_forests: int = 12
    dag_statements: int = 12
    dag_shared: int = 8
    dag_depth: int = 4
    stream_shapes: int = 6
    stream_length: int = 48
    stream_statements: int = 8
    stream_depth: int = 5
    dyn_forests: int = 12
    dyn_statements: int = 12
    dyn_depth: int = 5
    reduce_forests: int = 10
    reduce_statements: int = 10
    reduce_depth: int = 5
    dagr_forests: int = 10
    dagr_statements: int = 12
    dagr_shared: int = 6
    dagr_depth: int = 4
    #: Assert all labeler configurations agree on covers (and, for the
    #: pipeline, semantic values and emitted instructions) before timing.
    verify_covers: bool = True
    #: (operators, nonterminals) points of the grammar-size sweep.
    sweep_sizes: list[list[int]] = field(
        default_factory=lambda: [[4, 2], [8, 3], [16, 5], [24, 6]]
    )
    sweep_forests: int = 4
    sweep_statements: int = 8
    sweep_depth: int = 5
    #: Runaway guard for eager construction on the sweep grammars.
    sweep_max_states: int = 512
    #: Sustained-traffic service harness: open-loop request count,
    #: worker-pool size, mean seeded inter-arrival gap, and the burst
    #: size of the overload-shedding row.
    service_requests: int = 72
    service_workers: int = 2
    service_arrival_s: float = 0.002
    service_burst: int = 24

    @classmethod
    def smoke(cls, seed: int = 42) -> "BenchConfig":
        """A seconds-scale configuration for CI smoke runs."""
        return cls(
            seed=seed,
            repetitions=1,
            random_forests=2,
            random_statements=6,
            random_depth=4,
            dag_forests=2,
            dag_statements=6,
            dag_shared=4,
            stream_shapes=3,
            stream_length=6,
            stream_statements=5,
            stream_depth=4,
            dyn_forests=2,
            dyn_statements=6,
            dyn_depth=4,
            reduce_forests=2,
            reduce_statements=6,
            reduce_depth=4,
            dagr_forests=2,
            dagr_statements=6,
            dagr_shared=4,
            sweep_sizes=[[4, 2], [8, 3]],
            sweep_forests=2,
            sweep_statements=5,
            sweep_depth=4,
            service_requests=24,
            service_arrival_s=0.001,
            service_burst=12,
        )


def _best_ns(run_batch, repetitions: int) -> int:
    """Minimum wall-clock nanoseconds of ``run_batch()`` over repetitions.

    Integer nanoseconds end to end — no float accumulation on
    sub-millisecond batches.  The batch must be self-contained: node
    counting and any setup happen outside, at the call site.  Garbage
    from earlier passes is collected up front and the collector is
    paused while the clock runs, so a cycle collection triggered by an
    unrelated allocation spike cannot land inside a measurement.
    """
    best: int | None = None
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(max(1, repetitions)):
            started = time.perf_counter_ns()
            run_batch()
            elapsed = time.perf_counter_ns() - started
            if best is None or elapsed < best:
                best = elapsed
    finally:
        if gc_was_enabled:
            gc.enable()
    return best if best is not None else 0


def _metrics_row(
    metrics: LabelMetrics, nodes: int, elapsed_ns: int, tables: bool = True
) -> dict[str, object]:
    row: dict[str, object] = {
        "seconds": elapsed_ns / 1e9,
        "ns_per_node": elapsed_ns / max(nodes, 1),
        "operations_per_node": metrics.operations() / max(nodes, 1),
        "rule_checks": metrics.rule_checks,
        "chain_checks": metrics.chain_checks,
    }
    if tables:
        # Table-derived facts only make sense for automaton labelers;
        # a DP row reporting warm_fraction=1.0 would just be misread.
        row.update(
            {
                "table_lookups": metrics.table_lookups,
                "table_misses": metrics.table_misses,
                "states_created": metrics.states_created,
                "hit_rate": metrics.hit_rate,
                "warm_fraction": metrics.warm_fraction,
            }
        )
    return row


def _verify_covers(grammar, forests: list[Forest], eager: OnDemandAutomaton) -> None:
    """Refuse to benchmark labelers that disagree about cover costs.

    Checks all four measured configurations against the DP baseline:
    per-forest on-demand labeling, one batched ``label_many`` labeling,
    and labeling over the caller's eagerly built automaton (tables are
    immutable after a complete build, so sharing it is free).
    """
    ondemand = OnDemandAutomaton(grammar)
    batched = OnDemandAutomaton(grammar).label_many(forests)
    for forest in forests:
        dp_cost = extract_cover(label_dp(grammar, forest), forest).total_cost()
        checks = (
            ("on-demand", extract_cover(ondemand.label(forest), forest).total_cost()),
            ("batched", extract_cover(batched, forest).total_cost()),
            ("eager", extract_cover(eager.label(forest), forest).total_cost()),
        )
        for label_name, cost in checks:
            if cost != dp_cost:
                raise CoverError(
                    f"benchmark aborted: DP cover cost {dp_cost} != {label_name} "
                    f"cover cost {cost} on forest {forest.name!r}"
                )


def bench_workload(
    name: str,
    forests: list[Forest],
    grammar,
    config: BenchConfig,
    eager_automaton: OnDemandAutomaton | None = None,
) -> dict[str, object]:
    """Measure one workload; returns the JSON-ready result row."""
    # Node counting re-traverses every forest: do it once, before any
    # timed region, never inside one.
    nodes = sum(forest.node_count() for forest in forests)
    repetitions = config.repetitions

    # One eager build per grammar, shared across workloads and sections
    # (the caller passes it in); verification, the timed pass, and the
    # metric pass below all share its (complete, immutable) tables.
    if eager_automaton is None or eager_automaton._eager is None:
        eager_automaton = OnDemandAutomaton(grammar)
        eager_automaton.build_eager()
    eager_build = dict(eager_automaton.stats()["eager"])

    if config.verify_covers:
        _verify_covers(grammar, forests, eager_automaton)

    # --- timed passes (metrics disabled: the null-metrics fast paths) ---
    dp_labeler = DPLabeler(grammar)
    dp_ns = _best_ns(lambda: dp_labeler.label_many(forests), repetitions)

    cold_automata = [OnDemandAutomaton(grammar) for _ in range(max(1, repetitions))]
    cold_iter = iter(cold_automata)
    cold_ns = _best_ns(lambda: next(cold_iter).label_many(forests), repetitions)

    warm_automaton = OnDemandAutomaton(grammar)
    warm_automaton.label_many(forests)  # prewarm: populate all transitions
    warm_ns = _best_ns(lambda: warm_automaton.label_many(forests), repetitions)

    eager_ns = _best_ns(lambda: eager_automaton.label_many(forests), repetitions)

    # --- untimed metric passes (counters on, timings ignored) ---
    dp_metrics = LabelMetrics()
    dp_labeler.label_many(forests, dp_metrics)
    counted = OnDemandAutomaton(grammar)
    cold_metrics = LabelMetrics()
    counted.label_many(forests, cold_metrics)
    warm_metrics = LabelMetrics()
    counted.label_many(forests, warm_metrics)
    stats = counted.stats()

    eager_metrics = LabelMetrics()
    eager_automaton.label_many(forests, eager_metrics)
    if not eager_build["skipped"] and eager_metrics.table_misses:
        raise CoverError(
            f"benchmark aborted: eager automaton missed {eager_metrics.table_misses} "
            f"transitions on first contact with workload {name!r}"
        )

    return {
        "name": name,
        "forests": len(forests),
        "nodes": nodes,
        "labelers": {
            "dp": _metrics_row(dp_metrics, nodes, dp_ns, tables=False),
            "automaton_cold": _metrics_row(cold_metrics, nodes, cold_ns),
            "automaton_warm": _metrics_row(warm_metrics, nodes, warm_ns),
            "automaton_eager": _metrics_row(eager_metrics, nodes, eager_ns),
        },
        "automaton": {
            "states": stats["states"],
            "transitions": stats["transitions"],
            "eager": {
                "states": eager_build["states"],
                "transitions": eager_build["transitions"],
                "rounds": eager_build["rounds"],
                "build_seconds": eager_build["build_seconds"],
                "skipped": eager_build["skipped"],
                "capped": eager_build["capped"],
            },
        },
        "speedup_cold_vs_dp": dp_ns / cold_ns if cold_ns > 0 else None,
        "speedup_warm_vs_dp": dp_ns / warm_ns if warm_ns > 0 else None,
        "speedup_eager_vs_dp": dp_ns / eager_ns if eager_ns > 0 else None,
    }


# ----------------------------------------------------------------------
# End-to-end pipeline (label + reduce + emit) benchmarks

#: The four measured pipeline configurations, in report order.
PIPELINE_LABELERS = ("dp", "automaton_cold", "automaton_warm", "automaton_eager")


def _verify_pipeline(grammar, forests: list[Forest], eager: OnDemandAutomaton) -> int:
    """Refuse to benchmark pipelines that differ observably.

    Runs every measured configuration once with a fresh
    :class:`EmitContext` and requires per-forest semantic values,
    emitted instruction streams, action traces (order *and* operands),
    and cover costs to be identical.  The sweep covers the four
    labeling architectures *and* both emission engines: the frame-stack
    reducer oracle, the tape emitter compiling fresh, and — via a
    second pass over a persistent selector — the tape emitter replaying
    its shape cache, so a caching bug cannot quietly skew the measured
    rows.  Returns the verified cover cost.
    """
    ondemand = OnDemandAutomaton(grammar)
    tape_selector = Selector.wrap(OnDemandAutomaton(grammar))
    configs = [
        ("dp", DPLabeler(grammar)),
        ("on-demand", ondemand),
        ("warm", ondemand),  # second batch over the same automaton: warm tables
        ("eager", eager),
        (
            "frame-reducer",
            Selector.wrap(
                OnDemandAutomaton(grammar), config=SelectorConfig(emitter="reducer")
            ),
        ),
        ("tape-compile", tape_selector),
        ("tape-replay", tape_selector),  # second batch: shape-cache replays
    ]
    baseline_name = baseline = None
    for config_name, engine in configs:
        context = EmitContext()
        result = select_many(forests, labeler=engine, context=context)
        observed = (
            result.values,
            context.instructions,
            context.trace,
            result.report.cover_cost,
        )
        if baseline is None:
            baseline_name, baseline = config_name, observed
        elif observed != baseline:
            raise CoverError(
                f"benchmark aborted: pipeline over {config_name!r} labeling differs "
                f"observably from {baseline_name!r} (values/instructions/trace/cover)"
            )
    assert baseline is not None
    return baseline[3]


def _best_pipeline_report(
    engine_for_rep, forests: list[Forest], repetitions: int
) -> SelectionReport:
    """The fastest (minimum total ns) pipeline run over *repetitions*.

    Each repetition runs one full ``select_many`` — batched labeling
    plus memoized reduction with emit actions into a fresh
    :class:`EmitContext` — with cover collection off and the garbage
    collector parked, mirroring :func:`_best_ns`.  Per-phase timings
    come from the pipeline's own integer-ns counters.
    """
    best: SelectionReport | None = None
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for rep in range(max(1, repetitions)):
            result = select_many(
                forests,
                labeler=engine_for_rep(rep),
                context=EmitContext(),
                collect_cover=False,
            )
            report = result.report
            if best is None or report.total_ns < best.total_ns:
                best = report
    finally:
        if gc_was_enabled:
            gc.enable()
    assert best is not None
    return best


def _pipeline_labeler_row(report: SelectionReport) -> dict[str, object]:
    nodes = max(report.nodes, 1)
    return {
        "seconds": report.total_ns / 1e9,
        "ns_per_node": report.total_ns / nodes,
        "label_ns_per_node": report.label_ns / nodes,
        "reduce_ns_per_node": report.reduce_ns / nodes,
        "reduce_fraction": report.reduce_fraction,
        "reductions": report.reductions,
        "memo_hits": report.memo_hits,
        "failures": report.failures,
        "tapes_compiled": report.tapes_compiled,
        "tape_cache_hits": report.tape_cache_hits,
    }


def bench_pipeline_workload(
    name: str,
    forests: list[Forest],
    grammar,
    config: BenchConfig,
    eager_automaton: OnDemandAutomaton | None = None,
) -> dict[str, object]:
    """Measure full selection on one workload; returns the JSON row."""
    nodes = sum(forest.node_count() for forest in forests)
    repetitions = config.repetitions

    if eager_automaton is None or eager_automaton._eager is None:
        eager_automaton = OnDemandAutomaton(grammar)
        eager_automaton.build_eager()

    if config.verify_covers:
        cover_cost = _verify_pipeline(grammar, forests, eager_automaton)
    else:
        # Emit actions still need a context even when verification is off.
        cover_cost = select_many(
            forests, labeler=DPLabeler(grammar), context=EmitContext()
        ).report.cover_cost

    # Persistent selectors per row: the selector owns the emission-tape
    # shape cache, so reusing one across repetitions measures the
    # steady state of a long-lived selector (first rep compiles tapes,
    # later reps replay them) — the JIT re-emission scenario the tape
    # engine exists for.  Cold rows get a fresh automaton *and* a fresh
    # selector every repetition: first-touch everything.
    dp_selector = Selector.wrap(DPLabeler(grammar))
    dp = _best_pipeline_report(lambda rep: dp_selector, forests, repetitions)

    cold_automata = [OnDemandAutomaton(grammar) for _ in range(max(1, repetitions))]
    cold = _best_pipeline_report(lambda rep: cold_automata[rep], forests, repetitions)

    warm_automaton = OnDemandAutomaton(grammar)
    warm_automaton.label_many(forests)  # prewarm: populate all transitions
    warm_selector = Selector.wrap(warm_automaton)
    # Prewarm the emission side the same way the label side is
    # prewarmed: one untimed pass compiles the workload's tapes into
    # the selector's shape cache, so the warm rows measure labels-warm
    # AND tapes-warm steady state even at one repetition (the smoke
    # config); cold rows above stay genuinely first-touch.
    select_many(forests, labeler=warm_selector, context=EmitContext(), collect_cover=False)
    warm = _best_pipeline_report(lambda rep: warm_selector, forests, repetitions)

    eager_selector = Selector.wrap(eager_automaton)
    select_many(forests, labeler=eager_selector, context=EmitContext(), collect_cover=False)
    eager = _best_pipeline_report(lambda rep: eager_selector, forests, repetitions)

    # Emitter comparison on the warm labeling path: same prewarmed
    # automaton, frame-stack reducer versus the (cache-warm) tape rows
    # above — isolating the emit-phase effect of tape compilation.
    reducer_selector = Selector.wrap(
        warm_automaton, config=SelectorConfig(emitter="reducer")
    )
    reducer_warm = _best_pipeline_report(lambda rep: reducer_selector, forests, repetitions)

    return {
        "name": name,
        "grammar": grammar.name,
        "forests": len(forests),
        "roots": dp.roots,
        "nodes": nodes,
        "cover_cost": cover_cost,
        "labelers": {
            "dp": _pipeline_labeler_row(dp),
            "automaton_cold": _pipeline_labeler_row(cold),
            "automaton_warm": _pipeline_labeler_row(warm),
            "automaton_eager": _pipeline_labeler_row(eager),
        },
        "emitters": {
            "tape": _pipeline_labeler_row(warm),
            "reducer": _pipeline_labeler_row(reducer_warm),
            "emit_speedup_tape_vs_reducer": (
                reducer_warm.reduce_ns / warm.reduce_ns if warm.reduce_ns > 0 else None
            ),
        },
        "speedup_cold_vs_dp": dp.total_ns / cold.total_ns if cold.total_ns > 0 else None,
        "speedup_warm_vs_dp": dp.total_ns / warm.total_ns if warm.total_ns > 0 else None,
        "speedup_eager_vs_dp": dp.total_ns / eager.total_ns if eager.total_ns > 0 else None,
    }


def run_pipeline_bench(
    config: BenchConfig,
    grammars: "tuple | None" = None,
    cache: _EagerCache | None = None,
) -> list[dict[str, object]]:
    """Measure the end-to-end pipeline on all four pipeline workloads.

    *grammars* is an optional ``(bench, emit, dynamic)`` grammar triple
    and *cache* an optional :class:`_EagerCache`, both supplied by
    :func:`run_selection_bench` so pipeline rows reuse the eager
    automatons already built for the labeling rows.
    """
    if grammars is not None:
        bench, emit_grammar, dyn = grammars
    else:
        bench, emit_grammar, dyn = bench_grammar(), emit_bench_grammar(), dynamic_bench_grammar()
    cache = cache if cache is not None else _EagerCache()
    workloads = [
        (
            "random_trees",
            random_forests(
                config.seed, config.random_forests, config.random_statements, config.random_depth
            ),
            bench,
        ),
        (
            "reduce_heavy",
            reduce_heavy_forests(
                config.seed + 4,
                config.reduce_forests,
                config.reduce_statements,
                config.reduce_depth,
            ),
            emit_grammar,
        ),
        (
            "dag_reduce",
            shared_reduction_forests(
                config.seed + 5,
                config.dagr_forests,
                config.dagr_statements,
                config.dagr_shared,
                config.dagr_depth,
            ),
            emit_grammar,
        ),
        (
            "dynamic_constraints",
            dynamic_constraint_forests(
                config.seed + 3, config.dyn_forests, config.dyn_statements, config.dyn_depth
            ),
            dyn,
        ),
        (
            # The JIT-style stream: a few shapes recurring as fresh-node
            # clones.  The tape emitter's amortisation case — each shape
            # compiles once and replays for every repeat, so its warm
            # emit phase sits below full re-emission (the reducer row in
            # this workload's ``emitters`` comparison).
            "recurring_stream",
            recurring_shape_stream(
                config.seed + 2,
                config.stream_shapes,
                config.stream_length,
                config.stream_statements,
                config.stream_depth,
            ),
            bench,
        ),
    ]
    return [
        bench_pipeline_workload(name, forests, grammar, config, cache.automaton(grammar))
        for name, forests, grammar in workloads
    ]


# ----------------------------------------------------------------------
# Ahead-of-time selector benchmarks (compile / save / load cold start)


def _aot_cold_row(startup_ns: int, report: SelectionReport, nodes: int) -> dict[str, object]:
    """One cold-start row: startup (build or load) plus first select."""
    cold_total = startup_ns + report.total_ns
    return {
        "startup_ns": startup_ns,
        "select_ns": report.total_ns,
        "cold_total_ns": cold_total,
        "ns_per_node": cold_total / max(nodes, 1),
        "select_ns_per_node": report.total_ns / max(nodes, 1),
    }


def bench_selector_aot_workload(
    name: str,
    forests: list[Forest],
    grammar,
    config: BenchConfig,
    compiled: Selector,
    artifact: Path,
    from_cli: bool,
) -> dict[str, object]:
    """Measure AOT cold start on one workload; returns the JSON row.

    *compiled* is the in-process eager selector (built once per grammar
    — its measured ``build_ns`` is the baseline the load must beat) and
    *artifact* the saved table file.  Every timed loaded select uses a
    freshly loaded selector, so it is genuinely first contact.
    """
    nodes = sum(forest.node_count() for forest in forests)
    repetitions = max(1, config.repetitions)
    aot = compiled.stats()["aot"]
    build_ns = aot["build_ns"]

    # Verification gets its own loaded instance (verifying would warm a
    # timed one); the timed repetitions each load lazily inside the
    # measurement callback, so only one full table copy is alive at a
    # time and every timed select is still genuinely first contact.
    verifier = Selector.load(artifact, grammar)
    load_samples = [verifier.stats()["aot"]["load_ns"]]
    warm_instance: list[Selector] = []

    def load_fresh(_rep: int) -> Selector:
        selector = Selector.load(artifact, grammar)
        load_samples.append(selector.stats()["aot"]["load_ns"])
        if not warm_instance:
            warm_instance.append(selector)
        return selector

    # The loaded selector must be indistinguishable from the in-process
    # eager selector: zero table misses on first contact, identical
    # values and cover costs.
    contact = LabelMetrics()
    verifier.label_many(forests, contact)
    skipped = compiled.stats()["tables"]["eager"]["skipped"]
    if not skipped and contact.table_misses:
        raise CoverError(
            f"benchmark aborted: loaded selector missed {contact.table_misses} "
            f"transitions on first contact with workload {name!r}"
        )
    expected = compiled.select_many(forests, context=EmitContext())
    observed = verifier.select_many(forests, context=EmitContext())
    if (
        observed.values != expected.values
        or observed.report.cover_cost != expected.report.cover_cost
    ):
        raise CoverError(
            f"benchmark aborted: loaded selector differs observably from the "
            f"in-process eager selector on workload {name!r}"
        )

    cold_loaded = _best_pipeline_report(load_fresh, forests, repetitions)
    load_ns = min(load_samples)
    cold_ondemand = _best_pipeline_report(
        lambda rep: OnDemandAutomaton(grammar), forests, repetitions
    )
    eager_select = _best_pipeline_report(lambda rep: compiled, forests, repetitions)
    warm_loaded = _best_pipeline_report(lambda rep: warm_instance[0], forests, repetitions)

    return {
        "name": name,
        "grammar": grammar.name,
        "forests": len(forests),
        "nodes": nodes,
        "artifact": {
            "path": str(artifact) if from_cli else None,
            "bytes": aot["artifact_bytes"],
            "from_cli": from_cli,
        },
        "build_ns": build_ns,
        "save_ns": aot["save_ns"],
        "certified": verifier.stats()["aot"]["certified"],
        "load_ns": load_ns,
        "load_speedup_vs_build": build_ns / load_ns if load_ns > 0 else None,
        "load_beats_build": load_ns < build_ns,
        "first_contact_misses": contact.table_misses,
        "labelers": {
            "selector_aot": _aot_cold_row(load_ns, cold_loaded, nodes),
            "inprocess_eager": _aot_cold_row(build_ns, eager_select, nodes),
            "inprocess_ondemand": _aot_cold_row(0, cold_ondemand, nodes),
            "aot_warm": {
                "select_ns": warm_loaded.total_ns,
                "ns_per_node": warm_loaded.total_ns / max(nodes, 1),
            },
        },
    }


def run_selector_aot_bench(
    config: BenchConfig,
    artifact_path: "str | Path | None" = None,
    grammar=None,
    compiled: Selector | None = None,
) -> list[dict[str, object]]:
    """AOT cold-start rows on the static bench families.

    When *artifact_path* names an artifact whose grammar fingerprint
    matches (e.g. one compiled in CI via ``python -m
    repro.selection.selector compile``), loads are measured from that
    file; otherwise the in-process build is saved to a temporary
    artifact first (its ``save_ns`` is reported either way).
    """
    grammar = grammar if grammar is not None else bench_grammar()
    if compiled is None:
        compiled = Selector(grammar)
    if compiled.stats()["aot"]["build_ns"] is None:
        # No *measured* in-process build yet (fresh, wrapped, or loaded
        # selector): run one — idempotent on already-complete tables —
        # so the build-vs-load comparison has a real baseline.
        compiled.compile()
    if compiled.stats()["aot"]["certified"] is None:
        # Stamp the completeness certification into the saved artifact;
        # the loaded verifier surfaces it in the report rows.
        compiled.verify()
    workloads = [
        (
            "random_trees",
            random_forests(
                config.seed, config.random_forests, config.random_statements, config.random_depth
            ),
        ),
        (
            "recurring_stream",
            recurring_shape_stream(
                config.seed + 2,
                config.stream_shapes,
                config.stream_length,
                config.stream_statements,
                config.stream_depth,
            ),
        ),
    ]
    with tempfile.TemporaryDirectory(prefix="selector-aot-") as tmp:
        # Saving is part of the AOT workflow: measure it even when the
        # loads will come from a CLI-compiled artifact.
        saved = compiled.save(Path(tmp) / f"{grammar.name}.rsel")
        artifact = saved
        from_cli = False
        if artifact_path is not None:
            try:
                header = read_artifact_header(artifact_path)
                from_cli = header["fingerprint"] == grammar_fingerprint(grammar)
            except SelectorError:
                from_cli = False
            if from_cli:
                artifact = Path(artifact_path)
        return [
            bench_selector_aot_workload(
                name, forests, grammar, config, compiled, artifact, from_cli
            )
            for name, forests in workloads
        ]


def run_grammar_sweep(config: BenchConfig) -> list[dict[str, object]]:
    """On-demand versus eager table growth over synthetic grammar sizes.

    For each (operators, nonterminals) point: label a seeded workload
    with an on-demand automaton and record the tables it actually
    populated, then eagerly build a second automaton's full tables and
    record their size and build time.  The ratio between the two is the
    paper's table-explosion axis.
    """
    rows: list[dict[str, object]] = []
    for n_ops, n_nts in config.sweep_sizes:
        grammar = synthetic_grammar(n_ops, n_nts, seed=config.seed)
        forests = synthetic_forests(
            grammar.operators,
            config.seed + n_ops,
            config.sweep_forests,
            config.sweep_statements,
            config.sweep_depth,
        )
        ondemand = OnDemandAutomaton(grammar)
        ondemand.label_many(forests)
        od_stats = ondemand.stats()

        eager = OnDemandAutomaton(grammar)
        build = eager.build_eager(max_states=config.sweep_max_states)
        contact = LabelMetrics()
        eager.label_many(forests, contact)

        od_transitions = int(od_stats["transitions"])
        rows.append(
            {
                "operators": n_ops,
                "nonterminals": n_nts,
                "rules": len(grammar.rules),
                "ondemand": {
                    "states": od_stats["states"],
                    "transitions": od_transitions,
                },
                "eager": {
                    "states": build["states"],
                    "transitions": build["transitions"],
                    "build_seconds": build["build_seconds"],
                    "rounds": build["rounds"],
                    "capped": build["capped"],
                },
                "eager_first_contact_misses": contact.table_misses,
                "table_ratio": build["transitions"] / max(od_transitions, 1),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Resilience (faults) benchmarks: happy-path overhead, isolation
# correctness under injected faults, and the artifact degradation ladder


#: Refusal thresholds for the isolate happy path: the run aborts only
#: when the relative overhead exceeds 2% **and** the absolute overhead
#: exceeds the epsilon.  The isolation machinery's true cost is a small
#: fixed per-batch term (reducer setup, failure scaffolding) — ~50
#: ns/node amortized over a ~100-node smoke batch, well under 1 ns/node
#: at full bench size — so the epsilon absorbs that constant on tiny
#: workloads while the 2% relative gate stays binding wherever per-node
#: cost is actually measurable.
MAX_ISOLATE_OVERHEAD = 0.02
ISOLATE_OVERHEAD_EPSILON_NS = 100.0


def _policy_pair_samples(
    selector: Selector, forests: list[Forest], repetitions: int
) -> tuple[list[tuple[int, int]], SelectionReport]:
    """Paired wall-clock ``select_many`` timings, one (raise, isolate)
    nanosecond sample per repetition, plus the last isolate report.

    Wall-clock around the whole call — not the report's internal
    label/reduce windows — because the overhead being measured is
    exactly the code *outside* those windows: the isolation pipeline's
    bookkeeping, reducer setup, and failure scaffolding.  Each
    repetition times the two policies back to back in alternating
    order (on a loaded machine the second run of a pair is the more
    likely to absorb an expired timeslice; a fixed order would turn
    that into a systematic bias against one policy), and the caller
    gates on the *minimum* of the per-pair differences: preemption and
    cache pollution only ever inflate a sample, so the cleanest pair is
    the faithful estimate of the true overhead — and a real regression,
    unlike noise, shows up in every pair including it.
    """
    pairs: list[tuple[int, int]] = []
    isolate_report: SelectionReport | None = None
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for repetition in range(max(1, repetitions)):
            first = "raise" if repetition % 2 == 0 else "isolate"
            second = "isolate" if first == "raise" else "raise"
            sample = {}
            for policy in (first, second):
                started = time.perf_counter_ns()
                result = selector.select_many(
                    forests, context=EmitContext(), collect_cover=False, on_error=policy
                )
                sample[policy] = time.perf_counter_ns() - started
                if policy == "isolate":
                    isolate_report = result.report
            pairs.append((sample["raise"], sample["isolate"]))
    finally:
        if gc_was_enabled:
            gc.enable()
    assert isolate_report is not None
    return pairs, isolate_report


def _pure_bench_action(lhs: str, pattern: str):
    """A context-free emission action for differential fault runs.

    Values depend only on the rule and node shape — never on emit-
    context state — so survivor forests of a fault-isolated batch can
    be compared for exact equality against an independent clean run
    (an :class:`EmitContext` temp counter would shift after a fault).
    """

    def action(context, node, operands):
        return (lhs, pattern, node.op.name, node.value, tuple(operands))

    return action


def _forest_node_ids(forest: Forest) -> set[int]:
    seen: set[int] = set()
    stack = list(forest.roots)
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        stack.extend(node.kids)
    return seen


def _bench_isolate_overhead(
    config: BenchConfig, grammar, cache: _EagerCache
) -> dict[str, object]:
    """Happy-path cost of ``on_error="isolate"`` vs ``"raise"``.

    Both policies run the identical warm (eager-tables) pipeline on the
    identical fault-free batch; the only difference is the isolation
    machinery's bookkeeping, which must stay under
    :data:`MAX_ISOLATE_OVERHEAD` of the warm ns/node (modulo the
    absolute epsilon).  The run **refuses to report** otherwise.
    """
    forests = random_forests(
        config.seed, config.random_forests, config.random_statements, config.random_depth
    )
    nodes = sum(forest.node_count() for forest in forests)
    selector = Selector(engine=cache.automaton(grammar))
    # Warm both policies once outside the clock.
    selector.select_many(forests, context=EmitContext(), collect_cover=False)
    selector.select_many(
        forests, context=EmitContext(), collect_cover=False, on_error="isolate"
    )

    # Repetition floor (the smoke workload is only ~100 nodes),
    # cleanest-pair gating, and doubled-repetition re-measures before
    # refusing: together these separate scheduler jitter from a real
    # regression even on a single-core machine.
    repetitions = max(config.repetitions, 15)
    for _ in range(3):
        pairs, isolate_report = _policy_pair_samples(selector, forests, repetitions)
        raise_ns = min(r for r, _ in pairs) / max(nodes, 1)
        isolate_ns = min(i for _, i in pairs) / max(nodes, 1)
        deltas = sorted(i - r for r, i in pairs)
        overhead_ns = deltas[0] / max(nodes, 1)
        median_overhead_ns = deltas[len(deltas) // 2] / max(nodes, 1)
        overhead_fraction = overhead_ns / raise_ns if raise_ns > 0 else 0.0
        over_budget = (
            overhead_fraction > MAX_ISOLATE_OVERHEAD
            and overhead_ns > ISOLATE_OVERHEAD_EPSILON_NS
        )
        if not over_budget:
            break
        repetitions *= 2

    resilience = selector.stats()["resilience"]
    if resilience["isolated_failures"] != 0 or isolate_report.failures != 0:
        raise ResilienceError(
            "benchmark aborted: fault-free isolate run reported "
            f"{resilience['isolated_failures']} isolated failures"
        )
    if over_budget:
        raise ResilienceError(
            f"benchmark aborted: on_error='isolate' happy-path overhead "
            f"{overhead_ns:.1f} ns/node ({100 * overhead_fraction:.2f}%) exceeds "
            f"{100 * MAX_ISOLATE_OVERHEAD:.0f}% of the warm pipeline "
            f"({raise_ns:.1f} ns/node) plus the {ISOLATE_OVERHEAD_EPSILON_NS:.0f} "
            f"ns/node epsilon"
        )
    return {
        "name": "isolate_overhead",
        "forests": len(forests),
        "nodes": nodes,
        "raise_ns_per_node": raise_ns,
        "isolate_ns_per_node": isolate_ns,
        "overhead_ns_per_node": overhead_ns,
        "median_overhead_ns_per_node": median_overhead_ns,
        "overhead_fraction": overhead_fraction,
        "max_overhead_fraction": MAX_ISOLATE_OVERHEAD,
        "epsilon_ns_per_node": ISOLATE_OVERHEAD_EPSILON_NS,
        "resilience": resilience,
    }


def _bench_obs_overhead(
    config: BenchConfig, grammar, cache: _EagerCache
) -> dict[str, object]:
    """Enabled-observability cost on the warm pipeline, report-only.

    Two selectors share the same warm eager automaton; one carries a
    live :class:`~repro.obs.Observability` bundle (span tracer plus
    metrics registry), the other runs with observability off (the
    null-object fast path — one attribute check per batch).  Each
    repetition times the pair back to back in alternating order, and
    the row reports the cleanest-pair delta, exactly like the isolate
    row: preemption only ever inflates a sample.

    Unlike ``isolate_overhead`` this row never aborts the run — the
    *enabled* price is informational.  The contract the suite enforces
    is the **disabled** price: the warm ``pipeline`` rows (which run
    with observability off) are gated against the baseline report by
    ``--max-obs-regression``.
    """
    forests = random_forests(
        config.seed + 8, config.random_forests, config.random_statements, config.random_depth
    )
    nodes = sum(forest.node_count() for forest in forests)
    engine = cache.automaton(grammar)
    plain = Selector(engine=engine)
    obs = Observability(trace_capacity=1 << 16)
    observed = Selector(config=SelectorConfig(observe=obs), engine=engine)
    # Warm both outside the clock.
    plain.select_many(forests, context=EmitContext(), collect_cover=False)
    observed.select_many(forests, context=EmitContext(), collect_cover=False)

    pairs: list[tuple[int, int]] = []
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for repetition in range(max(config.repetitions, 15)):
            first = "plain" if repetition % 2 == 0 else "observed"
            second = "observed" if first == "plain" else "plain"
            sample = {}
            for which in (first, second):
                selector = plain if which == "plain" else observed
                started = time.perf_counter_ns()
                selector.select_many(forests, context=EmitContext(), collect_cover=False)
                sample[which] = time.perf_counter_ns() - started
            pairs.append((sample["plain"], sample["observed"]))
    finally:
        if gc_was_enabled:
            gc.enable()

    plain_ns = min(p for p, _ in pairs) / max(nodes, 1)
    observed_ns = min(o for _, o in pairs) / max(nodes, 1)
    deltas = sorted(o - p for p, o in pairs)
    overhead_ns = deltas[0] / max(nodes, 1)
    median_overhead_ns = deltas[len(deltas) // 2] / max(nodes, 1)
    return {
        "name": "obs_overhead",
        "forests": len(forests),
        "nodes": nodes,
        "plain_ns_per_node": plain_ns,
        "observed_ns_per_node": observed_ns,
        "overhead_ns_per_node": overhead_ns,
        "median_overhead_ns_per_node": median_overhead_ns,
        "overhead_fraction": overhead_ns / plain_ns if plain_ns > 0 else 0.0,
        "spans_recorded": obs.tracer.recorded,
        "batches_observed": obs.metrics.counter("pipeline_batches_total").value,
    }


def _bench_injected_faults(config: BenchConfig) -> dict[str, object]:
    """Isolation correctness and counter exactness under injected faults.

    Every rule action of a fresh bench grammar is wrapped in a
    predicate fault that fires on nodes of exactly one forest of the
    batch.  The isolated run must contain exactly that forest, the
    resilience counters must equal the injected fault count, and every
    survivor's values must match a clean run byte for byte; any
    discrepancy aborts the benchmark.
    """
    forests = random_forests(
        config.seed + 7, config.random_forests, config.random_statements, config.random_depth
    )
    target_index = len(forests) // 2
    target_ids = _forest_node_ids(forests[target_index])

    def attach_pure_actions(grammar):
        for rule in grammar.rules:
            rule.action = _pure_bench_action(rule.lhs, str(rule.pattern))
        return grammar

    clean_values = (
        Selector(attach_pure_actions(bench_grammar()))
        .select_many(forests, collect_cover=False)
        .values
    )

    poisoned = attach_pure_actions(bench_grammar())
    injectors = [
        poison_action(
            rule, predicate=lambda context, node, operands: id(node) in target_ids
        )[0]
        for rule in poisoned.rules
    ]
    selector = Selector(poisoned)
    result = selector.select_many(forests, collect_cover=False, on_error="isolate")

    failures = result.failures
    injected = sum(fault.faults for fault in injectors)
    resilience = selector.stats()["resilience"]
    survivors_match = all(
        result.values[i] == clean_values[i]
        for i in range(len(forests))
        if i != target_index
    )
    if (
        len(failures) != 1
        or failures[0].index != target_index
        or failures[0].phase != "reduce"
        or injected != 1
        or resilience["isolated_failures"] != injected
        or not survivors_match
    ):
        raise ResilienceError(
            f"benchmark aborted: injected-fault isolation broke its contract "
            f"(failures={[f.as_row() for f in failures]}, injected={injected}, "
            f"survivors_match={survivors_match})"
        )
    return {
        "name": "injected_faults",
        "forests": len(forests),
        "nodes": sum(forest.node_count() for forest in forests),
        "faulted_forest": target_index,
        "injected_faults": injected,
        "isolated_failures": resilience["isolated_failures"],
        "failure_phase": failures[0].phase,
        "failure_node": failures[0].node,
        "survivors_match_clean_run": survivors_match,
        "resilience": resilience,
    }


def _bench_artifact_ladder(config: BenchConfig) -> dict[str, object]:
    """Walk the artifact degradation ladder end to end, timed per rung.

    Cold miss (compile + atomic save-back), warm hit (load), poisoned
    entry (quarantine + rebuild), and a blown build budget — every rung
    must hand back a working selector and count its demotions; an
    unhandled exception anywhere fails the run.
    """
    grammar = bench_grammar()
    probe = random_forests(config.seed + 9, 2, 4, 3)

    def working(selector: Selector) -> bool:
        return selector.select_many(probe, collect_cover=False).report.failures == 0

    with tempfile.TemporaryDirectory(prefix="faults-ladder-") as tmp:
        cache = ArtifactCache(tmp, base_delay=0, seed=config.seed)
        started = time.perf_counter_ns()
        cold = cache.selector_for(grammar)
        miss_ns = time.perf_counter_ns() - started

        started = time.perf_counter_ns()
        warm = cache.selector_for(grammar)
        hit_ns = time.perf_counter_ns() - started

        corrupt_bytes(cache.path_for(grammar), seed=config.seed)
        started = time.perf_counter_ns()
        rebuilt = cache.selector_for(grammar)
        quarantine_ns = time.perf_counter_ns() - started

        budgeted = Selector(grammar)
        budgeted.compile(budget=BuildBudget(max_states=1))

        stats = cache.stats()
        rebuilt_resilience = rebuilt.stats()["resilience"]
        if not (working(cold) and working(warm) and working(rebuilt) and working(budgeted)):
            raise ResilienceError(
                "benchmark aborted: a degraded selector failed on the probe batch"
            )
        if (
            stats["quarantined"] != 1
            or rebuilt_resilience["demotions"]["load_failed"] != 1
            or budgeted.stats()["resilience"]["demotions"]["build_budget"] != 1
        ):
            raise ResilienceError(
                f"benchmark aborted: degradation-ladder counters are off "
                f"(cache={stats}, rebuilt={rebuilt_resilience})"
            )
        return {
            "name": "artifact_ladder",
            "miss_compile_ns": miss_ns,
            "hit_load_ns": hit_ns,
            "quarantine_rebuild_ns": quarantine_ns,
            "hit_speedup_vs_miss": miss_ns / hit_ns if hit_ns > 0 else None,
            "budget_demoted_to_ondemand": budgeted.mode == "ondemand",
            "cache": stats,
            "resilience": rebuilt_resilience,
        }


def run_faults_bench(
    config: BenchConfig,
    grammar=None,
    cache: _EagerCache | None = None,
) -> list[dict[str, object]]:
    """The ``faults`` family: resilience overhead, isolation, ladder rows."""
    grammar = grammar if grammar is not None else bench_grammar()
    cache = cache if cache is not None else _EagerCache()
    return [
        _bench_isolate_overhead(config, grammar, cache),
        _bench_obs_overhead(config, grammar, cache),
        _bench_injected_faults(config),
        _bench_artifact_ladder(config),
    ]


def _service_status_counts(responses) -> dict[str, int]:
    counts: dict[str, int] = {}
    for response in responses:
        counts[response.status] = counts.get(response.status, 0) + 1
    return counts


def _stmt_action_rule(grammar):
    """The ``stmt: EXPR(reg)`` rule — one action call per expr statement."""
    return next(r for r in grammar.rules if r.lhs == "stmt" and r.pattern.symbol == "EXPR")


def _bench_service_sustained(
    config: BenchConfig, obs: Observability | None = None
) -> dict[str, object]:
    """Open-loop seeded arrivals over two healthy tenants, zero lost.

    Measures the serving layer's sustained throughput (requests/s) and
    the client-observed latency distribution (p50/p99, submit to
    resolve) under mixed-tenant traffic — every request must come back
    ``ok``; anything else aborts the benchmark.

    Always runs with an :class:`~repro.obs.Observability` bundle wired
    through the service (a fresh one when the caller passes none), so
    the row's ``latency_per_tenant`` percentiles come from the service's
    own ``service_request_latency_ns{tenant=...}`` histograms — the
    exact distributions a Prometheus scrape or trace dump of the same
    run would report.
    """
    tenants = {"bench": bench_grammar(), "dyn": dynamic_bench_grammar()}
    forests = {
        "bench": random_forests(config.seed + 11, 8, 6, 4),
        "dyn": dynamic_constraint_forests(config.seed + 12, 8, 6, 4),
    }
    rng = random.Random(config.seed)
    obs = obs if obs is not None else Observability(trace_capacity=1 << 16)
    service_config = ServiceConfig(workers=config.service_workers, seed=config.seed)
    with tempfile.TemporaryDirectory(prefix="service-bench-") as tmp:
        with SelectionService(tenants, tmp, service_config, obs=obs) as service:
            started = time.perf_counter_ns()
            futures = []
            for i in range(config.service_requests):
                tenant = "dyn" if rng.random() < 0.3 else "bench"
                pool = forests[tenant]
                futures.append(service.submit(tenant, pool[i % len(pool)]))
                time.sleep(rng.random() * 2 * config.service_arrival_s)
            responses = [future.result(120.0) for future in futures]
            duration_ns = time.perf_counter_ns() - started
            stats = service.stats()["service"]
    if not all(response.ok for response in responses):
        raise ResilienceError(
            f"benchmark aborted: sustained service traffic lost requests "
            f"({_service_status_counts(responses)})"
        )
    latencies = [response.latency_ns for response in responses]
    latency_per_tenant: dict[str, dict[str, object]] = {}
    for tenant in sorted(tenants):
        histogram = obs.metrics.histograms.get(
            metric_key("service_request_latency_ns", {"tenant": tenant})
        )
        if histogram is None or histogram.count == 0:
            continue
        latency_per_tenant[tenant] = {
            "requests": histogram.count,
            "latency_p50_ns": histogram.quantile(0.50),
            "latency_p99_ns": histogram.quantile(0.99),
        }
    return {
        "name": "sustained_traffic",
        "requests": len(responses),
        "workers": config.service_workers,
        "tenants": sorted(tenants),
        "duration_ns": duration_ns,
        "requests_per_s": len(responses) / (duration_ns / 1e9),
        "latency_p50_ns": percentile(latencies, 50),
        "latency_p99_ns": percentile(latencies, 99),
        "latency_per_tenant": latency_per_tenant,
        "statuses": _service_status_counts(responses),
        "lost": sum(1 for f in futures if not f.done()),
        "batches": stats["batches"],
        "queue_depth_high_water": stats["queue_depth_high_water"],
    }


def _bench_service_chaos(config: BenchConfig) -> dict[str, object]:
    """The chaos variant: a worker SIGKILLed mid-run, one poisoned and
    one slow tenant — zero lost requests, all failures typed.

    The poisoned tenant faults twice per worker then heals, so the
    per-tenant breaker must open, fast-fail, half-open probe, and close
    again; the killed worker's in-flight batch must be transparently
    re-dispatched.  Any silently dropped request aborts the benchmark.
    """
    healthy = bench_grammar()
    poisoned = bench_grammar()
    # Two faults per worker process, then healed: enough to open a
    # threshold-2 breaker and let half-open probes find health again.
    poison_action(_stmt_action_rule(poisoned), on_call=1, sticky=True, max_faults=2)
    slow = bench_grammar()
    poison_action(_stmt_action_rule(slow), latency_s=0.01)
    tenants = {"bench": healthy, "poison": poisoned, "slow": slow}
    forests = random_forests(config.seed + 13, 8, 6, 4)
    rng = random.Random(config.seed + 1)
    service_config = ServiceConfig(
        workers=config.service_workers,
        seed=config.seed,
        retries=0,
        breaker_threshold=2,
        breaker_cooldown_s=0.15,
        restart_backoff_base_s=0.01,
        restart_backoff_max_s=0.05,
    )
    kill_at = max(2, config.service_requests // 3)
    with tempfile.TemporaryDirectory(prefix="service-chaos-") as tmp:
        with SelectionService(tenants, tmp, service_config) as service:
            # Phase 1 — open-loop mixed healthy/slow traffic with a
            # worker SIGKILLed mid-run: in-flight batches re-dispatch.
            futures = []
            killed_pid = 0
            for i in range(config.service_requests):
                tenant = "slow" if i % 3 == 0 else "bench"
                futures.append(service.submit(tenant, forests[i % len(forests)]))
                if i == kill_at:
                    victim = next(
                        (h for h in service.supervisor.handles if h.alive and h.in_flight),
                        None,
                    ) or next(h for h in service.supervisor.handles if h.alive)
                    service.supervisor.kill_worker(victim)
                    killed_pid = victim.pid
                time.sleep(rng.random() * 2 * config.service_arrival_s)
            responses = [future.result(120.0) for future in futures]

            # Phase 2 — serialized poisoned-tenant traffic drives the
            # breaker through its full cycle: consecutive failures open
            # it, an immediate request fast-fails, and after the
            # cooldown half-open probes find the healed tenant and
            # close it again (a failed probe just reopens and retries).
            poison_responses = []
            while True:
                response = service.select("poison", forests[0], wait_s=60.0)
                poison_responses.append(response)
                if response.status == "circuit_open":
                    break
                if len(poison_responses) > 4 * config.service_workers + 2:
                    break
            recovery = None
            for _ in range(4 * config.service_workers):
                time.sleep(service_config.breaker_cooldown_s + 0.05)
                recovery = service.select("poison", forests[0], wait_s=60.0)
                poison_responses.append(recovery)
                if recovery.ok:
                    break
            stats = service.stats()["service"]
    statuses = _service_status_counts(responses)
    poison_statuses = _service_status_counts(poison_responses)
    untyped = [
        r
        for r in responses + poison_responses
        if not r.ok and not isinstance(r.error, (SelectionFailure, Exception))
    ]
    lost = sum(1 for f in futures if not f.done())
    breaker_states = [(frm, to) for _, frm, to in stats["breaker_transitions"]]
    if (
        lost
        or untyped
        or not all(r.ok for r in responses)
        or recovery is None
        or not recovery.ok
        or poison_statuses.get("circuit_open", 0) < 1
        or stats["supervisor"]["restarts_total"] < 1
        or ("closed", "open") not in breaker_states
        or ("open", "half_open") not in breaker_states
        or ("half_open", "closed") not in breaker_states
    ):
        raise ResilienceError(
            f"benchmark aborted: chaos service run broke its contract "
            f"(lost={lost}, untyped={len(untyped)}, statuses={statuses}, "
            f"poison={poison_statuses}, breaker={breaker_states}, "
            f"supervisor={stats['supervisor']})"
        )
    return {
        "name": "chaos_soak",
        "requests": len(responses) + len(poison_responses),
        "workers": config.service_workers,
        "tenants": sorted(tenants),
        "killed_worker_pid": killed_pid,
        "statuses": statuses,
        "poison_statuses": poison_statuses,
        "lost": lost,
        "typed_failures": sum(1 for r in poison_responses if not r.ok),
        "re_dispatches": stats["re_dispatches"],
        "breaker_fastfail": stats["breaker_fastfail"],
        "breaker_transitions": [list(t) for t in stats["breaker_transitions"]],
        "breaker_recovered": recovery.ok,
        "restarts_total": stats["supervisor"]["restarts_total"],
        "kills_total": stats["supervisor"]["kills_total"],
    }


def _bench_service_overload(config: BenchConfig) -> dict[str, object]:
    """A burst into a tiny admission queue: bounded latency via shedding.

    Every request resolves — served ``ok`` or shed with a typed
    :class:`~repro.errors.OverloadError` — and at least one of each
    outcome must occur for the row to be meaningful.
    """
    slow = bench_grammar()
    poison_action(_stmt_action_rule(slow), latency_s=0.01)
    service_config = ServiceConfig(
        workers=1, seed=config.seed, queue_limit=4, max_batch=2, retries=0
    )
    forests = random_forests(config.seed + 14, 4, 6, 4)
    with tempfile.TemporaryDirectory(prefix="service-overload-") as tmp:
        with SelectionService({"slow": slow}, tmp, service_config) as service:
            futures = [
                service.submit("slow", forests[i % len(forests)])
                for i in range(config.service_burst)
            ]
            responses = [future.result(120.0) for future in futures]
            stats = service.stats()["service"]
    statuses = _service_status_counts(responses)
    if statuses.get("ok", 0) < 1 or statuses.get("shed", 0) < 1 or stats["outstanding"]:
        raise ResilienceError(
            f"benchmark aborted: overload burst did not both serve and shed "
            f"({statuses}, outstanding={stats['outstanding']})"
        )
    return {
        "name": "overload_shedding",
        "burst": config.service_burst,
        "queue_limit": service_config.queue_limit,
        "statuses": statuses,
        "served": statuses.get("ok", 0),
        "shed": statuses.get("shed", 0),
        "queue_depth_high_water": stats["queue_depth_high_water"],
    }


def run_service_bench(
    config: BenchConfig | None = None,
    obs: Observability | None = None,
) -> list[dict[str, object]]:
    """The ``service`` family: sustained traffic, chaos soak, overload.

    *obs* (optional) is wired through the sustained-traffic run so the
    caller can export the run's Prometheus metrics and request trace
    afterwards; chaos and overload stay observability-free — their
    injected faults would pollute the exported distributions.
    """
    config = config if config is not None else BenchConfig()
    return [
        _bench_service_sustained(config, obs),
        _bench_service_chaos(config),
        _bench_service_overload(config),
    ]


def run_selection_bench(
    config: BenchConfig | None = None,
    selector_artifact: "str | Path | None" = None,
    service_obs: Observability | None = None,
) -> dict[str, object]:
    """Run every workload family and return the full report dict.

    *selector_artifact* optionally names a CLI-compiled selector
    artifact; when its fingerprint matches the bench grammar, the
    ``selector_aot`` rows load from it instead of a temporary save.
    *service_obs* optionally carries an :class:`~repro.obs.Observability`
    bundle through the sustained service benchmark for post-run export.
    """
    config = config if config is not None else BenchConfig()
    grammar = bench_grammar()
    dyn_grammar = dynamic_bench_grammar()
    emit_grammar = emit_bench_grammar()

    # One eager build per grammar for the entire run: the AOT selector's
    # measured compile doubles as the labeling/pipeline sections' eager
    # automaton.
    cache = _EagerCache()
    aot_selector = Selector(grammar)
    aot_selector.compile()
    cache.adopt(grammar, aot_selector.engine)

    workloads = [
        (
            "random_trees",
            random_forests(
                config.seed, config.random_forests, config.random_statements, config.random_depth
            ),
            grammar,
        ),
        (
            "dag_heavy",
            dag_heavy_forests(
                config.seed + 1,
                config.dag_forests,
                config.dag_statements,
                config.dag_shared,
                config.dag_depth,
            ),
            grammar,
        ),
        (
            "recurring_stream",
            recurring_shape_stream(
                config.seed + 2,
                config.stream_shapes,
                config.stream_length,
                config.stream_statements,
                config.stream_depth,
            ),
            grammar,
        ),
        (
            "dynamic_constraints",
            dynamic_constraint_forests(
                config.seed + 3, config.dyn_forests, config.dyn_statements, config.dyn_depth
            ),
            dyn_grammar,
        ),
    ]
    return {
        "benchmark": "selection-labeling",
        "meta": {
            "python": sys.version.split()[0],
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "grammar": grammar.stats().as_row(),
            "dynamic_grammar": dyn_grammar.stats().as_row(),
            "config": asdict(config),
        },
        "workloads": [
            bench_workload(name, forests, wl_grammar, config, cache.automaton(wl_grammar))
            for name, forests, wl_grammar in workloads
        ],
        "pipeline": run_pipeline_bench(config, (grammar, emit_grammar, dyn_grammar), cache),
        "selector_aot": run_selector_aot_bench(
            config, selector_artifact, grammar, aot_selector
        ),
        "sweep": run_grammar_sweep(config),
        "faults": run_faults_bench(config, grammar, cache),
        "service": run_service_bench(config, service_obs),
    }


def write_report(report: dict[str, object], path: str | Path = "BENCH_selection.json") -> Path:
    """Write *report* as pretty-printed JSON; returns the path written."""
    target = Path(path)
    target.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
    return target
