"""Benchmark subsystem: workload generators, runner, JSON reporting.

Measures the paper's headline trade-off — dynamic-programming labeling
versus cold, warm, and eagerly precomputed automaton labeling — on four
workload families (random tree forests, DAG-heavy forests, JIT-style
recurring-shape streams, dynamic-constraint forests), plus a
grammar-size sweep charting on-demand versus eager table growth, and
writes the trajectory to ``BENCH_selection.json``.

Run it with ``python -m repro.bench`` (see ``--help`` for sizes/seed,
and ``--baseline`` for the warm-path regression gate CI uses).
"""

from repro.bench.runner import (
    BenchConfig,
    run_grammar_sweep,
    run_selection_bench,
    write_report,
)
from repro.bench.workloads import (
    BENCH_GRAMMAR_TEXT,
    bench_grammar,
    clone_forest,
    dag_heavy_forest,
    dag_heavy_forests,
    dynamic_bench_grammar,
    dynamic_constraint_forests,
    random_forests,
    random_tree_forest,
    recurring_shape_stream,
    synthetic_forests,
    synthetic_grammar,
)

__all__ = [
    "BENCH_GRAMMAR_TEXT",
    "BenchConfig",
    "bench_grammar",
    "clone_forest",
    "dag_heavy_forest",
    "dag_heavy_forests",
    "dynamic_bench_grammar",
    "dynamic_constraint_forests",
    "random_forests",
    "random_tree_forest",
    "recurring_shape_stream",
    "run_grammar_sweep",
    "run_selection_bench",
    "synthetic_forests",
    "synthetic_grammar",
    "write_report",
]
