"""Benchmark subsystem: workload generators, runner, JSON reporting.

Measures the paper's headline trade-off — dynamic-programming labeling
versus cold, warm, and eagerly precomputed automaton labeling — on four
workload families (random tree forests, DAG-heavy forests, JIT-style
recurring-shape streams, dynamic-constraint forests), the end-to-end
selection *pipeline* (label + reduce + emit via ``select_many``) on
four workloads including two reduce-focused families, the
ahead-of-time selector path (``selector_aot``: compile/save/load cold
start from disk versus in-process eager or on-demand builds, with
selector build/save/load nanoseconds recorded), plus a grammar-size
sweep charting on-demand versus eager table growth, and writes the
trajectory to ``BENCH_selection.json``.

Run it with ``python -m repro.bench`` (see ``--help`` for sizes/seed,
and ``--baseline`` for the warm-path regression gate CI uses).
"""

from repro.bench.runner import (
    BenchConfig,
    bench_pipeline_workload,
    bench_selector_aot_workload,
    run_grammar_sweep,
    run_pipeline_bench,
    run_selection_bench,
    run_selector_aot_bench,
    run_service_bench,
    write_report,
)
from repro.bench.workloads import (
    BENCH_GRAMMAR_TEXT,
    EmitContext,
    bench_grammar,
    clone_forest,
    dag_heavy_forest,
    dag_heavy_forests,
    dynamic_bench_grammar,
    dynamic_constraint_forests,
    emit_bench_grammar,
    random_forests,
    random_tree_forest,
    recurring_shape_stream,
    reduce_heavy_forests,
    shared_reduction_forests,
    synthetic_forests,
    synthetic_grammar,
)

__all__ = [
    "BENCH_GRAMMAR_TEXT",
    "BenchConfig",
    "EmitContext",
    "bench_grammar",
    "bench_pipeline_workload",
    "bench_selector_aot_workload",
    "clone_forest",
    "dag_heavy_forest",
    "dag_heavy_forests",
    "dynamic_bench_grammar",
    "dynamic_constraint_forests",
    "emit_bench_grammar",
    "random_forests",
    "random_tree_forest",
    "recurring_shape_stream",
    "reduce_heavy_forests",
    "run_grammar_sweep",
    "run_pipeline_bench",
    "run_selection_bench",
    "run_selector_aot_bench",
    "run_service_bench",
    "shared_reduction_forests",
    "synthetic_forests",
    "synthetic_grammar",
    "write_report",
]
