"""Benchmark subsystem: workload generators, runner, JSON reporting.

Measures the paper's headline trade-off — dynamic-programming labeling
versus cold and warm on-demand automaton labeling — on three workload
families (random tree forests, DAG-heavy forests, JIT-style recurring-
shape streams) and writes the trajectory to ``BENCH_selection.json``.

Run it with ``python -m repro.bench`` (see ``--help`` for sizes/seed).
"""

from repro.bench.runner import BenchConfig, run_selection_bench, write_report
from repro.bench.workloads import (
    BENCH_GRAMMAR_TEXT,
    bench_grammar,
    clone_forest,
    dag_heavy_forest,
    dag_heavy_forests,
    random_forests,
    random_tree_forest,
    recurring_shape_stream,
)

__all__ = [
    "BENCH_GRAMMAR_TEXT",
    "BenchConfig",
    "bench_grammar",
    "clone_forest",
    "dag_heavy_forest",
    "dag_heavy_forests",
    "random_forests",
    "random_tree_forest",
    "recurring_shape_stream",
    "run_selection_bench",
    "write_report",
]
