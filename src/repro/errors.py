"""Exception hierarchy shared by all repro subsystems."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class IRError(ReproError):
    """Malformed intermediate representation (bad arity, cycles, ...)."""


class GrammarError(ReproError):
    """Malformed tree grammar or grammar-text parse error."""


class CoverError(ReproError):
    """No derivation of the requested nonterminal exists for a tree."""


class SelectorError(ReproError):
    """Selector facade error (bad mode, unusable or mismatched AOT artifact)."""


class AnalysisError(ReproError):
    """Static-analysis error (unanalyzable grammar, failed differential check)."""


class MachineError(ReproError):
    """Target-machine simulation error (unknown instruction, bad operand, ...)."""


class FrontendError(ReproError):
    """Mini-C front-end error (lex, parse, or semantic)."""


class VMError(ReproError):
    """Bytecode VM error (bad opcode, stack underflow, ...)."""
