"""Exception hierarchy shared by all repro subsystems."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class IRError(ReproError):
    """Malformed intermediate representation (bad arity, cycles, ...)."""


class GrammarError(ReproError):
    """Malformed tree grammar or grammar-text parse error."""


class CoverError(ReproError):
    """No derivation of the requested nonterminal exists for a tree."""


class SelectorError(ReproError):
    """Selector facade error (bad mode, unusable or mismatched AOT artifact)."""


class ArtifactError(SelectorError):
    """Base class for AOT-artifact problems (see the concrete subclasses).

    All artifact failures remain :class:`SelectorError`\\ s, so existing
    ``except SelectorError`` callers are unaffected; the subclasses let
    resilience code tell *transient* failures (retry) from *persistent*
    ones (quarantine and rebuild).
    """


class ArtifactIOError(ArtifactError):
    """Artifact could not be read or written (OS-level failure).

    Possibly transient — a concurrent writer, a flaky filesystem — so
    the degradation ladder retries these with backoff before demoting
    to an in-process compile.
    """


class ArtifactCorruptError(ArtifactError):
    """Artifact bytes are structurally bad (magic, truncation, checksum).

    Never transient: re-reading returns the same bytes, so the artifact
    cache quarantines the file and rebuilds instead of retrying.
    """


class ArtifactStaleError(ArtifactError):
    """Artifact is well-formed but compiled for a different grammar.

    The fingerprint does not match the grammar supplied to ``load`` —
    rebuild (and overwrite) rather than retry.
    """


class ResilienceError(ReproError):
    """Resilience-layer error (retry budget exhausted, bad policy value)."""


class DeadlineExceededError(ResilienceError):
    """A request's deadline budget expired mid-selection.

    Raised by the cooperative cancellation checks threaded through the
    label and reduce hot loops when a :class:`~repro.service.budgets.
    RequestBudget` deadline passes.  Deliberately *not* absorbed by
    ``on_error="isolate"``: the deadline covers the whole batch, so the
    overrun must propagate to the caller (the service front door) which
    owns per-request accounting.
    """


class ServiceError(ReproError):
    """Selection-service error (supervisor, front door, worker protocol)."""


class CircuitOpenError(ServiceError):
    """Fast-fail: the tenant's circuit breaker is open.

    Returned (not raised) to callers of the service front door while a
    tenant accumulates consecutive failures; half-open probes close the
    breaker again once the tenant recovers.
    """


class OverloadError(ServiceError):
    """Load shed: the service admission queue is full.

    Bounded queues convert overload into an immediate typed rejection
    instead of unbounded latency; callers may retry later.
    """


class RequestLostError(ServiceError):
    """A request was abandoned after exhausting its re-dispatch budget.

    Only produced for "poison pill" requests that repeatedly crash the
    worker assigned to them; ordinary worker deaths re-dispatch
    transparently.
    """


class AnalysisError(ReproError):
    """Static-analysis error (unanalyzable grammar, failed differential check)."""


class MachineError(ReproError):
    """Target-machine simulation error (unknown instruction, bad operand, ...)."""


class FrontendError(ReproError):
    """Mini-C front-end error (lex, parse, or semantic)."""


class VMError(ReproError):
    """Bytecode VM error (bad opcode, stack underflow, ...)."""
