"""Exception hierarchy shared by all repro subsystems."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class IRError(ReproError):
    """Malformed intermediate representation (bad arity, cycles, ...)."""


class GrammarError(ReproError):
    """Malformed tree grammar or grammar-text parse error."""


class CoverError(ReproError):
    """No derivation of the requested nonterminal exists for a tree."""


class SelectorError(ReproError):
    """Selector facade error (bad mode, unusable or mismatched AOT artifact)."""


class ArtifactError(SelectorError):
    """Base class for AOT-artifact problems (see the concrete subclasses).

    All artifact failures remain :class:`SelectorError`\\ s, so existing
    ``except SelectorError`` callers are unaffected; the subclasses let
    resilience code tell *transient* failures (retry) from *persistent*
    ones (quarantine and rebuild).
    """


class ArtifactIOError(ArtifactError):
    """Artifact could not be read or written (OS-level failure).

    Possibly transient — a concurrent writer, a flaky filesystem — so
    the degradation ladder retries these with backoff before demoting
    to an in-process compile.
    """


class ArtifactCorruptError(ArtifactError):
    """Artifact bytes are structurally bad (magic, truncation, checksum).

    Never transient: re-reading returns the same bytes, so the artifact
    cache quarantines the file and rebuilds instead of retrying.
    """


class ArtifactStaleError(ArtifactError):
    """Artifact is well-formed but compiled for a different grammar.

    The fingerprint does not match the grammar supplied to ``load`` —
    rebuild (and overwrite) rather than retry.
    """


class ResilienceError(ReproError):
    """Resilience-layer error (retry budget exhausted, bad policy value)."""


class AnalysisError(ReproError):
    """Static-analysis error (unanalyzable grammar, failed differential check)."""


class MachineError(ReproError):
    """Target-machine simulation error (unknown instruction, bad operand, ...)."""


class FrontendError(ReproError):
    """Mini-C front-end error (lex, parse, or semantic)."""


class VMError(ReproError):
    """Bytecode VM error (bad opcode, stack underflow, ...)."""
