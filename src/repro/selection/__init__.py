"""Instruction selection: labelers, covers, the reducer, the pipeline.

Three labeler architectures share the :class:`Labeling` interface (see
:mod:`repro.selection.cover`): the dynamic-programming baseline
(:mod:`repro.selection.label_dp`), the on-demand tree-parsing automaton
(:mod:`repro.selection.automaton` over :mod:`repro.selection.states`),
and the offline (eager) mode of the same automaton —
:meth:`OnDemandAutomaton.build_eager` precomputes every reachable
transition at build time, so labeling never constructs a state.  All
labelers run a fused single-pass walk (traversal and labeling in one
stack loop) and offer batched ``label_many`` entry points that share
one node-state map across a sequence of forests.  The :class:`Reducer`
— an iterative explicit-stack engine, so deep trees and long
chain-rule sequences cannot overflow the interpreter stack — and
:func:`extract_cover` consume any labeling unchanged, and
:func:`select` / :func:`select_many`
(:mod:`repro.selection.pipeline`) fuse labeling and reduction into one
measured end-to-end selection call.
"""

from repro.selection.automaton import AutomatonLabeling, OnDemandAutomaton, label_ondemand
from repro.selection.cover import Cover, CoverEntry, Labeling, extract_cover
from repro.selection.label_dp import DPLabeler, DPLabeling, label_dp, match_pattern
from repro.selection.pipeline import (
    LABELER_NAMES,
    SelectionReport,
    SelectionResult,
    make_labeler,
    select,
    select_many,
)
from repro.selection.reducer import Reducer, flatten_operands
from repro.selection.states import State, StatePool, state_signature

__all__ = [
    "AutomatonLabeling",
    "Cover",
    "CoverEntry",
    "DPLabeler",
    "DPLabeling",
    "LABELER_NAMES",
    "Labeling",
    "OnDemandAutomaton",
    "Reducer",
    "SelectionReport",
    "SelectionResult",
    "State",
    "StatePool",
    "extract_cover",
    "flatten_operands",
    "label_dp",
    "label_ondemand",
    "make_labeler",
    "match_pattern",
    "select",
    "select_many",
    "state_signature",
]
