"""Instruction selection: labelers, covers, and the reducer.

Three labeler architectures share the :class:`Labeling` interface (see
:mod:`repro.selection.cover`): the dynamic-programming baseline
(:mod:`repro.selection.label_dp`), the on-demand tree-parsing automaton
(:mod:`repro.selection.automaton` over :mod:`repro.selection.states`),
and — future work — an offline automaton precomputing the same tables
eagerly.  The :class:`Reducer` and :func:`extract_cover` consume any of
them unchanged.
"""

from repro.selection.automaton import AutomatonLabeling, OnDemandAutomaton, label_ondemand
from repro.selection.cover import Cover, CoverEntry, Labeling, extract_cover
from repro.selection.label_dp import DPLabeler, DPLabeling, label_dp, match_pattern
from repro.selection.reducer import Reducer, flatten_operands
from repro.selection.states import State, StatePool, state_signature

__all__ = [
    "AutomatonLabeling",
    "Cover",
    "CoverEntry",
    "DPLabeler",
    "DPLabeling",
    "Labeling",
    "OnDemandAutomaton",
    "Reducer",
    "State",
    "StatePool",
    "extract_cover",
    "flatten_operands",
    "label_dp",
    "label_ondemand",
    "match_pattern",
    "state_signature",
]
