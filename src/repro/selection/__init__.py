"""Instruction selection: the :class:`Selector` facade and its engines.

The public API is :class:`Selector` (:mod:`repro.selection.selector`):
one object owning the grammar → tables → selection lifecycle.
``Selector(grammar, mode="dp" | "ondemand" | "eager")`` picks one of the
three labeling architectures behind the shared :class:`Labeling`
interface — the dynamic-programming baseline
(:mod:`repro.selection.label_dp`), the paper's on-demand tree-parsing
automaton (:mod:`repro.selection.automaton` over
:mod:`repro.selection.states`), or the offline (eager) mode of the same
automaton — and exposes ``label``/``label_many``,
``select``/``select_many`` (fused label + reduce + emit with a
:class:`SelectionReport`), a unified ``stats()``, and the
ahead-of-time path: ``compile()`` precomputes every reachable
transition, ``save(path)`` serializes the id spaces and per-operator
transition tables into dense integer matrices keyed by a grammar
fingerprint, and ``Selector.load(path, grammar)`` restores them so
labeling starts with zero table misses.  ``python -m
repro.selection.selector compile <grammar> <out>`` does the same from
the command line.

All labelers run a fused single-pass walk and offer batched
``label_many`` entry points sharing one node-state map across forests.
Emission runs through one of two engines behind the same interface:
the :class:`TapeEmitter` (default) lowers each forest's cover to a flat
postorder instruction tape and sweeps it — with a selector-owned shape
cache so recurring forests replay their tape instead of recompiling —
while the frame-stack :class:`Reducer` (``SelectorConfig(emitter=
"reducer")``) remains the differential oracle.  Both are iterative
explicit-stack engines, so deep trees and long chain-rule sequences
cannot overflow the interpreter stack, and both (like
:func:`extract_cover`) consume any labeling unchanged.  The
functional wrappers (:func:`select`, :func:`select_many`,
:func:`make_labeler`, :func:`label_dp`, :func:`label_ondemand`) remain
as thin delegations to ``Selector``; string specs in ``make_labeler``
are deprecated in favour of ``Selector(grammar, mode=...)``.
"""

from repro.selection.automaton import AutomatonLabeling, OnDemandAutomaton, label_ondemand
from repro.selection.cover import Cover, CoverEntry, Labeling, extract_cover
from repro.selection.label_dp import DPLabeler, DPLabeling, label_dp, match_pattern
from repro.selection.pipeline import (
    LABELER_NAMES,
    make_labeler,
    select,
    select_many,
)
from repro.selection.reducer import Reducer, flatten_operands, node_memo_key
from repro.selection.resilience import (
    ArtifactCache,
    BuildBudget,
    SelectionFailure,
)
from repro.selection.selector import (
    EMITTERS,
    MODES,
    ON_ERROR_POLICIES,
    PackedTables,
    SelectionReport,
    SelectionResult,
    Selector,
    SelectorConfig,
    grammar_fingerprint,
)
from repro.selection.states import State, StatePool, state_signature
from repro.selection.tape import CompiledTape, TapeCache, TapeEmitter

__all__ = [
    "ArtifactCache",
    "AutomatonLabeling",
    "BuildBudget",
    "CompiledTape",
    "Cover",
    "CoverEntry",
    "DPLabeler",
    "DPLabeling",
    "EMITTERS",
    "LABELER_NAMES",
    "Labeling",
    "MODES",
    "ON_ERROR_POLICIES",
    "OnDemandAutomaton",
    "PackedTables",
    "Reducer",
    "SelectionFailure",
    "SelectionReport",
    "SelectionResult",
    "Selector",
    "SelectorConfig",
    "State",
    "StatePool",
    "TapeCache",
    "TapeEmitter",
    "extract_cover",
    "flatten_operands",
    "grammar_fingerprint",
    "label_dp",
    "label_ondemand",
    "make_labeler",
    "match_pattern",
    "node_memo_key",
    "select",
    "select_many",
    "state_signature",
]
