"""The reducer: walks a labeling top-down and runs emit actions.

The reducer is shared by all three labelers.  Starting from the start
nonterminal at each forest root, it looks up the optimal rule for the
current (node, nonterminal) combination, recurses into the rule
pattern's nonterminal leaves, and then runs the rule's emit action
bottom-up.  For DAG inputs each (node, nonterminal) combination is
reduced once and its semantic value reused — the standard extension of
tree parsing to DAGs.

Semantic values
---------------
Every reduction of a (node, nonterminal) pair produces a *semantic
value* that the parent rule's action receives as an operand:

* a rule with an ``action`` returns whatever the action returns;
* a rule with a ``template`` (the bundled targets) is handled by the
  emit context's ``emit_template`` method;
* a rule with neither passes its operands through: the single operand
  for chain rules, otherwise the flattened operand list.  Helper rules
  introduced by normalisation therefore transparently forward the
  operands of multi-node patterns to the user-written rule's action.
"""

from __future__ import annotations

from typing import Any

from repro.errors import CoverError
from repro.grammar.rule import Rule
from repro.ir.node import Forest, Node
from repro.selection.cover import Labeling, require_structural_match

__all__ = ["Reducer", "flatten_operands"]

#: Memo-miss sentinel (``None`` is a legitimate semantic value).
_MISSING = object()


class _SplicedOperands(list):
    """Semantic value of a normalisation helper rule.

    Helper rules forward the operands of a multi-node pattern's inner
    nodes; wrapping them in this marker lets the parent's operand
    collection splice them flat, so the user-written rule's action sees
    the same operand list whether the reducer runs over the original or
    the normalized grammar.
    """


def flatten_operands(operands: list[Any]) -> Any:
    """Pass-through value for rules without actions.

    A single operand passes through unchanged; several operands are
    flattened into one list so nested helper rules do not nest lists.
    """
    flat: list[Any] = []
    for operand in operands:
        if isinstance(operand, list):
            flat.extend(operand)
        else:
            flat.append(operand)
    if len(flat) == 1:
        return flat[0]
    return flat


class Reducer:
    """Reduces a labeled forest, executing emit actions.

    Args:
        labeling: The labeling produced by one of the labelers.
        context: The emit context handed to rule actions (for the
            bundled targets this is an :class:`repro.machine.emitter.Emitter`).
    """

    def __init__(self, labeling: Labeling, context: Any = None) -> None:
        self.labeling = labeling
        self.context = context
        self._memo: dict[tuple[int, str], Any] = {}
        self.reductions = 0

    # ------------------------------------------------------------------

    def reduce_forest(self, forest: Forest, start: str | None = None) -> list[Any]:
        """Reduce every root of *forest* from the start nonterminal."""
        start_nt = start or self.labeling.grammar.start
        if start_nt is None:
            raise CoverError("grammar has no start nonterminal")
        return [self.reduce(root, start_nt) for root in forest.roots]

    def reduce(self, node: Node, nonterminal: str) -> Any:
        """Reduce *node* from *nonterminal* and return its semantic value."""
        key = (id(node), nonterminal)
        memoized = self._memo.get(key, _MISSING)
        if memoized is not _MISSING:
            return memoized
        rule = self.labeling.require_rule(node, nonterminal)
        value = self._apply(rule, node)
        self._memo[key] = value
        self.reductions += 1
        return value

    # ------------------------------------------------------------------

    def _apply(self, rule: Rule, node: Node) -> Any:
        if rule.is_chain:
            value = self.reduce(node, rule.pattern.symbol)
            operands = list(value) if isinstance(value, _SplicedOperands) else [value]
        else:
            operands = []
            self._collect_operands(rule.pattern, node, operands)
        return self._run_action(rule, node, operands)

    def _collect_operands(self, pattern, node: Node, operands: list[Any]) -> None:
        require_structural_match(pattern, node)
        for kid_pattern, kid_node in zip(pattern.kids, node.kids):
            if kid_pattern.is_nonterminal:
                value = self.reduce(kid_node, kid_pattern.symbol)
                if isinstance(value, _SplicedOperands):
                    operands.extend(value)
                else:
                    operands.append(value)
            else:
                self._collect_operands(kid_pattern, kid_node, operands)

    def _run_action(self, rule: Rule, node: Node, operands: list[Any]) -> Any:
        if rule.action is not None:
            return rule.action(self.context, node, operands)
        if rule.template is not None and self.context is not None:
            emit_template = getattr(self.context, "emit_template", None)
            if emit_template is not None:
                return emit_template(rule, node, operands)
        if rule.is_helper:
            return _SplicedOperands(operands)
        return flatten_operands(operands)
