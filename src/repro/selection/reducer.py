"""The reducer: walks a labeling top-down and runs emit actions.

The reducer is shared by all labelers.  Starting from the start
nonterminal at each forest root, it looks up the optimal rule for the
current (node, nonterminal) combination, reduces the rule pattern's
nonterminal leaves, and then runs the rule's emit action bottom-up.
For DAG inputs each (node, nonterminal) combination is reduced once and
its semantic value reused — the standard extension of tree parsing to
DAGs.

The engine is *iterative*: reduction runs on an explicit frame stack,
so arbitrarily deep trees and arbitrarily long chain-rule sequences
cannot overflow the interpreter stack (mirroring the labelers' fused
stack walks).  The warm path matches the labeling core's
integer-indexed style: the memo is keyed by ``(node-key,
nonterminal-id)`` — the node key is the builder-assigned ``node.nid``
(process-unique, never recycled; see :func:`node_memo_key`), falling
back to address identity for hand-built ``nid=-1`` nodes —
with nonterminals interned to dense ids on first use,
and operand collection is *plan-compiled* per rule — normal-form base
rules resolve their pattern's nonterminal leaves to child positions
once and then collect operands with arity-specialized code, paying the
generic pattern walk only for multi-node rules.

Semantic values
---------------
Every reduction of a (node, nonterminal) pair produces a *semantic
value* that the parent rule's action receives as an operand:

* a rule with an ``action`` returns whatever the action returns;
* a rule with a ``template`` (the bundled targets) is handled by the
  emit context's ``emit_template`` method;
* a rule with neither passes its operands through: the single operand
  for chain rules, otherwise the flattened operand list.  Helper rules
  introduced by normalisation therefore transparently forward the
  operands of multi-node patterns to the user-written rule's action.

Metrics
-------
The reducer keeps two well-defined counters:

* :attr:`Reducer.reductions` — the number of distinct (node,
  nonterminal) pairs reduced, i.e. rule applications (each pair applies
  exactly one rule and stores exactly one memo entry);
* :attr:`Reducer.memo_hits` — the number of reduction requests answered
  from the memo without applying a rule (DAG sharing, repeated chain
  targets, and repeated ``reduce``/``reduce_forest`` calls).
"""

from __future__ import annotations

from itertools import islice
from typing import Any

from repro.errors import CoverError
from repro.grammar.rule import Rule
from repro.ir.node import Forest, Node
from repro.selection.cover import Labeling, require_structural_match
from repro.selection.resilience import (
    DEADLINE_CHECK_EVERY,
    attach_node_provenance,
    check_deadline,
)

__all__ = ["Reducer", "flatten_operands", "node_memo_key"]

#: Memo-miss sentinel (``None`` is a legitimate semantic value).
_MISSING = object()


def node_memo_key(node: Node) -> int:
    """The identity key reduction memos use for *node*.

    Builder-assigned nids are process-unique and never recycled, so they
    are the safe key: ``id()`` values can be re-used after a forest is
    garbage-collected mid-batch, silently aliasing a stale memo entry
    onto a fresh node at the same address.  Hand-built nodes
    (``nid == -1``) fall back to ``~id(node)`` — the complement keeps
    the fallback range (negative) disjoint from real nids (>= 0), with
    the documented caveat that address identity is only sound while the
    caller keeps the forest alive.
    """
    nid = node.nid
    return nid if nid >= 0 else ~id(node)

#: Plan kinds (see :meth:`Reducer._plan_for`).
_CHAIN, _BASE, _PATTERN = 0, 1, 2

#: Frame slots of the explicit reduction stack.
_F_KEY, _F_NODE, _F_RULE, _F_OPERANDS, _F_TARGETS, _F_INDEX = range(6)


class _SplicedOperands(list):
    """Semantic value of a normalisation helper rule.

    Helper rules forward the operands of a multi-node pattern's inner
    nodes; wrapping them in this marker lets the parent's operand
    collection splice them flat, so the user-written rule's action sees
    the same operand list whether the reducer runs over the original or
    the normalized grammar.
    """


def flatten_operands(operands: list[Any]) -> Any:
    """Pass-through value for rules without actions.

    A single operand passes through unchanged; several operands are
    flattened into one list so nested helper rules do not nest lists.
    """
    flat: list[Any] = []
    for operand in operands:
        if isinstance(operand, list):
            flat.extend(operand)
        else:
            flat.append(operand)
    if len(flat) == 1:
        return flat[0]
    return flat


class Reducer:
    """Reduces a labeled forest, executing emit actions.

    Args:
        labeling: The labeling produced by one of the labelers.
        context: The emit context handed to rule actions (for the
            bundled targets this is an :class:`repro.machine.emitter.Emitter`).

    Attributes:
        reductions: Distinct (node, nonterminal) pairs reduced — one
            rule application and one memo store each.
        memo_hits: Reduction requests answered from the memo without
            applying a rule.
    """

    def __init__(
        self,
        labeling: Labeling,
        context: Any = None,
        *,
        deadline_at_ns: int | None = None,
    ) -> None:
        self.labeling = labeling
        self.context = context
        #: Absolute monotonic deadline for cooperative cancellation
        #: (checked every DEADLINE_CHECK_EVERY frame steps); None
        #: disables the checks.
        self.deadline_at_ns = deadline_at_ns
        self._memo: dict[tuple[int, int], Any] = {}
        #: Nonterminal name -> dense id, seeded in grammar-declaration
        #: order so every engine built over the same grammar agrees on
        #: ids (a cached emission tape carries its compiler's nt ids;
        #: an engine replaying it registers slots under those ids and
        #: must key its own later lookups identically).  Names outside
        #: the grammar are still interned on first use.
        self._nt_ids: dict[str, int] = {
            name: index
            for index, name in enumerate(labeling.grammar.nonterminals)
        }
        #: id(rule) -> compiled operand-collection plan.
        self._plans: dict[int, tuple] = {}
        #: The grammar's start nonterminal, resolved once (not per
        #: ``reduce_forest`` call).
        self._start_nt: str | None = labeling.grammar.start
        self.reductions = 0
        self.memo_hits = 0
        self.rolled_back = 0
        #: Roots fully reduced by the most recent *faulted*
        #: :meth:`reduce_forest` call (fault-isolation provenance).
        self.last_roots_completed = 0

    # ------------------------------------------------------------------
    # Poisoned-entry safety: the memo only ever *adds* entries (a pair is
    # reduced once, its entry never overwritten), and CPython dicts
    # preserve insertion order — so "the memo as of size k" is exactly
    # its first k items.  A fault-isolating caller snapshots
    # ``memo_size()`` before a forest and ``rollback_to()`` it after a
    # failure, discarding every entry the doomed reduction stored; the
    # happy path pays nothing.

    def memo_size(self) -> int:
        """Current memo entry count — a rollback point for
        :meth:`rollback_to`."""
        return len(self._memo)

    def rollback_to(self, size: int) -> int:
        """Discard memo entries added after :meth:`memo_size` returned
        *size*.

        Removes the most recently inserted entries until *size* remain,
        subtracts them from :attr:`reductions` (they never happened, as
        far as later forests are concerned), and counts them in
        :attr:`rolled_back`.  Returns the number discarded.
        """
        memo = self._memo
        excess = len(memo) - size
        if excess <= 0:
            return 0
        for key in list(islice(reversed(memo), excess)):
            del memo[key]
        self.reductions -= excess
        self.rolled_back += excess
        return excess

    # ------------------------------------------------------------------

    def _nt_id(self, nonterminal: str) -> int:
        """Dense id of *nonterminal*, interned on first use."""
        nt_ids = self._nt_ids
        nt_id = nt_ids.get(nonterminal)
        if nt_id is None:
            nt_id = nt_ids[nonterminal] = len(nt_ids)
        return nt_id

    def _plan_for(self, rule: Rule) -> tuple:
        """The rule's compiled operand-collection plan (cached by rule
        identity).

        * ``(_CHAIN, source_nt, source_nt_id)`` for chain rules;
        * ``(_BASE, op_name, arity, ((nt, nt_id), ...))`` for
          normal-form base rules — the arity-specialized fast path
          zips the precomputed pairs straight onto ``node.kids``;
        * ``(_PATTERN, pattern)`` for multi-node rules, which still
          need the (pattern-height-bounded) structural walk per node.
        """
        plan = self._plans.get(id(rule))
        if plan is None:
            pattern = rule.pattern
            if rule.is_chain:
                symbol = pattern.symbol
                plan = (_CHAIN, symbol, self._nt_id(symbol))
            elif rule.is_base:
                leaves = tuple((kid.symbol, self._nt_id(kid.symbol)) for kid in pattern.kids)
                plan = (_BASE, pattern.symbol, len(leaves), leaves)
            else:
                plan = (_PATTERN, pattern)
            self._plans[id(rule)] = plan
        return plan

    def _targets_for(self, rule: Rule, node: Node) -> list[tuple[Node, str, int]]:
        """The (node, nonterminal, nonterminal-id) reduction targets of
        applying *rule* at *node*, in left-to-right operand order."""
        plan = self._plan_for(rule)
        kind = plan[0]
        if kind == _BASE:
            _, op_name, arity, leaves = plan
            kids = node.kids
            if node.op.name != op_name or len(kids) != arity:
                require_structural_match(rule.pattern, node)
            if arity == 1:
                (nt0, id0), = leaves
                return [(kids[0], nt0, id0)]
            if arity == 2:
                (nt0, id0), (nt1, id1) = leaves
                return [(kids[0], nt0, id0), (kids[1], nt1, id1)]
            return [(kid, nt, nt_id) for kid, (nt, nt_id) in zip(kids, leaves)]
        if kind == _CHAIN:
            return [(node, plan[1], plan[2])]
        targets: list[tuple[Node, str, int]] = []
        self._pattern_targets(plan[1], node, targets)
        return targets

    def _pattern_targets(
        self, pattern, node: Node, targets: list[tuple[Node, str, int]]
    ) -> None:
        """Collect targets below a multi-node *pattern* matched at *node*.

        Recursion depth is bounded by the grammar's pattern height
        (small by construction), not by the IR tree.
        """
        require_structural_match(pattern, node)
        for kid_pattern, kid_node in zip(pattern.kids, node.kids):
            if kid_pattern.is_nonterminal:
                symbol = kid_pattern.symbol
                targets.append((kid_node, symbol, self._nt_id(symbol)))
            else:
                self._pattern_targets(kid_pattern, kid_node, targets)

    # ------------------------------------------------------------------

    def resolve_start(self, start: str | None = None) -> str:
        """The effective start nonterminal for a reduction.

        Returns *start* when given, else the grammar's start
        nonterminal; raises :class:`CoverError` when neither exists.
        Public so pipeline callers (the fault-isolated path) never need
        to poke at internals to pre-flight a batch.
        """
        start_nt = start if start is not None else self._start_nt
        if start_nt is None:
            raise CoverError("grammar has no start nonterminal")
        return start_nt

    def reduce_forest(self, forest: Forest, start: str | None = None) -> list[Any]:
        """Reduce every root of *forest* from the start nonterminal."""
        start_nt = self.resolve_start(start)
        reduce = self.reduce
        values: list[Any] = []
        try:
            for root in forest.roots:
                values.append(reduce(root, start_nt))
        except Exception:
            # Fault provenance for isolating callers; free on the happy
            # path (zero-cost try on CPython 3.11+).
            self.last_roots_completed = len(values)
            raise
        return values

    def reduce(self, node: Node, nonterminal: str) -> Any:
        """Reduce *node* from *nonterminal* and return its semantic value.

        Iterative: reductions of any depth (deep trees, long chain-rule
        sequences) run on an explicit frame stack.
        """
        memo = self._memo
        nid = node.nid
        key = (nid if nid >= 0 else ~id(node), self._nt_id(nonterminal))
        value = memo.get(key, _MISSING)
        if value is not _MISSING:
            self.memo_hits += 1
            return value

        require_rule = self.labeling.require_rule
        targets_for = self._targets_for
        rule = require_rule(node, nonterminal)
        # Frame layout: [key, node, rule, operands, targets, index].
        # The on-stack key set bounds corrupt labelings: a (node, nt)
        # pair whose reduction depends on itself (e.g. a chain-rule
        # cycle answered by a broken Labeling) is an error, not an
        # unbounded frame loop — the recursive engine failed fast with
        # RecursionError, the iterative one must fail fast too.
        on_stack: set[tuple[int, int]] = {key}
        frames: list[list] = [[key, node, rule, [], targets_for(rule, node), 0]]
        deadline = self.deadline_at_ns
        ticks = 0
        while True:
            if deadline is not None:
                ticks += 1
                if ticks >= DEADLINE_CHECK_EVERY:
                    ticks = 0
                    check_deadline(deadline, "reduce")
            frame = frames[-1]
            targets = frame[_F_TARGETS]
            operands = frame[_F_OPERANDS]
            index = frame[_F_INDEX]
            descended = False
            while index < len(targets):
                t_node, t_nt, t_nt_id = targets[index]
                t_nid = t_node.nid
                t_key = (t_nid if t_nid >= 0 else ~id(t_node), t_nt_id)
                value = memo.get(t_key, _MISSING)
                if value is _MISSING:
                    if t_key in on_stack:
                        raise CoverError(
                            f"cyclic derivation: reducing node "
                            f"{t_node.op.name} (nid={t_node.nid}) from "
                            f"nonterminal {t_nt!r} depends on itself"
                        )
                    frame[_F_INDEX] = index
                    t_rule = require_rule(t_node, t_nt)
                    on_stack.add(t_key)
                    frames.append(
                        [t_key, t_node, t_rule, [], targets_for(t_rule, t_node), 0]
                    )
                    descended = True
                    break
                self.memo_hits += 1
                if isinstance(value, _SplicedOperands):
                    operands.extend(value)
                else:
                    operands.append(value)
                index += 1
            if descended:
                continue
            # All targets reduced: apply the rule and deliver the value.
            value = self._run_action(frame[_F_RULE], frame[_F_NODE], operands)
            key = frame[_F_KEY]
            memo[key] = value
            on_stack.discard(key)
            self.reductions += 1
            frames.pop()
            if not frames:
                return value
            parent = frames[-1]
            if isinstance(value, _SplicedOperands):
                parent[_F_OPERANDS].extend(value)
            else:
                parent[_F_OPERANDS].append(value)
            parent[_F_INDEX] += 1

    # ------------------------------------------------------------------

    def _run_action(self, rule: Rule, node: Node, operands: list[Any]) -> Any:
        # The try/except is zero-cost on the happy path (CPython 3.11+);
        # a raising user action gets the faulting IR node attached for
        # SelectionFailure provenance before propagating.
        try:
            if rule.action is not None:
                return rule.action(self.context, node, operands)
            if rule.template is not None and self.context is not None:
                emit_template = getattr(self.context, "emit_template", None)
                if emit_template is not None:
                    return emit_template(rule, node, operands)
        except Exception as exc:
            attach_node_provenance(exc, node)
            raise
        if rule.is_helper:
            return _SplicedOperands(operands)
        return flatten_operands(operands)
