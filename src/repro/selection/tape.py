"""Cover-array compilation: lower covers to flat instruction tapes.

The frame-stack :class:`~repro.selection.reducer.Reducer` re-walks the
cover on every emission: per-call frames, a per-frame operand list, and
a memo probe per reduction target.  In the paper's JIT setting the emit
step runs once per compiled function on a hot path, and the cover it
walks is *fixed* the moment labeling finishes — so this module splits
emission into an explicit two-phase pipeline, the same lowering shape
ERTL/RTL-style backends use to turn selected covers into flat
instruction sequences:

1. **Compile** — one walk over the cover lowers each forest to a
   :class:`CompiledTape`: parallel, ``array('q')``-packed postorder
   arrays (rule numbers, operand-slot runs, per-entry nonterminal ids —
   the same wire style as the AOT table matrices).  Entry *i*'s result
   lands in value-buffer slot ``base + i``, so result slots are implicit
   and operand references are plain slot indices, encoded
   ``(slot << 1) | spliced`` — bit 0 marks operands produced by
   normalisation helper rules, whose value lists are spliced flat
   exactly as the frame engine splices ``_SplicedOperands``.
2. **Sweep** — one linear pass over the tape runs precompiled per-rule
   action thunks against a single shared value buffer: no frames, no
   memo probes, no per-frame operand lists; operand gather is slot
   indexing.

The compile walk replicates the frame engine's exact left-to-right
postorder — including where memo hits happen — so both engines run the
same actions in the same order with the same operands, which is what the
differential tests assert byte-for-byte.

Tape caching
------------
Tapes are cached by *shape*: a canonical DAG-aware signature over
``(operator, payload, child ordinals)`` plus root ordinals.  A JIT-style
``recurring_stream`` batch (fresh-node clones of a few templates)
compiles each shape once and replays the tape for every repeat — the
walk, rule lookups, and operand planning are all skipped; only the
sweep runs.  Caching is deliberately conservative:

* grammars with dynamic rules are never cached (a dynamic cost may read
  node identity, so shape does not determine the cover);
* forests sharing nodes with earlier batch members are never cached or
  replayed from cache (cross-forest memo hits must keep emitting once);
* unhashable payloads skip the cache.

Fault isolation
---------------
The batch-shared value buffer makes rollback a *truncation*: a
fault-isolating caller snapshots ``memo_size()`` (the buffer length)
before a forest and ``rollback_to()`` it after a fault — ``del
values[mark:]`` plus popping the slot table's tail — instead of the
frame engine's reverse-ordered memo surgery.  Because compilation
precedes emission, a forest whose cover is broken (``CoverError``)
faults *before any action runs*: the frame engine may emit a partial
prefix into the context before discovering the hole, the tape engine
never does.
"""

from __future__ import annotations

import time
from array import array
from itertools import islice
from typing import Any

from repro.errors import CoverError, DeadlineExceededError
from repro.grammar.rule import Rule
from repro.ir.node import Forest, Node
from repro.selection.cover import Labeling
from repro.selection.reducer import Reducer, _SplicedOperands, flatten_operands
from repro.selection.resilience import (
    DEADLINE_CHECK_EVERY,
    attach_node_provenance,
    check_deadline,
)

__all__ = ["CompiledTape", "TapeCache", "TapeEmitter"]

#: Frame slots of the compile walk's explicit stack (mirrors the frame
#: engine's layout; operands are replaced by encoded operand refs).
_F_KEY, _F_NODE, _F_RULE, _F_REFS, _F_TARGETS, _F_INDEX = range(6)


class CompiledTape:
    """One forest's cover, lowered to flat postorder instruction arrays.

    All arrays are parallel over ``entries`` tape entries; entry *i*'s
    semantic value lands in value-buffer slot ``base + i`` (result
    slots are sequential by construction, so they are implicit).

    Attributes:
        entries: Number of tape entries (= rule applications = values
            appended by one sweep).
        base: Value-buffer length the slot references were compiled
            against; replaying at a different buffer length rebases
            every reference by the difference.
        rule_ids: ``array('q')`` of original rule numbers, one per
            entry — the wire-format view of the tape (diagnostics,
            differential tests, and the handoff format for a native
            sweep kernel).
        nt_ids: ``array('q')`` of interned nonterminal ids, one per
            entry (replays re-register ``(node, nonterminal)`` slots
            from these).
        node_ords: ``array('q')`` mapping each entry to its node's
            ordinal in the forest's canonical (signature) node order,
            or ``None`` for uncacheable tapes.
        opnd_refs: Flat ``array('q')`` of encoded operand references,
            ``(slot << 1) | spliced``.
        opnd_offsets: ``array('q')`` of length ``entries + 1``; entry
            *i*'s operand run is ``opnd_refs[opnd_offsets[i] :
            opnd_offsets[i + 1]]``.
        runs: The same operand runs as per-entry ``tuple``s — the
            sweep-side view of ``opnd_refs``/``opnd_offsets`` (tuple
            iteration avoids a slice allocation and an ``array`` element
            boxing per entry on the hot path; the arrays stay the
            canonical wire format).
        root_refs: ``array('q')`` of absolute value slots, one per
            forest root, in root order.
        spliced: Per-entry splice flags (``bytes``): 1 for helper-rule
            entries whose value lists consumers splice flat.
        thunks: Per-entry bound action thunks ``(context, node,
            operands) -> value`` (parallel to ``rule_ids``).
        nodes: Per-entry IR nodes for immediate sweeps; replays rebind
            through :attr:`node_ords` instead.
        intra_hits: Memo hits the compile walk scored (all intra-forest
            for cacheable tapes); replays add the same count, keeping
            ``memo_hits`` parity with the frame engine.
        cacheable: True when the tape is self-contained (no reference
            below :attr:`base`) and shape-keyed replay is sound.
    """

    __slots__ = (
        "entries",
        "base",
        "rule_ids",
        "nt_ids",
        "node_ords",
        "opnd_refs",
        "opnd_offsets",
        "runs",
        "root_refs",
        "spliced",
        "thunks",
        "nodes",
        "intra_hits",
        "cacheable",
    )

    def __init__(
        self,
        *,
        base: int,
        rule_ids: array,
        nt_ids: array,
        node_ords: "array | None",
        opnd_refs: array,
        opnd_offsets: array,
        runs: tuple,
        root_refs: array,
        spliced: bytes,
        thunks: list,
        nodes: list,
        intra_hits: int,
        cacheable: bool,
    ) -> None:
        self.entries = len(rule_ids)
        self.base = base
        self.rule_ids = rule_ids
        self.nt_ids = nt_ids
        self.node_ords = node_ords
        self.opnd_refs = opnd_refs
        self.opnd_offsets = opnd_offsets
        self.runs = runs
        self.root_refs = root_refs
        self.spliced = spliced
        self.thunks = thunks
        self.nodes = nodes
        self.intra_hits = intra_hits
        self.cacheable = cacheable

    def __repr__(self) -> str:
        return (
            f"CompiledTape(entries={self.entries}, roots={len(self.root_refs)}, "
            f"operands={len(self.opnd_refs)}, cacheable={self.cacheable})"
        )


class TapeCache:
    """A bounded shape-keyed cache of :class:`CompiledTape` objects.

    Keys are ``(grammar version, start-nonterminal id, context kind,
    shape signature)``; eviction is FIFO (insertion order), sized for a
    JIT's working set of recurring shapes.  One cache is owned per
    :class:`~repro.selection.selector.Selector` and shared by every
    emitter the selector creates, so a long-lived selector amortises
    compilation across ``select_many`` calls.
    """

    def __init__(self, maxsize: int = 256) -> None:
        self.maxsize = maxsize
        self._tapes: dict[tuple, CompiledTape] = {}
        #: ``id(forest) -> (forest, roots snapshot, canonical nodes,
        #: tape key)`` — the identity fast path for re-emitting a forest
        #: *object* the cache has seen (a JIT recompiling the same
        #: function).  The forest is held strongly, so its ``id`` cannot
        #: be recycled while the entry lives; the roots snapshot guards
        #: against roots added after caching (nodes themselves are
        #: immutable).  A hit skips the signature walk entirely.
        self._by_forest: dict[int, tuple[Forest, tuple, list, tuple]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.identity_hits = 0

    def __len__(self) -> int:
        return len(self._tapes)

    def get(self, key: tuple) -> CompiledTape | None:
        tape = self._tapes.get(key)
        if tape is None:
            self.misses += 1
        else:
            self.hits += 1
        return tape

    def put(self, key: tuple, tape: CompiledTape) -> None:
        tapes = self._tapes
        if key in tapes:
            return
        if len(tapes) >= self.maxsize:
            tapes.pop(next(iter(tapes)))
            self.evictions += 1
        tapes[key] = tape

    def forest_entry(self, forest: Forest) -> "tuple[list, tuple] | None":
        """``(canonical nodes, tape key)`` when *forest* (the object,
        with unchanged roots) was remembered; ``None`` otherwise."""
        entry = self._by_forest.get(id(forest))
        if entry is None:
            return None
        cached, roots, nodes, key = entry
        if cached is not forest or tuple(forest.roots) != roots:
            return None
        self.identity_hits += 1
        return nodes, key

    def remember_forest(self, forest: Forest, nodes: list, key: tuple) -> None:
        """Index *forest* by identity for :meth:`forest_entry`."""
        by_forest = self._by_forest
        if len(by_forest) >= self.maxsize and id(forest) not in by_forest:
            by_forest.pop(next(iter(by_forest)))
        by_forest[id(forest)] = (forest, tuple(forest.roots), nodes, key)

    def stats(self) -> dict[str, int]:
        return {
            "size": len(self._tapes),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "identity_entries": len(self._by_forest),
            "identity_hits": self.identity_hits,
        }


class TapeEmitter(Reducer):
    """The tape-based emission engine: compile covers, sweep tapes.

    A drop-in replacement for the frame-stack
    :class:`~repro.selection.reducer.Reducer` — same constructor, same
    ``reduce``/``reduce_forest``/``resolve_start`` surface, same
    ``reductions``/``memo_hits`` counter semantics, same
    ``memo_size``/``rollback_to`` fault-isolation contract — that emits
    through compiled tapes instead of a frame stack.  Cross-forest
    memoisation is preserved: the slot table (keyed like the frame
    engine's memo, by ``node.nid`` with an address fallback) spans the
    emitter's lifetime, so a node shared between batch forests emits
    once and later forests reference its slot.

    Additional counters: :attr:`tapes_compiled` and
    :attr:`tape_cache_hits` (replays of a shape-cached tape).
    """

    def __init__(
        self,
        labeling: Labeling,
        context: Any = None,
        *,
        deadline_at_ns: int | None = None,
        cache: TapeCache | None = None,
        tracer: Any = None,
    ) -> None:
        super().__init__(labeling, context, deadline_at_ns=deadline_at_ns)
        #: Optional span tracer; when enabled, each cover-to-tape
        #: compilation records a ``pipeline.tape_compile`` span.
        self._tracer = tracer
        #: The batch-shared value buffer; entry slots index into it.
        self._values: list[Any] = []
        #: ``(node key, nt id) -> (slot << 1) | spliced`` — insertion
        #: ordered and slot-monotone, so rollback is a tail truncation.
        self._slots: dict[tuple[int, int], int] = {}
        #: node key -> live slot-table entry count (guards the shape
        #: cache against cross-forest sharing).
        self._seen: dict[int, int] = {}
        #: ``id(rule) -> (thunk, spliced)`` compiled action thunks.
        self._thunks: dict[int, tuple[Any, bool]] = {}
        self._cache = cache
        #: Shape caching is only sound when shape determines the cover.
        self._cacheable_grammar = not labeling.grammar.has_dynamic_rules
        self.tapes_compiled = 0
        self.tape_cache_hits = 0

    # ------------------------------------------------------------------
    # Fault isolation: value-buffer truncation instead of memo surgery.

    def memo_size(self) -> int:
        """Current value-buffer length — a rollback point for
        :meth:`rollback_to`."""
        return len(self._values)

    def rollback_to(self, size: int) -> int:
        """Truncate the value buffer (and the slot table's tail) back to
        *size* slots; returns the number of values discarded.

        Also clears slot-table entries registered by a compile that
        faulted before its sweep appended anything (the slot table may
        briefly run ahead of the buffer inside ``emit_forest``).
        """
        values = self._values
        excess = len(values) - size
        if excess > 0:
            del values[size:]
            self.reductions -= excess
            self.rolled_back += excess
        self._truncate_slots(size)
        return max(excess, 0)

    def _truncate_slots(self, size: int) -> None:
        """Pop slot-table entries until *size* remain (insertion order =
        slot order, so the tail is exactly the entries past *size*)."""
        slots = self._slots
        extra = len(slots) - size
        if extra <= 0:
            return
        seen = self._seen
        for key in list(islice(reversed(slots), extra)):
            del slots[key]
            node_key = key[0]
            live = seen[node_key] - 1
            if live:
                seen[node_key] = live
            else:
                del seen[node_key]

    # ------------------------------------------------------------------
    # Per-rule thunk compilation

    def _thunk_info(self, rule: Rule) -> tuple[Any, bool]:
        """``(thunk, spliced)`` for *rule*, compiled once per rule.

        The thunk mirrors :meth:`Reducer._run_action` branch order:
        action, then template (when the context can emit templates),
        then helper splice, then operand pass-through.  *spliced* is
        static — only helper rules produce splice-flat values — so the
        sweep needs no per-operand ``isinstance`` probe.
        """
        info = self._thunks.get(id(rule))
        if info is None:
            info = self._thunks[id(rule)] = self._compile_thunk(rule)
        return info

    def _compile_thunk(self, rule: Rule) -> tuple[Any, bool]:
        action = rule.action
        if action is not None:
            return action, False
        if rule.template is not None and self.context is not None:
            if getattr(self.context, "emit_template", None) is not None:
                # Bind the rule, not the context: a cached tape may be
                # replayed under a different context of the same kind.
                def template_thunk(ctx: Any, node: Node, operands: list, _rule=rule):
                    return ctx.emit_template(_rule, node, operands)

                return template_thunk, False
        if rule.is_helper:
            def helper_thunk(ctx: Any, node: Node, operands: list) -> Any:
                return _SplicedOperands(operands)

            return helper_thunk, True

        def passthrough_thunk(ctx: Any, node: Node, operands: list) -> Any:
            return flatten_operands(operands)

        return passthrough_thunk, False

    # ------------------------------------------------------------------
    # Shape signatures

    def _shares_any(self, nodes: list[Node]) -> bool:
        """True when any of *nodes* already holds a slot-table entry.

        The identity fast path's stand-in for the signature walk's
        *shares* flag: replaying a tape over a node that an earlier
        batch forest emitted would re-emit it instead of memo-hitting.
        """
        seen = self._seen
        if not seen:
            return False
        for node in nodes:
            nid = node.nid
            if (nid if nid >= 0 else ~id(node)) in seen:
                return True
        return False

    def _signature(
        self, forest: Forest
    ) -> tuple[Any, list[Node], dict[int, int], bool]:
        """``(signature, canonical nodes, ord_of, shares)`` for *forest*.

        The signature is a canonical DAG-aware serialisation: one flat
        tuple listing, per node in a deterministic structural order, its
        :class:`~repro.ir.ops.Operator` (identity-compared — operator
        objects are shared, not cloned), payload, an arity marker
        (``-arity - 1``, always negative so the sequence parses
        unambiguously), and its child ordinals, followed by the root
        ordinals.  Two forests get the same signature iff they have the
        same shape *including sharing* (a tree and its DAG-shared twin
        emit different numbers of actions and must not collide).  The
        walk is inlined (no generator) and the serialisation flat (no
        per-node tuples) because this runs on the cache-hit fast path.

        ``signature`` is ``None`` when a payload is unhashable;
        ``ord_of`` maps ``id(node)`` to the node's canonical ordinal;
        *shares* is True when any forest node already holds a slot-table
        entry (cross-forest sharing, which disqualifies both cache
        lookup and store).
        """
        seen = self._seen
        ord_of: dict[int, int] = {}
        nodes: list[Node] = []
        append_node = nodes.append
        parts: list[Any] = []
        append_part = parts.append
        shares = False
        stack: list[tuple[Node, bool]] = []
        push = stack.append
        pop = stack.pop
        for root in forest.roots:
            if id(root) in ord_of:
                continue
            push((root, False))
            while stack:
                node, expanded = pop()
                node_id = id(node)
                if node_id in ord_of:
                    continue
                kids = node.kids
                if not expanded and kids:
                    # Any duplicate reference to *node* sits below this
                    # frame on the stack, so it pops only after the
                    # ordinal is assigned — the ``in ord_of`` guard
                    # above keeps shared (DAG) nodes linear.  Childless
                    # kids are serialised inline (in deterministic
                    # reverse child order) instead of round-tripping
                    # through the stack.
                    push((node, True))
                    for kid in reversed(kids):
                        kid_id = id(kid)
                        if kid_id in ord_of:
                            continue
                        if kid.kids:
                            push((kid, False))
                            continue
                        nid = kid.nid
                        if (nid if nid >= 0 else ~kid_id) in seen:
                            shares = True
                        ord_of[kid_id] = len(nodes)
                        append_node(kid)
                        append_part(kid.op)
                        append_part(kid.value)
                        append_part(-1)
                    continue
                nid = node.nid
                if (nid if nid >= 0 else ~node_id) in seen:
                    shares = True
                ord_of[node_id] = len(nodes)
                append_node(node)
                append_part(node.op)
                append_part(node.value)
                append_part(-len(kids) - 1)
                for kid in kids:
                    append_part(ord_of[id(kid)])
        for root in forest.roots:
            append_part(ord_of[id(root)])
        signature: Any = tuple(parts)
        try:
            hash(signature)
        except TypeError:
            signature = None
        return signature, nodes, ord_of, shares

    # ------------------------------------------------------------------
    # Compile

    def _compile_roots(
        self,
        pairs: list[tuple[Node, str]],
        ord_of: "dict[int, int] | None",
    ) -> CompiledTape:
        """Lower the covers of ``(root, nonterminal)`` *pairs* to one tape.

        Appends no values — the sweep does that — but registers every
        new entry's slot in the slot table as it is laid out, so later
        targets (and later forests) resolve shared reductions to
        existing slots.  The walk replicates the frame engine's exact
        left-to-right postorder, cycle guard, and deadline strides.
        """
        slots = self._slots
        seen = self._seen
        base = len(self._values)
        base2 = base << 1
        require_rule = self.labeling.require_rule
        targets_for = self._targets_for
        thunk_info = self._thunk_info
        deadline = self.deadline_at_ns

        thunks: list[Any] = []
        nodes: list[Node] = []
        nt_ids: list[int] = []
        rule_ids: list[int] = []
        ref_runs: list[list[int]] = []
        root_refs: list[int] = []
        spliced_flags = bytearray()
        hits = 0
        cacheable = True
        ticks = 0

        for root, nonterminal in pairs:
            nid = root.nid
            key = (nid if nid >= 0 else ~id(root), self._nt_id(nonterminal))
            encoded = slots.get(key)
            if encoded is not None:
                hits += 1
                if encoded < base2:
                    cacheable = False
                root_refs.append(encoded >> 1)
                continue
            rule = require_rule(root, nonterminal)
            on_stack: set[tuple[int, int]] = {key}
            frames: list[list] = [[key, root, rule, [], targets_for(rule, root), 0]]
            while True:
                if deadline is not None:
                    ticks += 1
                    if ticks >= DEADLINE_CHECK_EVERY:
                        ticks = 0
                        check_deadline(deadline, "reduce")
                frame = frames[-1]
                targets = frame[_F_TARGETS]
                refs = frame[_F_REFS]
                index = frame[_F_INDEX]
                descended = False
                while index < len(targets):
                    t_node, t_nt, t_nt_id = targets[index]
                    t_nid = t_node.nid
                    t_key = (t_nid if t_nid >= 0 else ~id(t_node), t_nt_id)
                    encoded = slots.get(t_key)
                    if encoded is None:
                        if t_key in on_stack:
                            raise CoverError(
                                f"cyclic derivation: reducing node "
                                f"{t_node.op.name} (nid={t_node.nid}) from "
                                f"nonterminal {t_nt!r} depends on itself"
                            )
                        frame[_F_INDEX] = index
                        t_rule = require_rule(t_node, t_nt)
                        on_stack.add(t_key)
                        frames.append(
                            [t_key, t_node, t_rule, [], targets_for(t_rule, t_node), 0]
                        )
                        descended = True
                        break
                    hits += 1
                    if encoded < base2:
                        cacheable = False
                    refs.append(encoded)
                    index += 1
                if descended:
                    continue
                # All targets resolved: lay out this entry.
                e_rule = frame[_F_RULE]
                thunk, spliced = thunk_info(e_rule)
                e_key = frame[_F_KEY]
                encoded = ((base + len(nodes)) << 1) | spliced
                slots[e_key] = encoded
                node_key = e_key[0]
                seen[node_key] = seen.get(node_key, 0) + 1
                thunks.append(thunk)
                nodes.append(frame[_F_NODE])
                nt_ids.append(e_key[1])
                rule_ids.append(e_rule.number)
                ref_runs.append(refs)
                spliced_flags.append(spliced)
                on_stack.discard(e_key)
                frames.pop()
                if not frames:
                    break
                parent = frames[-1]
                parent[_F_REFS].append(encoded)
                parent[_F_INDEX] += 1
            root_refs.append(slots[key] >> 1)

        self.memo_hits += hits
        offsets = array("q", [0] * (len(ref_runs) + 1))
        total = 0
        flat_refs: list[int] = []
        for i, run in enumerate(ref_runs):
            total += len(run)
            offsets[i + 1] = total
            flat_refs.extend(run)
        node_ords: array | None = None
        if ord_of is not None and cacheable:
            node_ords = array("q", [ord_of[id(node)] for node in nodes])
        return CompiledTape(
            base=base,
            rule_ids=array("q", rule_ids),
            nt_ids=array("q", nt_ids),
            node_ords=node_ords,
            opnd_refs=array("q", flat_refs),
            opnd_offsets=offsets,
            runs=tuple(map(tuple, ref_runs)),
            root_refs=array("q", root_refs),
            spliced=bytes(spliced_flags),
            thunks=thunks,
            nodes=nodes,
            intra_hits=hits,
            cacheable=cacheable and ord_of is not None,
        )

    # ------------------------------------------------------------------
    # Sweep

    def _sweep(
        self,
        tape: CompiledTape,
        nodes: list[Node],
        base: int,
        delta: int = 0,
    ) -> None:
        """Execute *tape* linearly, appending one value per entry.

        *delta* rebases the tape's operand-slot references onto the
        current buffer tail (non-zero only for cache replays, whose tape
        was compiled at a different buffer length).
        """
        buf = self._values
        append = buf.append
        context = self.context
        deadline = self.deadline_at_ns
        ticks = 0
        try:
            if deadline is None:
                # Deadline-free fast loop: no per-entry tick check.
                for thunk, node, run in zip(tape.thunks, nodes, tape.runs):
                    operands: list[Any] = []
                    for ref in run:
                        if ref & 1:
                            operands.extend(buf[(ref >> 1) + delta])
                        else:
                            operands.append(buf[(ref >> 1) + delta])
                    append(thunk(context, node, operands))
            else:
                for thunk, node, run in zip(tape.thunks, nodes, tape.runs):
                    ticks += 1
                    if ticks >= DEADLINE_CHECK_EVERY:
                        ticks = 0
                        check_deadline(deadline, "reduce")
                    operands = []
                    for ref in run:
                        if ref & 1:
                            operands.extend(buf[(ref >> 1) + delta])
                        else:
                            operands.append(buf[(ref >> 1) + delta])
                    append(thunk(context, node, operands))
        except DeadlineExceededError:
            # A deadline abort is not the action's fault: no provenance,
            # exactly like the frame engine's out-of-try check.
            self._note_fault(tape, base)
            raise
        except Exception as exc:
            completed = len(buf) - base
            attach_node_provenance(exc, nodes[completed])
            self._note_fault(tape, base)
            raise
        except BaseException:
            self._note_fault(tape, base)
            raise
        self.reductions += tape.entries

    def _note_fault(self, tape: CompiledTape, base: int) -> None:
        """Restore the engine's invariants after a mid-sweep fault.

        Counts the entries that completed into :attr:`reductions`, trims
        the slot table back in line with the value buffer (only
        completed entries stay memoised, matching the frame engine), and
        records how many roots fully emitted — the leading run of roots
        (in root order) whose result slots precede the fault point.
        """
        fault_slot = len(self._values)
        self.reductions += fault_slot - base
        self._truncate_slots(fault_slot)
        delta = base - tape.base
        completed = 0
        for ref in tape.root_refs:
            if ref + delta >= fault_slot:
                break
            completed += 1
        self.last_roots_completed = completed

    def _replay(self, tape: CompiledTape, sig_nodes: list[Node]) -> list[Any]:
        """Re-emit a shape-cached *tape* against fresh nodes.

        Rebinds each entry's node through the canonical node order,
        rebases slot references onto the current buffer tail, registers
        the replayed entries in the slot table (so later forests can
        share and rollback stays a truncation), and sweeps.
        """
        base = len(self._values)
        delta = base - tape.base
        slots = self._slots
        seen = self._seen
        seen_get = seen.get
        nt_ids = tape.nt_ids
        spliced = tape.spliced
        nodes: list[Node] = []
        append_node = nodes.append
        slot2 = base << 1
        for i, ordinal in enumerate(tape.node_ords):
            node = sig_nodes[ordinal]
            append_node(node)
            nid = node.nid
            node_key = nid if nid >= 0 else ~id(node)
            slots[(node_key, nt_ids[i])] = slot2 + (i << 1) + spliced[i]
            count = seen_get(node_key)
            seen[node_key] = 1 if count is None else count + 1
        self.memo_hits += tape.intra_hits
        self.tape_cache_hits += 1
        self._sweep(tape, nodes, base, delta)
        buf = self._values
        return [buf[ref + delta] for ref in tape.root_refs]

    # ------------------------------------------------------------------
    # Public emission surface (Reducer-compatible)

    def reduce_forest(self, forest: Forest, start: str | None = None) -> list[Any]:
        """Compile (or replay) *forest*'s tape and sweep it."""
        start_nt = self.resolve_start(start)
        cache = self._cache
        ord_of: dict[int, int] | None = None
        key: tuple | None = None
        sig_nodes: list[Node] | None = None
        if cache is not None and self._cacheable_grammar:
            version = self.labeling.grammar.version
            ctx_type = type(self.context)
            ident = cache.forest_entry(forest)
            if ident is not None:
                ident_nodes, ident_key = ident
                if (
                    ident_key[0] == version
                    and ident_key[1] == start_nt
                    and ident_key[2] is ctx_type
                ):
                    tape = cache.get(ident_key)
                    if tape is not None and not self._shares_any(ident_nodes):
                        return self._replay(tape, ident_nodes)
            sig, sig_nodes, sig_ords, shares = self._signature(forest)
            if sig is not None and not shares:
                key = (version, start_nt, ctx_type, sig)
                tape = cache.get(key)
                if tape is not None:
                    cache.remember_forest(forest, sig_nodes, key)
                    return self._replay(tape, sig_nodes)
                ord_of = sig_ords
        mark = len(self._values)
        tracer = self._tracer
        compile_start = (
            time.monotonic_ns() if tracer is not None and tracer.enabled else None
        )
        try:
            tape = self._compile_roots(
                [(root, start_nt) for root in forest.roots], ord_of
            )
        except Exception:
            # A compile fault precedes all emission: nothing ran, so
            # nothing completed; clear the slot table's dead tail.
            self.last_roots_completed = 0
            self._truncate_slots(mark)
            raise
        if compile_start is not None:
            tracer.record(
                "pipeline.tape_compile",
                compile_start,
                time.monotonic_ns(),
                forest=forest.name,
                entries=tape.entries,
            )
        if tape.entries:
            self.tapes_compiled += 1
        if key is not None and tape.cacheable:
            cache.put(key, tape)
            cache.remember_forest(forest, sig_nodes, key)
        self._sweep(tape, tape.nodes, tape.base)
        buf = self._values
        return [buf[ref] for ref in tape.root_refs]

    def reduce(self, node: Node, nonterminal: str) -> Any:
        """Reduce one ``(node, nonterminal)`` pair through a tape.

        Compiles a single-root tape (resolving already-emitted
        reductions to their slots) and sweeps it; an already-memoised
        pair is answered straight from its slot.
        """
        mark = len(self._values)
        try:
            tape = self._compile_roots([(node, nonterminal)], None)
        except Exception:
            self.last_roots_completed = 0
            self._truncate_slots(mark)
            raise
        if tape.entries:
            self.tapes_compiled += 1
        self._sweep(tape, tape.nodes, tape.base)
        return self._values[tape.root_refs[0]]
