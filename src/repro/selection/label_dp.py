"""Baseline dynamic-programming labeler (lburg/iburg style).

Labels every node of a forest bottom-up with a full cost vector: for
each nonterminal, the minimum cost of deriving the node's subtree from
that nonterminal, and the rule achieving it.  Pattern matching handles
arbitrary (multi-node) patterns directly, so the grammar does not need
to be in normal form; chain rules are closed per node with
:func:`~repro.grammar.closure.chain_closure`.

Dynamic programming is the flexibility baseline of the paper: it
supports fully general dynamic costs and constraints, at the price of
paying the full rule-check and chain-closure work on *every* node of
*every* forest.  The on-demand automaton
(:mod:`repro.selection.automaton`) pays that work only once per distinct
transition and amortizes it across repeated forest shapes.
"""

from __future__ import annotations

from typing import Iterable

from repro.grammar.closure import chain_closure
from repro.grammar.costs import INFINITE, add_costs
from repro.grammar.grammar import Grammar
from repro.grammar.pattern import Pattern
from repro.grammar.rule import Rule
from repro.ir.node import Forest, Node
from repro.ir.traversal import ready_postorder
from repro.metrics.counters import LabelMetrics
from repro.obs.trace import Timer
from repro.selection.cover import Labeling
from repro.selection.resilience import DEADLINE_CHECK_EVERY, check_deadline

__all__ = ["DPLabeling", "DPLabeler", "dynamic_cost_at", "label_dp", "match_pattern"]

_EMPTY: dict = {}

#: Sink for counters when the caller opted out of metrics (written,
#: never read); dynamic-cost evaluation needs *some* metrics object.
_NULL_METRICS = LabelMetrics()


def match_pattern(pattern: Pattern, node: Node) -> list[tuple[str, Node]] | None:
    """Match *pattern* structurally at *node*.

    Returns the ``(nonterminal, node)`` bindings of the pattern's
    nonterminal leaves in left-to-right order, or ``None`` when the
    pattern does not match (operator mismatch or arity mismatch — a
    non-match, not an error: other rules may still apply).
    """
    if pattern.is_nonterminal:
        return [(pattern.symbol, node)]
    if pattern.symbol != node.op.name or len(pattern.kids) != len(node.kids):
        return None
    bindings: list[tuple[str, Node]] = []
    for kid_pattern, kid_node in zip(pattern.kids, node.kids):
        kid_bindings = match_pattern(kid_pattern, kid_node)
        if kid_bindings is None:
            return None
        bindings.extend(kid_bindings)
    return bindings


def dynamic_cost_at(
    rule: Rule, node: Node, metrics: LabelMetrics, prematched: Pattern | None = None
) -> int:
    """Node-evaluated cost of a dynamic rule, shared by all labelers.

    Dynamic cost / constraint callables are written against the
    *original* pattern and may dereference its nodes (a multi-node
    pattern's inner operators, or ``kids[i]`` of the root), so they
    only run where that pattern structurally matches — in particular
    on normalized grammars, whose flattened top rules match one level
    only, and across operator dialects disagreeing about an arity.  A
    rule whose original pattern does not match is inapplicable
    regardless of its cost.

    A caller that already matched a pattern at *node* passes it as
    *prematched* to skip the redundant re-match when it is the
    original pattern (the DP labeler's non-normalized hot path).
    """
    original = rule.original
    if not original.is_chain and original.pattern is not prematched:
        if match_pattern(original.pattern, node) is None:
            return INFINITE
    metrics.dynamic_evals += 1
    return rule.cost_at(node)


class DPLabeling(Labeling):
    """Per-node cost vectors computed by dynamic programming.

    Costs returned by :meth:`cost_of` are *absolute* subtree-derivation
    costs (unlike the delta costs of automaton states).
    """

    def __init__(self, grammar: Grammar, metrics: LabelMetrics | None = None) -> None:
        super().__init__(grammar, metrics)
        self._costs: dict[int, dict[str, int]] = {}
        self._rules: dict[int, dict[str, Rule]] = {}

    def rule_for(self, node: Node, nonterminal: str) -> Rule | None:
        return self._rules.get(id(node), _EMPTY).get(nonterminal)

    def cost_of(self, node: Node, nonterminal: str) -> int:
        return self._costs.get(id(node), _EMPTY).get(nonterminal, INFINITE)

    def cost_vector(self, node: Node) -> dict[str, int]:
        """The node's full nonterminal → cost map (a copy, finite entries)."""
        return dict(self._costs.get(id(node), _EMPTY))


class DPLabeler:
    """Reusable facade mirroring :class:`OnDemandAutomaton`'s ``label`` API.

    Dynamic programming keeps no state between forests, so this is a
    thin wrapper; it exists so benchmarks can iterate over labelers with
    a uniform interface — including the batched :meth:`label_many`.
    """

    def __init__(self, grammar: Grammar) -> None:
        self.grammar = grammar

    def label(
        self,
        forest: Forest,
        metrics: LabelMetrics | None = None,
        *,
        deadline_at_ns: int | None = None,
    ) -> DPLabeling:
        labeling = DPLabeling(self.grammar, metrics)
        _label_roots(self.grammar, labeling, forest.roots, metrics, deadline_at_ns)
        return labeling

    def label_many(
        self,
        forests: Iterable[Forest],
        metrics: LabelMetrics | None = None,
        *,
        deadline_at_ns: int | None = None,
    ) -> DPLabeling:
        """Label a batch of forests into one shared :class:`DPLabeling`.

        Mirrors :meth:`OnDemandAutomaton.label_many`: the labeling
        object, chain-rule scan, and metrics wiring are paid once per
        batch, and the per-node cost map doubles as the walk's visited
        set — a node shared between forests is labeled exactly once.
        The returned labeling answers queries for every forest in the
        batch.
        """
        labeling = DPLabeling(self.grammar, metrics)
        roots = [root for forest in forests for root in forest.roots]
        _label_roots(self.grammar, labeling, roots, metrics, deadline_at_ns)
        return labeling


def label_dp(
    grammar: Grammar, forest: Forest, metrics: LabelMetrics | None = None
) -> DPLabeling:
    """Label *forest* bottom-up with full cost vectors.

    A thin wrapper over ``Selector(grammar, mode="dp")`` (imported
    lazily to avoid a module cycle); prefer a long-lived
    :class:`~repro.selection.selector.Selector` — or a reused
    :class:`DPLabeler` — when labeling many forests.

    Metrics are opt-in: with ``metrics=None`` the per-node loops skip
    all counter increments (mirroring the automaton's null-metrics fast
    path, so raw-speed benchmarks compare like with like).
    """
    from repro.selection.selector import Selector

    return Selector(grammar, mode="dp").label(forest, metrics)


def _label_roots(
    grammar: Grammar,
    labeling: DPLabeling,
    roots: list[Node],
    metrics: LabelMetrics | None,
    deadline_at_ns: int | None = None,
) -> None:
    """One fused, timed walk labeling every node reachable from *roots*.

    The walk is single-pass, exactly like the automaton labeler's: the
    labeling's own cost map is the visited set, so no topological order
    list is built and a node is processed the moment its last child is
    labeled.  Both labelers time the same fused traversal+labeling
    loop, so their ``seconds`` counters stay comparable.
    """
    dynamic_chains = any(rule.is_dynamic for rule in grammar.chain_rules())
    ticks = 0
    with Timer() as timer:
        for node in ready_postorder(roots, labeling._costs):
            if deadline_at_ns is not None:
                ticks += 1
                if ticks >= DEADLINE_CHECK_EVERY:
                    ticks = 0
                    check_deadline(deadline_at_ns, "label")
            _label_node(grammar, labeling, node, dynamic_chains, metrics)
    labeling.metrics.seconds += timer.elapsed


def _label_node(
    grammar: Grammar,
    labeling: DPLabeling,
    node: Node,
    dynamic_chains: bool,
    metrics: LabelMetrics | None,
) -> None:
    costs: dict[str, int] = {}
    rules: dict[str, Rule] = {}

    for rule in grammar.rules_for_op(node.op.name):
        if metrics is not None:
            metrics.rule_checks += 1
        bindings = match_pattern(rule.pattern, node)
        if bindings is None:
            continue
        if rule.is_dynamic:
            total = dynamic_cost_at(
                rule, node, metrics if metrics is not None else _NULL_METRICS,
                prematched=rule.pattern,
            )
        else:
            total = rule.cost
        for nonterminal, leaf in bindings:
            total = add_costs(total, labeling.cost_of(leaf, nonterminal))
            if total >= INFINITE:
                break
        if total < costs.get(rule.lhs, INFINITE):
            costs[rule.lhs] = total
            rules[rule.lhs] = rule

    # Chain closure with node-evaluated dynamic costs, each dynamic rule
    # evaluated at most once per node.  Fully static chain rules take
    # the allocation-free default path.
    if dynamic_chains:
        dyn_cache: dict[int, int] = {}
        run = metrics if metrics is not None else _NULL_METRICS

        def chain_cost(rule: Rule) -> int:
            if not rule.is_dynamic:
                return rule.cost
            cached = dyn_cache.get(rule.number)
            if cached is None:
                run.dynamic_evals += 1
                cached = rule.cost_at(node)
                dyn_cache[rule.number] = cached
            return cached

    else:
        chain_cost = None

    checks = chain_closure(grammar, costs, rules, chain_cost)
    if metrics is not None:
        metrics.chain_checks += checks
        metrics.nodes_labeled += 1
    labeling._costs[id(node)] = costs
    labeling._rules[id(node)] = rules
