"""Resilience primitives: fault isolation, degradation ladder, artifact cache.

The paper's pitch is instruction selection robust enough to run *inside*
a JIT: it must never take down the host compiler, even on hostile
grammars, forests, or artifact caches.  This module holds the runtime
side of that story — the static side is the PR 6 completeness
certifier — as three small, composable pieces:

* :class:`SelectionFailure` — the structured record a fault-isolated
  batch (``select_many(on_error="isolate")``) returns *in place of* a
  faulted forest's values: which forest, which phase (validate / label
  / reduce), the exception, and the IR node being processed when the
  fault fired.  The rest of the batch completes normally.
* :class:`BuildBudget` — a resource budget for the eager (offline)
  table build: a state-pool cap plus a wall-clock deadline.  A build
  that exceeds either is *demoted* to on-demand mode instead of
  shipping silently-incomplete "eager" tables.
* :class:`ArtifactCache` — a fingerprint-keyed, compile-on-miss AOT
  artifact cache implementing the full graceful-degradation ladder:
  load → (retry transient IO with exponential backoff + jitter) →
  quarantine corrupt/stale files (``.bad`` rename, so a poisoned cache
  entry is rebuilt once instead of re-read forever) → in-process
  compile under a budget → atomic save.

Every demotion, isolation, retry, and quarantine is counted; selectors
surface their counters under ``stats()["resilience"]`` and the cache
under :meth:`ArtifactCache.stats`, so operators can observe a degraded
deployment instead of discovering it from latency graphs.
"""

from __future__ import annotations

import dataclasses
import os
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.errors import (
    ArtifactIOError,
    DeadlineExceededError,
    ResilienceError,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (selector imports us)
    from repro.grammar.grammar import Grammar
    from repro.ir.node import Node
    from repro.selection.selector import Selector, SelectorConfig

__all__ = [
    "DEADLINE_CHECK_EVERY",
    "ArtifactCache",
    "BuildBudget",
    "SelectionFailure",
    "attach_node_provenance",
    "check_deadline",
    "node_provenance",
]

#: Hot-loop stride between cooperative deadline checks: one
#: ``monotonic_ns`` call per this many labeled nodes / reduced frames
#: bounds both the check overhead and the overshoot past the deadline.
DEADLINE_CHECK_EVERY = 64


def check_deadline(deadline_at_ns: int, phase: str) -> None:
    """Raise :class:`~repro.errors.DeadlineExceededError` if the
    absolute monotonic instant *deadline_at_ns* has passed.

    The cooperative-cancellation primitive behind request deadlines:
    the label walks, the reducer frame loop, the emission tape's
    compile walk and sweep, and the eager build's inner fill loop call
    this every :data:`DEADLINE_CHECK_EVERY` steps when a deadline is
    set.
    """
    if time.monotonic_ns() > deadline_at_ns:
        raise DeadlineExceededError(f"request deadline exceeded during {phase}")

#: Attribute used to carry IR-node provenance on in-flight exceptions.
_PROVENANCE_ATTR = "_repro_fault_node"


def attach_node_provenance(exc: BaseException, node: "Node") -> None:
    """Record the IR node being processed when *exc* was raised.

    First attachment wins: the deepest frame that knows the node tags
    the exception, outer wrappers leave it alone.  Attachment is best
    effort — exotic exception objects that reject attributes are left
    untagged rather than masking the original error.
    """
    if getattr(exc, _PROVENANCE_ATTR, None) is None:
        try:
            setattr(exc, _PROVENANCE_ATTR, f"{node.op.name}(nid={node.nid})")
        except Exception:  # pragma: no cover - slotted/frozen exception
            pass


def node_provenance(exc: BaseException) -> str | None:
    """The node-provenance tag attached to *exc*, if any."""
    tag = getattr(exc, _PROVENANCE_ATTR, None)
    return tag if isinstance(tag, str) else None


@dataclass
class SelectionFailure:
    """One forest's structured failure inside a fault-isolated batch.

    Returned *in place of* the forest's per-root value list by
    ``select_many(on_error="isolate")``; the exception is contained,
    the shared emission state rolled back (the frame reducer pops its
    memo tail, the tape emitter truncates its value buffer and slot
    table), and the rest of the batch completes.

    Attributes:
        index: Position of the faulted forest in the input batch.
        forest: The forest's ``name``.
        phase: Pipeline phase that faulted: ``"validate"``, ``"label"``,
            or ``"reduce"``.
        error: The contained exception object.
        node: Provenance of the IR node being processed when the fault
            fired (``"OP(nid=n)"``), when the engine could attach it.
        roots_completed: Roots of this forest fully reduced before the
            fault (their side effects on the emit context stand; their
            memo entries were rolled back).
    """

    index: int
    forest: str
    phase: str
    error: Exception
    node: str | None = None
    roots_completed: int = 0

    @property
    def error_type(self) -> str:
        """Class name of the contained exception."""
        return type(self.error).__name__

    def as_row(self) -> dict[str, object]:
        """Flat JSON-ready view (the exception rendered as strings)."""
        return {
            "index": self.index,
            "forest": self.forest,
            "phase": self.phase,
            "error_type": self.error_type,
            "error": str(self.error),
            "node": self.node,
            "roots_completed": self.roots_completed,
        }

    def __repr__(self) -> str:
        at = f" at {self.node}" if self.node else ""
        return (
            f"SelectionFailure(forest={self.forest!r}, phase={self.phase!r}, "
            f"{self.error_type}: {self.error}{at})"
        )


@dataclass(frozen=True)
class BuildBudget:
    """Resource budget for the eager (offline) table build.

    Attributes:
        max_states: State-pool cap; construction interning more states
            stops the build.
        deadline_ns: Wall-clock budget in nanoseconds; a build still
            running past it stops between construction steps.

    A budgeted :meth:`~repro.selection.selector.Selector.compile` that
    trips either limit *demotes* the selector to on-demand mode (the
    partial tables stay warm, labeling falls back to on-demand
    construction for whatever is missing) and counts the demotion under
    ``stats()["resilience"]["demotions"]["build_budget"]`` — the
    middle rung of the degradation ladder.
    """

    max_states: int | None = None
    deadline_ns: int | None = None


def new_resilience_counters() -> dict[str, Any]:
    """A fresh ``stats()["resilience"]`` counter block.

    * ``isolated_failures`` — forests contained by ``on_error="isolate"``;
    * ``failures_by_phase`` — the same, split by pipeline phase;
    * ``demotions`` — degradation-ladder steps taken, by cause
      (``load_failed`` artifact → in-process compile, ``build_budget``
      eager → on-demand, ``packed_miss`` packed matrices → dict tables,
      ``packed_stale`` packed matrices dropped after a grammar
      extension);
    * ``retries`` / ``quarantined`` — artifact-cache recovery actions
      attributed to this selector's cache interactions;
    * ``deadline_overruns`` — selections aborted by a request-budget
      deadline (:class:`~repro.errors.DeadlineExceededError`), which
      propagates even under ``on_error="isolate"``.
    """
    return {
        "isolated_failures": 0,
        "failures_by_phase": {"validate": 0, "label": 0, "reduce": 0},
        "demotions": {
            "load_failed": 0,
            "build_budget": 0,
            "packed_miss": 0,
            "packed_stale": 0,
        },
        "retries": 0,
        "quarantined": 0,
        "deadline_overruns": 0,
    }


# ----------------------------------------------------------------------
# Fingerprint-keyed artifact cache (compile-on-miss, quarantine, retry)


@dataclass
class _CacheStats:
    hits: int = 0
    misses: int = 0
    compiles: int = 0
    loads_failed: int = 0
    retries: int = 0
    quarantined: int = 0
    saves_failed: int = 0
    events: list[str] = field(default_factory=list)


class ArtifactCache:
    """A fingerprint-keyed AOT artifact cache with compile-on-miss.

    One directory holds one artifact per grammar fingerprint
    (``<fingerprint>.rsel``) — exactly a code cache.  ``selector_for``
    returns a ready selector for a grammar, walking the degradation
    ladder as far as it must:

    1. **Load** the cached artifact (cold start ≈ load, not build).
    2. **Retry** transient IO failures (:class:`ArtifactIOError`) with
       exponential backoff plus deterministic jitter, bounded by
       *retries* — a concurrent writer or flaky filesystem gets a
       second chance instead of forcing a rebuild.
    3. **Quarantine** corrupt or stale artifacts: the file is renamed
       to ``<name>.bad`` (best effort) so the poisoned entry is rebuilt
       once instead of being re-read — and failing — forever.
    4. **Compile in-process** (under *budget*, when given) and save the
       artifact back **atomically**; a save failure degrades to serving
       the in-process selector without a cache entry.

    Every step is counted in :meth:`stats`, and the counters of the
    returned selector (``stats()["resilience"]``) absorb the retries
    and quarantines its construction caused.

    The jitter RNG is seedable (*seed*) so chaos tests reproduce exact
    retry schedules; *base_delay* of ``0`` disables sleeping entirely.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        retries: int = 4,
        base_delay: float = 0.005,
        max_delay: float = 0.25,
        seed: int | None = None,
        obs: "object | None" = None,
    ) -> None:
        if retries < 0:
            raise ResilienceError(f"ArtifactCache retries must be >= 0, got {retries}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.retries = retries
        self.base_delay = base_delay
        self.max_delay = max_delay
        self._rng = random.Random(seed)
        self._stats = _CacheStats()
        #: Observability bundle: cache operations record
        #: ``artifact.*`` spans and ``artifact_cache_ops_total{op=...}``
        #: counters, and selectors built or loaded through this cache
        #: inherit the bundle (unless their config already carries one).
        from repro.obs import resolve_obs

        self._obs = resolve_obs(obs)

    # ------------------------------------------------------------------

    def path_for(self, grammar: "Grammar") -> Path:
        """The cache path of *grammar*'s artifact (fingerprint-keyed)."""
        from repro.selection.selector import grammar_fingerprint

        return self.directory / f"{grammar_fingerprint(grammar)}.rsel"

    def _backoff(self, attempt: int) -> None:
        """Sleep ``base * 2^attempt`` capped at *max_delay*, with jitter."""
        if self.base_delay <= 0:
            return
        delay = min(self.base_delay * (2**attempt), self.max_delay)
        time.sleep(delay * (0.5 + self._rng.random()))

    def _quarantine(self, path: Path) -> Path | None:
        """Rename a poisoned artifact to ``<name>.bad`` (best effort)."""
        target = path.with_name(path.name + ".bad")
        start_ns = time.monotonic_ns() if self._obs.tracer.enabled else None
        try:
            os.replace(path, target)
        except OSError:
            # A concurrent reader may have quarantined it first; either
            # way the cache slot is clear for the rebuild.
            return None
        self._stats.quarantined += 1
        self._stats.events.append(f"quarantined {target.name}")
        if start_ns is not None:
            self._obs.tracer.record(
                "artifact.quarantine", start_ns, time.monotonic_ns(), path=path.name
            )
        if self._obs.enabled:
            self._obs.metrics.counter("artifact_cache_ops_total", op="quarantine").inc()
        return target

    def selector_for(
        self,
        grammar: "Grammar",
        config: "SelectorConfig | None" = None,
        *,
        budget: "BuildBudget | None" = None,
    ) -> "Selector":
        """A ready selector for *grammar*: load from cache or compile on miss.

        Never raises on a bad cache entry — the ladder bottoms out at
        an in-process on-demand selector.  Only programming errors
        (bad arguments) and exceptions from the grammar itself escape.
        """
        from repro.selection.selector import Selector, SelectorConfig

        obs = self._obs
        tracer = obs.tracer
        if obs.enabled:
            # Selectors served by this cache share its bundle, unless
            # the caller's config already wired its own.
            if config is None:
                config = SelectorConfig(observe=obs)
            elif config.observe is None:
                config = dataclasses.replace(config, observe=obs)

        path = self.path_for(grammar)
        load_error: Exception | None = None
        attempt = 0
        quarantined_now = 0
        while path.exists():
            load_start = time.monotonic_ns() if tracer.enabled else None
            try:
                selector = Selector.load(path, grammar, config)
            except ArtifactIOError as exc:
                if attempt >= self.retries:
                    load_error = exc
                    self._stats.loads_failed += 1
                    break
                self._stats.retries += 1
                if obs.enabled:
                    obs.metrics.counter("artifact_cache_ops_total", op="retry").inc()
                self._backoff(attempt)
                attempt += 1
                continue
            except Exception as exc:  # corrupt, stale, or unexpected
                load_error = exc
                self._stats.loads_failed += 1
                if self._quarantine(path) is not None:
                    quarantined_now = 1
                break
            else:
                self._stats.hits += 1
                if load_start is not None:
                    tracer.record(
                        "artifact.load",
                        load_start,
                        time.monotonic_ns(),
                        path=path.name,
                        attempts=attempt + 1,
                    )
                if obs.enabled:
                    obs.metrics.counter("artifact_cache_ops_total", op="load").inc()
                selector._resilience["retries"] += attempt
                return selector
        else:
            self._stats.misses += 1

        # Compile-on-miss (or after a failed load): in-process build.
        self._stats.compiles += 1
        compile_start = time.monotonic_ns() if tracer.enabled else None
        selector = Selector(grammar, mode="ondemand", config=config)
        if load_error is not None:
            selector._resilience["demotions"]["load_failed"] += 1
            selector._resilience["retries"] += attempt
            selector._resilience["quarantined"] += quarantined_now
            selector._last_degradation = (
                f"load_failed: {type(load_error).__name__}: {load_error}; "
                f"compiled in-process"
            )
        selector.compile(budget=budget)
        self._save_back(selector, path)
        if compile_start is not None:
            tracer.record(
                "artifact.compile",
                compile_start,
                time.monotonic_ns(),
                path=path.name,
                after_load_failure=load_error is not None,
            )
        if obs.enabled:
            obs.metrics.counter("artifact_cache_ops_total", op="compile").inc()
        return selector

    def _save_back(self, selector: "Selector", path: Path) -> None:
        """Atomically publish a freshly compiled artifact (best effort).

        Save failures are retried with backoff, then absorbed: the
        in-process selector is perfectly serviceable without a cache
        entry, so a read-only or full cache directory degrades
        throughput (every cold start compiles), not correctness.
        """
        for attempt in range(self.retries + 1):
            try:
                selector.save(path)
                return
            except (ArtifactIOError, OSError):
                if attempt >= self.retries:
                    self._stats.saves_failed += 1
                    self._stats.events.append(f"save failed for {path.name}")
                    return
                self._stats.retries += 1
                self._backoff(attempt)

    def stats(self) -> dict[str, object]:
        """Counter snapshot: hits, misses, compiles, retries, quarantines."""
        stats = self._stats
        return {
            "directory": str(self.directory),
            "hits": stats.hits,
            "misses": stats.misses,
            "compiles": stats.compiles,
            "loads_failed": stats.loads_failed,
            "retries": stats.retries,
            "quarantined": stats.quarantined,
            "saves_failed": stats.saves_failed,
            "events": list(stats.events),
        }

    def __repr__(self) -> str:
        stats = self._stats
        return (
            f"ArtifactCache({str(self.directory)!r}, hits={stats.hits}, "
            f"misses={stats.misses}, quarantined={stats.quarantined})"
        )
