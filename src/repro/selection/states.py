"""Hash-consed tree-parsing automaton states.

A *state* summarises everything the automaton needs to know about a
subtree: for each nonterminal, the **delta cost** of deriving the
subtree from that nonterminal (relative to the cheapest nonterminal,
per :func:`~repro.grammar.costs.normalize_costs`) and the rule that
starts the cheapest such derivation.  Normalisation is what keeps the
state set finite: two cost vectors differing by a constant select the
same rules everywhere above them, so they are interned as one state.

States are hash-consed through a :class:`StatePool`: the signature is
the sorted tuple of ``(nonterminal, delta cost, rule number)`` triples,
so structurally identical labeling results share one state object and
one transition-table entry.
"""

from __future__ import annotations

from typing import Iterator

from repro.grammar.costs import INFINITE, is_finite, normalize_costs
from repro.grammar.rule import Rule

__all__ = ["State", "StatePool", "state_signature"]

#: The hash-consing key of a state: sorted (nonterminal, delta, rule#) triples.
Signature = tuple[tuple[str, int, int], ...]


def state_signature(costs: dict[str, int], rules: dict[str, Rule]) -> Signature:
    """The hash-consing signature of a normalized (costs, rules) pair."""
    return tuple(
        sorted((nt, cost, rules[nt].number) for nt, cost in costs.items() if is_finite(cost))
    )


class State:
    """One interned automaton state.

    Attributes:
        index: Dense id within the owning pool (used as transition key).
        costs: Nonterminal → normalized delta cost (finite entries only;
            missing nonterminals are not derivable).
        rules: Nonterminal → rule starting its cheapest derivation.
        signature: The hash-consing key this state was interned under.
    """

    __slots__ = ("index", "costs", "rules", "signature")

    def __init__(
        self,
        index: int,
        costs: dict[str, int],
        rules: dict[str, Rule],
        signature: Signature,
    ) -> None:
        self.index = index
        self.costs = costs
        self.rules = rules
        self.signature = signature

    def cost_of(self, nonterminal: str) -> int:
        """Delta cost of deriving this state from *nonterminal*."""
        return self.costs.get(nonterminal, INFINITE)

    def rule_for(self, nonterminal: str) -> Rule | None:
        """Rule starting the cheapest derivation from *nonterminal*."""
        return self.rules.get(nonterminal)

    def nonterminals(self) -> list[str]:
        """Derivable nonterminals, sorted."""
        return sorted(self.costs)

    @property
    def is_error(self) -> bool:
        """True for the state of subtrees no rule can derive."""
        return not self.costs

    def describe(self) -> str:
        """Multi-line burg-style dump (one nonterminal per line)."""
        lines = [f"state {self.index}:"]
        for nt, cost, number in self.signature:
            lines.append(f"  {nt}: rule {number} (+{cost})")
        if self.is_error:
            lines.append("  <error state: no derivations>")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"State(#{self.index}, nts={len(self.costs)})"


class StatePool:
    """Hash-consing intern table for :class:`State` objects."""

    def __init__(self) -> None:
        self._by_signature: dict[Signature, State] = {}
        self.states: list[State] = []

    def intern(self, costs: dict[str, int], rules: dict[str, Rule]) -> tuple[State, bool]:
        """Intern a raw (costs, rules) labeling result.

        Costs are normalized to delta costs and infinite entries dropped
        before the signature lookup.  Returns ``(state, created)`` where
        *created* is True when a new state had to be allocated.
        """
        normalized = normalize_costs(costs)
        finite_costs = {nt: cost for nt, cost in normalized.items() if is_finite(cost)}
        finite_rules = {nt: rules[nt] for nt in finite_costs}
        signature = state_signature(finite_costs, finite_rules)
        state = self._by_signature.get(signature)
        if state is not None:
            return state, False
        state = State(len(self.states), finite_costs, finite_rules, signature)
        self.states.append(state)
        self._by_signature[signature] = state
        return state, True

    def __len__(self) -> int:
        return len(self.states)

    def __iter__(self) -> Iterator[State]:
        return iter(self.states)

    def describe(self) -> str:
        """Dump of every interned state."""
        return "\n".join(state.describe() for state in self.states)
