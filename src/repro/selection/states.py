"""Hash-consed tree-parsing automaton states, integer-indexed.

A *state* summarises everything the automaton needs to know about a
subtree: for each nonterminal, the **delta cost** of deriving the
subtree from that nonterminal (relative to the cheapest nonterminal,
per :func:`~repro.grammar.costs.normalize_costs`) and the rule that
starts the cheapest such derivation.  Normalisation is what keeps the
state set finite: two cost vectors differing by a constant select the
same rules everywhere above them, so they are interned as one state.

The warm path never touches strings: the owning :class:`StatePool`
interns nonterminals to dense ids, and each state stores its costs and
rules as flat lists indexed by nonterminal id (:attr:`State.cost_vec`,
:attr:`State.rule_vec`).  The string-keyed :attr:`State.costs` /
:attr:`State.rules` views and the :meth:`State.cost_of` /
:meth:`State.rule_for` accessors are kept for existing callers and
built lazily from the vectors.

States are hash-consed through a :class:`StatePool`: the signature is
the sorted tuple of ``(nonterminal, delta cost, rule number)`` triples,
so structurally identical labeling results share one state object and
one transition-table entry.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.grammar.costs import INFINITE, is_finite, normalize_costs
from repro.grammar.rule import Rule

__all__ = ["State", "StatePool", "state_signature"]

#: The hash-consing key of a state: sorted (nonterminal, delta, rule#) triples.
Signature = tuple[tuple[str, int, int], ...]


def state_signature(costs: dict[str, int], rules: dict[str, Rule]) -> Signature:
    """The hash-consing signature of a normalized (costs, rules) pair."""
    return tuple(
        sorted((nt, cost, rules[nt].number) for nt, cost in costs.items() if is_finite(cost))
    )


class State:
    """One interned automaton state.

    Attributes:
        index: Dense id within the owning pool (used as transition key).
        cost_vec: Flat list of normalized delta costs indexed by the
            pool's nonterminal ids (:data:`~repro.grammar.costs.INFINITE`
            where the nonterminal is not derivable).
        rule_vec: Flat list, indexed like :attr:`cost_vec`, of the rules
            starting the cheapest derivations (``None`` where none).
        signature: The hash-consing key this state was interned under.
    """

    __slots__ = ("index", "cost_vec", "rule_vec", "signature", "_nt_ids", "_costs", "_rules")

    def __init__(
        self,
        index: int,
        cost_vec: list[int],
        rule_vec: list["Rule | None"],
        signature: Signature,
        nt_ids: dict[str, int],
    ) -> None:
        self.index = index
        self.cost_vec = cost_vec
        self.rule_vec = rule_vec
        self.signature = signature
        self._nt_ids = nt_ids
        self._costs: dict[str, int] | None = None
        self._rules: dict[str, Rule] | None = None

    # ------------------------------------------------------------------
    # Integer-indexed accessors (the warm path)

    def cost_at(self, nt_id: int) -> int:
        """Delta cost of deriving this state from nonterminal id *nt_id*."""
        vec = self.cost_vec
        return vec[nt_id] if nt_id < len(vec) else INFINITE

    def rule_at(self, nt_id: int) -> Rule | None:
        """Rule starting the cheapest derivation from nonterminal id *nt_id*."""
        vec = self.rule_vec
        return vec[nt_id] if nt_id < len(vec) else None

    # ------------------------------------------------------------------
    # String-keyed compatibility accessors

    @property
    def costs(self) -> dict[str, int]:
        """Nonterminal → delta cost view (finite entries only), built lazily."""
        if self._costs is None:
            self._costs = {nt: cost for nt, cost, _ in self.signature}
        return self._costs

    @property
    def rules(self) -> dict[str, Rule]:
        """Nonterminal → rule view (derivable nonterminals only), built lazily."""
        if self._rules is None:
            self._rules = {nt: self.rule_vec[self._nt_ids[nt]] for nt, _, _ in self.signature}
        return self._rules

    def cost_of(self, nonterminal: str) -> int:
        """Delta cost of deriving this state from *nonterminal*."""
        nt_id = self._nt_ids.get(nonterminal)
        return INFINITE if nt_id is None else self.cost_at(nt_id)

    def rule_for(self, nonterminal: str) -> Rule | None:
        """Rule starting the cheapest derivation from *nonterminal*."""
        nt_id = self._nt_ids.get(nonterminal)
        return None if nt_id is None else self.rule_at(nt_id)

    def nonterminals(self) -> list[str]:
        """Derivable nonterminals, sorted."""
        return [nt for nt, _, _ in self.signature]

    @property
    def is_error(self) -> bool:
        """True for the state of subtrees no rule can derive."""
        return not self.signature

    def describe(self) -> str:
        """Multi-line burg-style dump (one nonterminal per line)."""
        lines = [f"state {self.index}:"]
        for nt, cost, number in self.signature:
            lines.append(f"  {nt}: rule {number} (+{cost})")
        if self.is_error:
            lines.append("  <error state: no derivations>")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"State(#{self.index}, nts={len(self.signature)})"


class StatePool:
    """Hash-consing intern table for :class:`State` objects.

    The pool owns the nonterminal interning shared by all its states:
    :attr:`nt_ids` maps nonterminal names to the dense ids that index
    every state's vectors.  Construct the pool with the grammar's
    nonterminals so ids are assigned once, at automaton-sync time;
    unknown nonterminals reaching :meth:`intern` are interned on the
    fly (later states simply get longer vectors — :meth:`State.cost_at`
    treats out-of-range ids as not derivable).
    """

    def __init__(self, nonterminals: Iterable[str] = ()) -> None:
        self.nt_ids: dict[str, int] = {}
        self.nt_names: list[str] = []
        for nonterminal in nonterminals:
            self.declare(nonterminal)
        self._by_signature: dict[Signature, State] = {}
        self.states: list[State] = []

    def declare(self, nonterminal: str) -> int:
        """Intern *nonterminal* (idempotent) and return its dense id."""
        nt_id = self.nt_ids.get(nonterminal)
        if nt_id is None:
            nt_id = len(self.nt_names)
            self.nt_ids[nonterminal] = nt_id
            self.nt_names.append(nonterminal)
        return nt_id

    def intern(self, costs: dict[str, int], rules: dict[str, Rule]) -> tuple[State, bool]:
        """Intern a raw (costs, rules) labeling result.

        Costs are normalized to delta costs and infinite entries dropped
        before the signature lookup.  Returns ``(state, created)`` where
        *created* is True when a new state had to be allocated.
        """
        normalized = normalize_costs(costs)
        finite_costs = {nt: cost for nt, cost in normalized.items() if is_finite(cost)}
        signature = state_signature(finite_costs, rules)
        state = self._by_signature.get(signature)
        if state is not None:
            return state, False
        for nonterminal in finite_costs:
            self.declare(nonterminal)
        cost_vec = [INFINITE] * len(self.nt_names)
        rule_vec: list[Rule | None] = [None] * len(self.nt_names)
        for nonterminal, cost in finite_costs.items():
            nt_id = self.nt_ids[nonterminal]
            cost_vec[nt_id] = cost
            rule_vec[nt_id] = rules[nonterminal]
        state = State(len(self.states), cost_vec, rule_vec, signature, self.nt_ids)
        self.states.append(state)
        self._by_signature[signature] = state
        return state, True

    def __len__(self) -> int:
        return len(self.states)

    def __iter__(self) -> Iterator[State]:
        return iter(self.states)

    def describe(self) -> str:
        """Dump of every interned state."""
        return "\n".join(state.describe() for state in self.states)
