"""The :class:`Selector` facade: one object owning grammar → tables → selection.

The paper's central trade-off — on-demand automata versus offline table
generation — used to be spread over several entry points (``label_dp``,
``OnDemandAutomaton``, ``build_eager()``, string specs in
``make_labeler``, a separate ``Reducer``).  ``Selector`` packages the
whole lifecycle behind one public API:

* ``Selector(grammar, mode="dp" | "ondemand" | "eager")`` picks the
  labeling architecture; ``mode="eager"`` precomputes all reachable
  transitions at construction time.
* ``.label(forest)`` / ``.label_many(forests)`` label; ``.select(...)``
  / ``.select_many(...)`` run the full label + reduce + emit pipeline
  and return values plus a :class:`SelectionReport`.
* ``.compile()`` runs the eager (offline) build on demand-mode
  selectors; ``.save(path)`` / ``Selector.load(path, grammar)`` persist
  and restore the compiled tables — the ahead-of-time path.
* ``.stats()`` unifies the previously-split views (automaton table
  stats, :class:`~repro.metrics.counters.LabelMetrics` hit/warm rates,
  :class:`SelectionReport` per-phase nanoseconds) into one dict.

Ahead-of-time artifacts
-----------------------
``save`` serializes the interned nonterminal and operator id spaces,
the hash-consed state set, and every per-operator transition table into
**dense integer matrices** (``array('q')`` buffers): unary transitions
become one flat ``state_count``-sized vector per operator, binary
transitions one ``state_count²`` matrix indexed by ``s0 * size + s1``.
The same matrices are both the wire format and an optional runtime fast
path (:class:`PackedTables`, enabled with ``SelectorConfig(packed=
True)``) — the stepping stone to the C-accelerated-tables roadmap item,
where the identical buffers can be handed to a native kernel.

Artifacts are keyed by a **grammar fingerprint** (a SHA-256 over the
grammar's structure: operators, nonterminals, and every rule's shape,
cost, template, and dynamic-callable identity).  ``load`` refuses a
mismatched or stale grammar, verifies a payload checksum (so truncated
or corrupted files fail loudly), and rehydrates the automaton's
transition tables completely: a loaded selector labels the grammar's
workloads with **zero table misses from first contact**, without paying
the eager build.  Rules themselves are *not* serialized — their
actions, constraints, and dynamic costs are Python callables — they are
re-bound by rule number from the grammar supplied to ``load``, which is
what the fingerprint guards.

Extending the grammar after a load behaves exactly like extending under
a live automaton: the version bump invalidates the loaded tables (and
the packed matrices), and labeling falls back to on-demand rebuilding.

The module doubles as the AOT command-line tool::

    python -m repro.selection.selector compile <grammar> <out.rsel>
    python -m repro.selection.selector inspect <out.rsel>

where ``<grammar>`` is either a path to a burg-style grammar text file
or a ``module:attr`` spec naming a :class:`~repro.grammar.grammar.
Grammar` (or a zero-argument callable returning one), e.g.
``repro.bench.workloads:bench_grammar``.
"""

from __future__ import annotations

import argparse
import hashlib
import importlib
import json
import os
import struct
import sys
import time
from array import array
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable

from repro.errors import (
    ArtifactCorruptError,
    ArtifactIOError,
    ArtifactStaleError,
    CoverError,
    DeadlineExceededError,
    SelectorError,
)
from repro.grammar.grammar import Grammar
from repro.ir.node import Forest, Node
from repro.ir.validate import validate_forest
from repro.metrics.counters import LabelMetrics
from repro.selection.automaton import (
    _NULL_METRICS,
    UNEVALUATED,
    AutomatonLabeling,
    OnDemandAutomaton,
)
from repro.obs import resolve_obs
from repro.selection.cover import Labeling, extract_cover
from repro.selection.label_dp import DPLabeler
from repro.selection.reducer import Reducer
from repro.selection.tape import TapeCache, TapeEmitter
from repro.selection.resilience import (
    BuildBudget,
    SelectionFailure,
    check_deadline,
    new_resilience_counters,
    node_provenance,
)
from repro.selection.states import State

__all__ = [
    "MODES",
    "ON_ERROR_POLICIES",
    "PackedTables",
    "SelectionReport",
    "SelectionResult",
    "Selector",
    "SelectorConfig",
    "grammar_fingerprint",
    "main",
    "read_artifact_header",
    "resolve_grammar",
]

#: The selector modes: the paper's three labeling architectures.
MODES = ("dp", "ondemand", "eager")

#: Batch error policies for ``select``/``select_many`` (see
#: :meth:`Selector.select_many`).
ON_ERROR_POLICIES = ("raise", "isolate")

#: Emission engines selectable via :attr:`SelectorConfig.emitter`.
EMITTERS = ("tape", "reducer")

_MAGIC = b"RSELTBL1"
_FORMAT_VERSION = 1
_HEADER_LEN_STRUCT = struct.Struct("<I")

#: Wire encoding of :data:`~repro.selection.automaton.UNEVALUATED`
#: (``None``) inside dynamic-signature vectors.  Real signature entries
#: are non-negative costs, so ``-1`` cannot collide.
_SIG_UNEVALUATED = -1


# ----------------------------------------------------------------------
# Grammar fingerprinting


def _callable_tag(fn: Any) -> str:
    """A stable identity tag for a dynamic-cost/constraint callable."""
    if fn is None:
        return "-"
    module = getattr(fn, "__module__", "?")
    name = getattr(fn, "__qualname__", getattr(fn, "__name__", "?"))
    return f"{module}.{name}"


def grammar_fingerprint(grammar: Grammar) -> str:
    """SHA-256 fingerprint of a grammar's table-relevant structure.

    Covers the operator dialect, nonterminal ordering, and every rule's
    number, shape, cost, template, and dynamic-callable identity —
    everything the automaton's tables depend on.  Emit *actions* are
    deliberately excluded: they run at reduction time and do not affect
    table contents, so an action-only change keeps AOT artifacts valid.
    """
    parts = [f"grammar={grammar.name}", f"start={grammar.start}"]
    for op in grammar.operators:
        parts.append(
            f"op={op.name}/{op.arity}/{int(op.is_statement)}/{int(op.has_payload)}"
        )
    parts.append("nts=" + ",".join(grammar.nonterminals))
    for rule in grammar.rules:
        parts.append(
            "|".join(
                (
                    f"rule={rule.number}",
                    rule.lhs,
                    str(rule.pattern),
                    str(rule.cost),
                    rule.template or "-",
                    rule.name or "-",
                    "helper" if rule.is_helper else "-",
                    f"dyn:{_callable_tag(rule.dynamic_cost)}",
                    f"con:{rule.constraint_name or _callable_tag(rule.constraint)}",
                )
            )
        )
    return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Packed (dense-matrix) transition tables


@dataclass
class PackedTables:
    """Per-operator transition tables repacked into flat integer buffers.

    ``unary[op][s0]`` and ``binary[op][s0 * state_count + s1]`` hold the
    successor state index, ``-1`` where the dict tables had no entry.
    Arity ≥ 3 and dynamic-signature transitions stay tuple-keyed
    (``nary`` / ``dyn``) — they are serialized as flat integer runs but
    have no dense-matrix shape.  One representation serves as both the
    save/load wire format and the optional runtime fast path.
    """

    state_count: int
    nullary: dict[str, int]
    unary: dict[str, array]
    binary: dict[str, array]
    nary: dict[str, dict[tuple[int, ...], int]]
    dyn: dict[str, dict[tuple[tuple[int, ...], tuple["int | None", ...]], int]]

    def transition_count(self) -> int:
        """Populated (non ``-1``) transitions across all matrices."""
        total = len(self.nullary)
        for arr in self.unary.values():
            total += sum(1 for idx in arr if idx >= 0)
        for arr in self.binary.values():
            total += sum(1 for idx in arr if idx >= 0)
        total += sum(len(entries) for entries in self.nary.values())
        total += sum(len(entries) for entries in self.dyn.values())
        return total

    def nbytes(self) -> int:
        """Approximate in-memory size of the dense buffers."""
        total = 0
        for arr in self.unary.values():
            total += arr.itemsize * len(arr)
        for arr in self.binary.values():
            total += arr.itemsize * len(arr)
        return total


def _pack_tables(automaton: OnDemandAutomaton) -> PackedTables:
    """Repack the automaton's per-operator dict tables into flat matrices."""
    size = len(automaton.pool)
    packed = PackedTables(size, {}, {}, {}, {}, {})
    for name, table in automaton._tables.items():
        if table.nullary is not None:
            packed.nullary[name] = table.nullary.index
        if table.unary:
            arr = array("q", [-1]) * size
            for child, state in table.unary.items():
                arr[child] = state.index
            packed.unary[name] = arr
        if table.binary:
            arr = array("q", [-1]) * (size * size)
            for c0, row in table.binary.items():
                base = c0 * size
                for c1, state in row.items():
                    arr[base + c1] = state.index
            packed.binary[name] = arr
        if table.nary:
            packed.nary[name] = {key: state.index for key, state in table.nary.items()}
        if table.dyn:
            packed.dyn[name] = {key: state.index for key, state in table.dyn.items()}
    return packed


# ----------------------------------------------------------------------
# Wire format


def _serialize(
    automaton: OnDemandAutomaton,
    packed: PackedTables,
    fingerprint: str,
    certified: bool | None = None,
) -> bytes:
    """Encode the automaton's id spaces + *packed* tables into one blob."""
    pool = automaton.pool
    sections: list[dict[str, object]] = []
    chunks: list[bytes] = []
    offset = 0

    def add_section(kind: str, values: Iterable[int], op: str | None = None) -> None:
        nonlocal offset
        arr = array("q", values)
        data = arr.tobytes()
        entry: dict[str, object] = {"kind": kind, "offset": offset, "items": len(arr)}
        if op is not None:
            entry["op"] = op
        sections.append(entry)
        chunks.append(data)
        offset += len(data)

    # Hash-consed states: per-state signature lengths plus the flattened
    # (nonterminal id, delta cost, rule number) triples.
    lens: list[int] = []
    triples: list[int] = []
    for state in pool.states:
        lens.append(len(state.signature))
        for nt, cost, number in state.signature:
            triples.extend((pool.nt_ids[nt], cost, number))
    add_section("state_lens", lens)
    add_section("state_triples", triples)

    ops_meta: list[dict[str, object]] = []
    for name, table in automaton._tables.items():
        ops_meta.append({"name": name, "op_id": table.op_id, "nullary": packed.nullary.get(name, -1)})
        if name in packed.unary:
            add_section("unary", packed.unary[name], op=name)
        if name in packed.binary:
            add_section("binary", packed.binary[name], op=name)
        if name in packed.nary:
            flat: list[int] = []
            for key, idx in packed.nary[name].items():
                flat.append(len(key))
                flat.extend(key)
                flat.append(idx)
            add_section("nary", flat, op=name)
        if name in packed.dyn:
            flat = []
            for (kid_ids, signature), idx in packed.dyn[name].items():
                flat.append(len(kid_ids))
                flat.extend(kid_ids)
                flat.append(len(signature))
                for value in signature:
                    if value is UNEVALUATED:
                        flat.append(_SIG_UNEVALUATED)
                    elif isinstance(value, int) and value >= 0:
                        flat.append(value)
                    else:
                        raise SelectorError(
                            f"operator {name!r}: dynamic signature value {value!r} "
                            f"is not serializable (only non-negative integer costs are)"
                        )
                flat.append(idx)
            add_section("dyn", flat, op=name)

    payload = b"".join(chunks)
    header = {
        "format": _FORMAT_VERSION,
        "byteorder": sys.byteorder,
        "fingerprint": fingerprint,
        "grammar": automaton.source_grammar.name,
        "start": automaton.source_grammar.start,
        "nonterminals": list(pool.nt_names),
        "states": len(pool),
        "operators": ops_meta,
        "certified": certified,
        "eager": dict(automaton._eager) if automaton._eager is not None else None,
        "sections": sections,
        "payload_len": len(payload),
        "payload_sha256": hashlib.sha256(payload).hexdigest(),
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    return _MAGIC + _HEADER_LEN_STRUCT.pack(len(header_bytes)) + header_bytes + payload


# Syscall indirection for the artifact lifecycle.  The fault-injection
# harness (repro.testing.faults) patches these module-level hooks to
# simulate IO failures, latency, and mid-write crashes at exact syscall
# boundaries without touching the real filesystem layer; production code
# pays one global lookup per call.


def _io_read_bytes(path: Path) -> bytes:
    return path.read_bytes()


def _io_open(path: str, flags: int) -> int:
    return os.open(path, flags, 0o644)


def _io_write(fd: int, data: bytes) -> int:
    return os.write(fd, data)


def _io_fsync(fd: int) -> None:
    os.fsync(fd)


def _io_replace(src: str, dst: str) -> None:
    os.replace(src, dst)


#: Write chunk size of :func:`_atomic_write_bytes` — small enough that a
#: typical artifact spans several write syscalls, giving the mid-write
#: crash tests real boundaries to kill at.
_IO_CHUNK = 8192


def _atomic_write_bytes(path: Path, blob: bytes) -> None:
    """Crash-safe publish: temp file in the same directory + fsync + rename.

    A reader can never observe a partial artifact: it sees either the
    old file (or none) or the complete new one, swapped in atomically by
    ``os.replace`` after the data is fsynced.  The temp name embeds the
    PID so concurrent writers in different processes cannot clobber each
    other's in-flight temp files (the *rename* race is then benign —
    last complete artifact wins, and both are valid).
    """
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    fd: int | None = None
    try:
        fd = _io_open(str(tmp), os.O_WRONLY | os.O_CREAT | os.O_TRUNC)
        view = memoryview(blob)
        written = 0
        while written < len(view):
            written += _io_write(fd, view[written : written + _IO_CHUNK])
        _io_fsync(fd)
        os.close(fd)
        fd = None
        _io_replace(str(tmp), str(path))
    except BaseException as exc:
        if fd is not None:
            try:
                os.close(fd)
            except OSError:
                pass
        # Clean the temp file up after ordinary failures only: a
        # simulated crash (a BaseException from the fault injectors)
        # must leave the partial temp file behind, exactly as a real
        # process death would — that partial file is what the mid-write
        # crash tests then try (and must fail) to load.
        if isinstance(exc, Exception):
            try:
                os.unlink(tmp)
            except OSError:
                pass
        raise


def _read_artifact(path: str | Path) -> tuple[dict, bytes, int]:
    """Read and structurally validate an artifact.

    Returns ``(header, payload, total_bytes)``.  Raises
    :class:`~repro.errors.ArtifactIOError` when the file cannot be read
    at all, and :class:`~repro.errors.ArtifactCorruptError` (both are
    :class:`~repro.errors.SelectorError` subclasses) on a bad magic
    number, truncation anywhere (header length, header body, payload),
    an unknown format version, or a payload checksum mismatch.
    """
    try:
        blob = _io_read_bytes(Path(path))
    except OSError as exc:
        raise ArtifactIOError(f"cannot read selector artifact {path}: {exc}") from exc
    if not blob:
        raise ArtifactCorruptError(f"{path}: empty selector artifact (zero bytes)")
    prefix = len(_MAGIC) + _HEADER_LEN_STRUCT.size
    if blob[: len(_MAGIC)] != _MAGIC[: len(blob)]:
        raise ArtifactCorruptError(f"{path}: not a selector artifact (bad magic)")
    if len(blob) < prefix:
        raise ArtifactCorruptError(
            f"{path}: truncated selector artifact (header cut short)"
        )
    (header_len,) = _HEADER_LEN_STRUCT.unpack_from(blob, len(_MAGIC))
    header_end = prefix + header_len
    if len(blob) < header_end:
        raise ArtifactCorruptError(
            f"{path}: truncated selector artifact (header cut short)"
        )
    try:
        header = json.loads(blob[prefix:header_end].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ArtifactCorruptError(
            f"{path}: corrupt selector artifact header: {exc}"
        ) from exc
    if header.get("format") != _FORMAT_VERSION:
        raise ArtifactCorruptError(
            f"{path}: unsupported artifact format {header.get('format')!r} "
            f"(this build reads format {_FORMAT_VERSION})"
        )
    payload = blob[header_end:]
    if len(payload) != header.get("payload_len"):
        raise ArtifactCorruptError(
            f"{path}: truncated selector artifact "
            f"({len(payload)} payload bytes, header promises {header.get('payload_len')})"
        )
    if hashlib.sha256(payload).hexdigest() != header.get("payload_sha256"):
        raise ArtifactCorruptError(
            f"{path}: corrupt selector artifact (payload checksum mismatch)"
        )
    return header, payload, len(blob)


def read_artifact_header(path: str | Path) -> dict:
    """The validated header of a selector artifact (no grammar required).

    Useful to check an artifact's ``fingerprint``/``grammar`` before
    deciding which grammar to load it with; raises
    :class:`~repro.errors.SelectorError` exactly like ``load`` on
    malformed, truncated, or corrupted files.
    """
    header, _payload, _nbytes = _read_artifact(path)
    return header


def _decode_sections(header: dict, payload: bytes) -> dict[tuple[str, str | None], array]:
    """Decode every payload section into an ``array('q')``, keyed by
    (kind, operator name or None), byte-swapping cross-endian files."""
    need_swap = header.get("byteorder") != sys.byteorder
    out: dict[tuple[str, str | None], array] = {}
    for section in header["sections"]:
        arr = array("q")
        start = section["offset"]
        end = start + 8 * section["items"]
        if end > len(payload):
            raise SelectorError("corrupt selector artifact (section exceeds payload)")
        arr.frombytes(payload[start:end])
        if need_swap:
            arr.byteswap()
        out[(section["kind"], section.get("op"))] = arr
    return out


def _rehydrate(automaton: OnDemandAutomaton, header: dict, payload: bytes) -> PackedTables:
    """Fill a freshly-synced automaton's pool and tables from an artifact.

    Returns the packed-table view (reusing the decoded buffers), so the
    wire format literally becomes the runtime fast path.
    """
    pool = automaton.pool
    saved_nts = header["nonterminals"]
    for nt in saved_nts:
        pool.declare(nt)
    if list(pool.nt_names) != list(saved_nts):
        raise SelectorError(
            "selector artifact does not match the grammar: nonterminal id spaces "
            f"differ ({pool.nt_names[:4]}... vs saved {saved_nts[:4]}...)"
        )
    rules_by_number = {rule.number: rule for rule in automaton.grammar.rules}
    sections = _decode_sections(header, payload)

    lens = sections.get(("state_lens", None))
    triples = sections.get(("state_triples", None))
    if lens is None or triples is None:
        raise SelectorError("corrupt selector artifact (state sections missing)")
    pos = 0
    for index, n in enumerate(lens):
        costs: dict[str, int] = {}
        rules: dict[str, object] = {}
        for _ in range(n):
            nt_id, cost, number = triples[pos], triples[pos + 1], triples[pos + 2]
            pos += 3
            rule = rules_by_number.get(number)
            if rule is None or not 0 <= nt_id < len(saved_nts):
                raise SelectorError(
                    f"selector artifact references rule {number} / nonterminal id "
                    f"{nt_id} the grammar does not define (stale artifact?)"
                )
            nt = saved_nts[nt_id]
            costs[nt] = cost
            rules[nt] = rule
        state, _ = pool.intern(costs, rules)
        if state.index != index:
            raise SelectorError(
                "selector artifact state table does not round-trip against this "
                f"grammar (state {index} interned as {state.index})"
            )
    size = header["states"]
    if len(pool) != size:
        raise SelectorError(
            f"selector artifact promises {size} states, rebuilt {len(pool)}"
        )
    states = pool.states

    def state_at(idx: int) -> State:
        if not 0 <= idx < size:
            raise SelectorError(f"selector artifact references state {idx} of {size}")
        return states[idx]

    packed = PackedTables(size, {}, {}, {}, {}, {})
    for meta in header["operators"]:
        name = meta["name"]
        table = automaton._table_for(name)
        if meta["nullary"] >= 0:
            table.nullary = state_at(meta["nullary"])
            packed.nullary[name] = meta["nullary"]
        unary = sections.get(("unary", name))
        if unary is not None:
            for child, idx in enumerate(unary):
                if idx >= 0:
                    table.unary[child] = state_at(idx)
            packed.unary[name] = unary
        binary = sections.get(("binary", name))
        if binary is not None:
            if len(binary) != size * size:
                raise SelectorError(
                    f"selector artifact binary matrix for {name!r} has "
                    f"{len(binary)} slots, expected {size * size}"
                )
            for slot, idx in enumerate(binary):
                if idx >= 0:
                    c0, c1 = divmod(slot, size)
                    row = table.binary.get(c0)
                    if row is None:
                        row = table.binary[c0] = {}
                    row[c1] = state_at(idx)
            packed.binary[name] = binary
        nary = sections.get(("nary", name))
        if nary is not None:
            entries: dict[tuple[int, ...], int] = {}
            pos = 0
            while pos < len(nary):
                arity = nary[pos]
                key = tuple(nary[pos + 1 : pos + 1 + arity])
                idx = nary[pos + 1 + arity]
                pos += arity + 2
                table.nary[key] = state_at(idx)
                entries[key] = idx
            packed.nary[name] = entries
        dyn = sections.get(("dyn", name))
        if dyn is not None:
            dyn_entries: dict[tuple[tuple[int, ...], tuple["int | None", ...]], int] = {}
            pos = 0
            while pos < len(dyn):
                arity = dyn[pos]
                kid_ids = tuple(dyn[pos + 1 : pos + 1 + arity])
                pos += 1 + arity
                siglen = dyn[pos]
                signature = tuple(
                    UNEVALUATED if value == _SIG_UNEVALUATED else value
                    for value in dyn[pos + 1 : pos + 1 + siglen]
                )
                idx = dyn[pos + 1 + siglen]
                pos += siglen + 2
                table.dyn[(kid_ids, signature)] = state_at(idx)
                dyn_entries[(kid_ids, signature)] = idx
            packed.dyn[name] = dyn_entries
    return packed


# ----------------------------------------------------------------------
# Selection report / result (the pipeline's public dataclasses)


@dataclass
class SelectionReport:
    """What one ``select`` / ``select_many`` call did and cost.

    Counts describe the whole batch; the two ``*_ns`` fields are
    integer ``perf_counter_ns`` measurements of the labeling phase and
    the reduction/emission phase respectively (cover extraction, when
    requested, is *not* timed — it is a verification artifact, not part
    of selection).
    """

    grammar: str
    labeler: str
    forests: int
    roots: int
    #: Distinct nodes per forest, summed (a node shared *between*
    #: forests counts once per forest, mirroring the labeling bench).
    nodes: int
    #: Total cover cost from the start nonterminal, summed over forests
    #: (``None`` when the caller skipped cover collection).
    cover_cost: int | None
    #: Distinct (node, nonterminal) reductions — rule applications.
    reductions: int
    #: Reduction requests answered from the reducer's memo.
    memo_hits: int
    label_ns: int
    reduce_ns: int
    #: Input-validation nanoseconds (0 unless ``config.validate`` is on;
    #: not part of :attr:`total_ns`, mirroring cover extraction).
    validate_ns: int = 0
    #: Forests contained by ``on_error="isolate"`` (0 under ``"raise"``).
    failures: int = 0
    #: Cover-to-tape compilations performed by the tape emitter (0 when
    #: the frame-stack reducer handled emission).
    tapes_compiled: int = 0
    #: Forests emitted by replaying a shape-cached tape instead of
    #: compiling (0 for the frame-stack reducer).
    tape_cache_hits: int = 0

    @property
    def total_ns(self) -> int:
        """Labeling plus reduction/emission nanoseconds."""
        return self.label_ns + self.reduce_ns

    @property
    def ns_per_node(self) -> float:
        return self.total_ns / max(self.nodes, 1)

    @property
    def reduce_fraction(self) -> float:
        """Share of the pipeline spent reducing/emitting (0.0–1.0)."""
        total = self.total_ns
        return self.reduce_ns / total if total > 0 else 0.0

    def as_row(self) -> dict[str, object]:
        """Flat dict for table formatting / JSON reports."""
        return {
            "grammar": self.grammar,
            "labeler": self.labeler,
            "forests": self.forests,
            "roots": self.roots,
            "nodes": self.nodes,
            "cover_cost": self.cover_cost,
            "reductions": self.reductions,
            "memo_hits": self.memo_hits,
            "label_ns": self.label_ns,
            "reduce_ns": self.reduce_ns,
            "validate_ns": self.validate_ns,
            "total_ns": self.total_ns,
            "ns_per_node": self.ns_per_node,
            "reduce_fraction": self.reduce_fraction,
            "failures": self.failures,
            "tapes_compiled": self.tapes_compiled,
            "tape_cache_hits": self.tape_cache_hits,
        }


@dataclass
class SelectionResult:
    """Semantic values plus the report of one pipeline run.

    From ``select_many``, :attr:`values` holds one list of per-root
    semantic values per input forest; ``select`` unwraps the single
    forest, so its :attr:`values` is the per-root list itself.  Under
    ``on_error="isolate"``, a faulted forest's slot holds its
    :class:`~repro.selection.resilience.SelectionFailure` instead of a
    value list (see :attr:`failures`).
    """

    values: list[Any]
    report: SelectionReport
    labeling: Labeling

    @property
    def failures(self) -> list[SelectionFailure]:
        """The :class:`SelectionFailure` entries among :attr:`values`
        (empty for a fully successful, or ``on_error="raise"``, run).

        Works for both shapes of :attr:`values`: the per-forest batch
        list from ``select_many`` and the unwrapped single-forest value
        from ``select`` — where an isolated fault makes ``values`` the
        bare :class:`SelectionFailure` itself.
        """
        if isinstance(self.values, SelectionFailure):
            return [self.values]
        return [value for value in self.values if isinstance(value, SelectionFailure)]

    @property
    def ok(self) -> bool:
        """True when no forest in this result faulted."""
        return not self.failures


# ----------------------------------------------------------------------
# The Selector facade


@dataclass
class SelectorConfig:
    """Tunables of one :class:`Selector`.

    Attributes:
        max_states: State-pool cap handed to the eager build (a runaway
            guard for huge grammars; a capped build leaves valid but
            incomplete tables).
        packed: Label through the flat :class:`PackedTables` matrices
            when a compiled/loaded selector has them (the optional
            runtime fast path; misses fall back to the dict tables).
        collect_cover: Default for ``select``/``select_many``'s
            ``collect_cover`` argument.
        validate: Debug flag: run the structural forest validator
            (:func:`repro.ir.validate.validate_forest`) against the
            grammar's operator set before every ``label``/``label_many``
            call, raising
            :class:`~repro.ir.validate.ForestValidationError` on
            malformed input instead of failing mid-selection.
        emitter: Which emission engine ``select``/``select_many`` run:
            ``"tape"`` (default) compiles covers to flat instruction
            tapes (:class:`~repro.selection.tape.TapeEmitter`, with the
            selector-owned shape cache), ``"reducer"`` keeps the
            frame-stack :class:`~repro.selection.reducer.Reducer` — the
            differential oracle and the fallback for contexts that want
            no caching layer at all.  Dynamic-rule grammars always run
            the frame engine (their covers are identity-dependent, so
            tapes could never be cached and compilation would be pure
            overhead).  Both engines emit byte-identical instruction
            streams.
        observe: Observability wiring: ``None``/``False`` (default)
            disables it — the pipeline pays one attribute check per
            batch; ``True`` builds a private
            :class:`~repro.obs.Observability` bundle; an existing
            bundle shares its tracer/registry with other components
            (artifact cache, service).  When enabled, every
            ``select``/``select_many`` records pipeline-phase spans
            (``pipeline.validate``/``label``/``tape_compile``/
            ``emit``) and feeds the phase histograms and batch
            counters surfaced on ``stats()["obs"]``.
    """

    max_states: int | None = None
    packed: bool = False
    collect_cover: bool = True
    validate: bool = False
    emitter: str = "tape"
    observe: Any = None


class Selector:
    """The public instruction-selection facade (see module docs).

    A selector owns one labeling engine — a
    :class:`~repro.selection.label_dp.DPLabeler` for ``mode="dp"``, an
    :class:`~repro.selection.automaton.OnDemandAutomaton` otherwise —
    and is meant to be long-lived: construct once per grammar, call
    ``label``/``select`` for every forest.  ``Selector.wrap(engine)``
    adopts an already-built engine (e.g. a warm automaton) unchanged.
    """

    def __init__(
        self,
        grammar: Grammar | None = None,
        mode: str = "ondemand",
        config: SelectorConfig | None = None,
        *,
        engine: object | None = None,
    ) -> None:
        self.config = config if config is not None else SelectorConfig()
        if engine is not None:
            if not hasattr(engine, "label_many"):
                raise TypeError(f"labeler object {engine!r} does not expose label_many()")
            self.engine = engine
            source = getattr(engine, "source_grammar", None)
            self.source_grammar = source if source is not None else engine.grammar
        else:
            if grammar is None:
                raise SelectorError("Selector needs a grammar (or an engine to wrap)")
            if mode not in MODES:
                raise ValueError(
                    f"unknown selector mode {mode!r}; expected one of {', '.join(MODES)}"
                )
            self.source_grammar = grammar
            self.engine = DPLabeler(grammar) if mode == "dp" else OnDemandAutomaton(grammar)
        self._packed: PackedTables | None = None
        self._tables_version: int | None = None
        self._loaded_from: str | None = None
        self._build_ns: int | None = None
        self._save_ns: int | None = None
        self._load_ns: int | None = None
        self._artifact_bytes: int | None = None
        self._last_metrics: LabelMetrics | None = None
        self._last_report: SelectionReport | None = None
        self._certified: bool | None = None
        self._certified_version: int | None = None
        self._verify_report: object | None = None
        self._resilience = new_resilience_counters()
        #: Human-readable cause of the most recent degradation-ladder
        #: step (``None`` while fully healthy).
        self._last_degradation: str | None = None
        #: Shape-keyed emission-tape cache, shared by every tape
        #: emitter this selector creates — a long-lived selector
        #: amortises cover compilation across ``select_many`` calls.
        self._tape_cache = TapeCache()
        #: Observability bundle (the process-wide null bundle when
        #: disabled, so hot paths guard with one attribute check).
        self._obs = resolve_obs(self.config.observe)
        if self._obs.enabled:
            metrics = self._obs.metrics
            self._obs_phase_ns = {
                "validate": metrics.histogram("pipeline_phase_ns", phase="validate"),
                "label": metrics.histogram("pipeline_phase_ns", phase="label"),
                "emit": metrics.histogram("pipeline_phase_ns", phase="emit"),
            }
            self._obs_batches = metrics.counter("pipeline_batches_total")
            self._obs_nodes = metrics.counter("pipeline_nodes_total")
            self._obs_failures = metrics.counter("pipeline_failures_total")
            self._obs_tapes = metrics.counter("pipeline_tapes_compiled_total")
            self._obs_tape_hits = metrics.counter("pipeline_tape_cache_hits_total")
        self._totals = {
            "calls": 0,
            "forests": 0,
            "roots": 0,
            "nodes": 0,
            "reductions": 0,
            "memo_hits": 0,
            "label_ns": 0,
            "reduce_ns": 0,
            "failures": 0,
            "tapes_compiled": 0,
            "tape_cache_hits": 0,
        }
        if engine is None and mode == "eager":
            self.compile()

    # ------------------------------------------------------------------
    # Construction helpers

    @classmethod
    def wrap(cls, engine: object, config: SelectorConfig | None = None) -> "Selector":
        """Adopt an already-built labeling engine (pass-through for selectors)."""
        if isinstance(engine, Selector):
            return engine
        return cls(engine=engine, config=config)

    @property
    def grammar(self) -> Grammar:
        """The source grammar this selector selects over."""
        return self.source_grammar

    @property
    def mode(self) -> str:
        """The effective labeling mode (``eager`` once tables are compiled)."""
        engine = self.engine
        if isinstance(engine, DPLabeler):
            return "dp"
        if isinstance(engine, OnDemandAutomaton):
            return "eager" if engine._eager is not None else "ondemand"
        return type(engine).__name__

    def _require_automaton(self, operation: str) -> OnDemandAutomaton:
        engine = self.engine
        if not isinstance(engine, OnDemandAutomaton):
            raise SelectorError(
                f"cannot {operation} a {self.mode!r} selector: only automaton modes "
                f"(ondemand/eager) have transition tables"
            )
        return engine

    # ------------------------------------------------------------------
    # Labeling

    def _packed_for_labeling(self) -> PackedTables | None:
        """The packed matrices, iff enabled and still valid for labeling."""
        if not self.config.packed or self._packed is None:
            return None
        engine = self.engine
        if not isinstance(engine, OnDemandAutomaton):
            return None
        if engine.source_grammar.version != self._tables_version:
            # Grammar extended since compile/load: the matrices index a
            # dead state pool.  Drop them; the engine resyncs lazily.
            self._packed = None
            self._resilience["demotions"]["packed_stale"] += 1
            self._last_degradation = "packed_stale: grammar extended, matrices dropped"
            return None
        if engine.has_dynamic:
            return None
        return self._packed

    def label(self, forest: Forest, metrics: LabelMetrics | None = None) -> Labeling:
        """Label one forest (see :meth:`label_many` for batches)."""
        if self.config.validate:
            validate_forest(forest, self.source_grammar.operators)
        if metrics is None:
            packed = self._packed_for_labeling()
            if packed is not None:
                return self._label_packed(list(forest.roots), packed)
        else:
            self._last_metrics = metrics
        return self.engine.label(forest, metrics)

    def label_many(
        self,
        forests: Iterable[Forest],
        metrics: LabelMetrics | None = None,
        *,
        deadline_at_ns: int | None = None,
    ) -> Labeling:
        """Label a batch of forests in one fused pass (one shared labeling)."""
        if self.config.validate:
            forests = list(forests)
            for forest in forests:
                validate_forest(forest, self.source_grammar.operators)
        return self._label_many_unchecked(forests, metrics, deadline_at_ns)

    def _label_many_unchecked(
        self,
        forests: Iterable[Forest],
        metrics: LabelMetrics | None = None,
        deadline_at_ns: int | None = None,
    ) -> Labeling:
        """:meth:`label_many` minus input validation — the isolated
        pipeline validates per forest itself before labeling.

        A request deadline routes around the packed-matrix walk: the
        engine paths carry the cooperative checks, and a deadlined
        request's latency is dominated by its budget, not by matrix vs
        dict lookups.
        """
        if metrics is None and deadline_at_ns is None:
            packed = self._packed_for_labeling()
            if packed is not None:
                roots = [root for forest in forests for root in forest.roots]
                return self._label_packed(roots, packed)
        elif metrics is not None:
            self._last_metrics = metrics
        return self.engine.label_many(forests, metrics, deadline_at_ns=deadline_at_ns)

    def _label_packed(self, roots: list[Node], packed: PackedTables) -> AutomatonLabeling:
        """The flat-matrix warm loop: one array index per transition.

        Mirrors the automaton's fused static stack walk, but answers
        unary/binary transitions from the packed buffers.  Any miss
        (``-1`` slot, unknown operator, arity ≥ 3, or a child state
        interned after packing) falls back to the dict tables, which
        construct on demand — correctness never depends on the matrices
        being complete.
        """
        automaton = self.engine
        automaton._sync()
        labeling = AutomatonLabeling(automaton, None)
        node_states = labeling._states
        states = automaton.pool.states
        size = packed.state_count
        nullary = packed.nullary
        unary = packed.unary
        binary = packed.binary
        stack = list(roots)
        pop = stack.pop
        push = stack.append
        get_state = node_states.get
        while stack:
            node = pop()
            nid = id(node)
            if nid in node_states:
                continue
            kids = node.kids
            arity = len(kids)
            if arity == 2:
                k0, k1 = kids
                s0 = get_state(id(k0))
                s1 = get_state(id(k1))
                if s0 is None or s1 is None:
                    push(node)
                    if s1 is None:
                        push(k1)
                    if s0 is None:
                        push(k0)
                    continue
                idx = -1
                i0 = s0.index
                i1 = s1.index
                if i0 < size and i1 < size:
                    arr = binary.get(node.op.name)
                    if arr is not None:
                        idx = arr[i0 * size + i1]
                state = states[idx] if idx >= 0 else self._packed_miss(node, node_states)
            elif arity == 0:
                idx = nullary.get(node.op.name, -1)
                state = states[idx] if idx >= 0 else self._packed_miss(node, node_states)
            elif arity == 1:
                k0 = kids[0]
                s0 = get_state(id(k0))
                if s0 is None:
                    push(node)
                    push(k0)
                    continue
                idx = -1
                i0 = s0.index
                if i0 < size:
                    arr = unary.get(node.op.name)
                    if arr is not None:
                        idx = arr[i0]
                state = states[idx] if idx >= 0 else self._packed_miss(node, node_states)
            else:
                deferred = False
                for kid in kids:
                    if id(kid) not in node_states:
                        if not deferred:
                            push(node)
                            deferred = True
                        push(kid)
                if deferred:
                    continue
                state = self._packed_miss(node, node_states)
            node_states[nid] = state
        return labeling

    def _packed_miss(self, node: Node, node_states: dict[int, State]) -> State:
        """Resolve one transition the matrices could not answer through
        the automaton's dict tables (constructing the state if needed).

        Each miss is one rung down the degradation ladder — packed
        matrices → dict tables — and is counted under
        ``stats()["resilience"]["demotions"]["packed_miss"]``.
        """
        self._resilience["demotions"]["packed_miss"] += 1
        automaton = self.engine
        table = automaton._table_for(node.op.name)
        return automaton._static_transition(table, node.kids, node_states, _NULL_METRICS)

    # ------------------------------------------------------------------
    # Selection (label + reduce + emit)

    def select_many(
        self,
        forests: Iterable[Forest],
        *,
        context: Any = None,
        start: str | None = None,
        collect_cover: bool | None = None,
        on_error: str = "raise",
        budget: BuildBudget | None = None,
    ) -> SelectionResult:
        """Select instructions for a batch of forests in one fused pipeline.

        Labels all *forests* with one batched ``label_many`` call,
        reduces every root through one shared :class:`Reducer` (running
        emit actions against *context*), and returns per-forest
        semantic-value lists plus a :class:`SelectionReport`.

        *on_error* picks the batch fault policy:

        * ``"raise"`` (default): the first raising dynamic rule,
          constraint callback, or emission action aborts the whole
          batch, propagating the exception (historical behavior);
        * ``"isolate"``: a faulted forest yields a structured
          :class:`~repro.selection.resilience.SelectionFailure` in its
          ``values`` slot — exception, pipeline phase, and faulting-node
          provenance — while the rest of the batch completes.  The
          shared reducer memo is rolled back past the faulted forest's
          entries, so later forests can never observe its half-emitted
          values.  ``KeyboardInterrupt``/``SystemExit`` (and the fault
          harness's simulated crashes) are never isolated.  Note that
          labeling faults make the engine re-label the batch one forest
          at a time, so a batch containing a labeling fault may invoke
          dynamic callables more than once per node.

        *budget* threads a deadline through the hot loops: a
        :class:`~repro.service.budgets.RequestBudget` (or any
        :class:`BuildBudget` exposing ``deadline_at_ns``) arms
        cooperative cancellation checks in the label walks and the
        emission engine (the reducer's frame loop, or the tape's
        compile walk and sweep).  The resulting
        :class:`~repro.errors.DeadlineExceededError` covers the *whole
        batch* and always propagates — even under
        ``on_error="isolate"`` — because per-request deadline
        accounting belongs to the caller (the service front door).
        """
        if on_error not in ON_ERROR_POLICIES:
            raise ValueError(
                f"unknown on_error policy {on_error!r}; expected one of "
                f"{', '.join(ON_ERROR_POLICIES)}"
            )
        forests = list(forests)
        if collect_cover is None:
            collect_cover = self.config.collect_cover
        deadline_at_ns: int | None = (
            getattr(budget, "deadline_at_ns", None) if budget is not None else None
        )
        try:
            if deadline_at_ns is not None:
                # Upfront check: an already-expired budget fails here
                # regardless of batch size; the strided hot-loop checks
                # only fire every DEADLINE_CHECK_EVERY steps.
                check_deadline(deadline_at_ns, "admission")
            if on_error == "isolate":
                return self._select_many_isolated(
                    forests, context, start, collect_cover, deadline_at_ns
                )
            return self._select_many_raise(
                forests, context, start, collect_cover, deadline_at_ns
            )
        except DeadlineExceededError:
            self._resilience["deadline_overruns"] += 1
            raise

    def _make_emitter(
        self,
        labeling: Labeling,
        context: Any,
        deadline_at_ns: int | None,
    ) -> Reducer:
        """The configured emission engine over *labeling*.

        ``"tape"`` builds a :class:`TapeEmitter` wired to the
        selector-owned :class:`TapeCache`; ``"reducer"`` builds the
        frame-stack :class:`Reducer`.  Both honor the same
        ``reduce_forest``/``memo_size``/``rollback_to`` contract.

        Dynamic-rule grammars route to the frame engine even under
        ``"tape"``: a dynamic cost may read node identity, so shape can
        never determine the cover, tapes can never be cached, and the
        compile-then-sweep split is pure overhead over the frame walk.
        """
        emitter = self.config.emitter
        if emitter == "tape":
            if labeling.grammar.has_dynamic_rules:
                return Reducer(labeling, context, deadline_at_ns=deadline_at_ns)
            return TapeEmitter(
                labeling,
                context,
                deadline_at_ns=deadline_at_ns,
                cache=self._tape_cache,
                tracer=self._obs.tracer if self._obs.enabled else None,
            )
        if emitter == "reducer":
            return Reducer(labeling, context, deadline_at_ns=deadline_at_ns)
        raise ValueError(
            f"unknown emitter {emitter!r}; expected one of {', '.join(EMITTERS)}"
        )

    def _select_many_raise(
        self,
        forests: list[Forest],
        context: Any,
        start: str | None,
        collect_cover: bool,
        deadline_at_ns: int | None,
    ) -> SelectionResult:
        """The historical ``on_error="raise"`` pipeline."""
        validate_ns = 0
        if self.config.validate:
            started = time.perf_counter_ns()
            for forest in forests:
                validate_forest(forest, self.source_grammar.operators)
            validate_ns = time.perf_counter_ns() - started
        started = time.perf_counter_ns()
        labeling = self._label_many_unchecked(forests, None, deadline_at_ns)
        label_ns = time.perf_counter_ns() - started

        engine = self._make_emitter(labeling, context, deadline_at_ns)
        started = time.perf_counter_ns()
        values = [engine.reduce_forest(forest, start) for forest in forests]
        end_ns = time.perf_counter_ns()
        reduce_ns = end_ns - started

        cover_cost: int | None = None
        if collect_cover:
            cover_cost = sum(
                extract_cover(labeling, forest, start).total_cost() for forest in forests
            )

        report = SelectionReport(
            grammar=self.source_grammar.name,
            labeler=self.mode,
            forests=len(forests),
            roots=sum(len(forest.roots) for forest in forests),
            nodes=sum(forest.node_count() for forest in forests),
            cover_cost=cover_cost,
            reductions=engine.reductions,
            memo_hits=engine.memo_hits,
            label_ns=label_ns,
            reduce_ns=reduce_ns,
            validate_ns=validate_ns,
            tapes_compiled=getattr(engine, "tapes_compiled", 0),
            tape_cache_hits=getattr(engine, "tape_cache_hits", 0),
        )
        self._record(report, end_ns)
        return SelectionResult(values=values, report=report, labeling=labeling)

    def _select_many_isolated(
        self,
        forests: list[Forest],
        context: Any,
        start: str | None,
        collect_cover: bool,
        deadline_at_ns: int | None = None,
    ) -> SelectionResult:
        """The fault-isolated pipeline behind ``on_error="isolate"``.

        Happy-path cost over the ``"raise"`` pipeline is one try/except
        per batch plus one memo-size read and one try/except per forest
        — all zero-cost constructs on CPython 3.11+; the per-forest
        probing, rollbacks, and failure records only materialize once
        something actually raises.  Only :class:`Exception` is isolated:
        ``KeyboardInterrupt``, ``SystemExit``, the fault harness's
        simulated crashes, and :class:`DeadlineExceededError` (a
        whole-batch abort, not a per-forest fault) propagate.
        """
        failures: dict[int, SelectionFailure] = {}
        live: list[tuple[int, Forest]] = []
        validate_ns = 0
        if self.config.validate:
            started = time.perf_counter_ns()
            for index, forest in enumerate(forests):
                try:
                    validate_forest(forest, self.source_grammar.operators)
                except Exception as exc:
                    failures[index] = SelectionFailure(
                        index, forest.name, "validate", exc, node_provenance(exc)
                    )
                else:
                    live.append((index, forest))
            validate_ns = time.perf_counter_ns() - started
        else:
            live = list(enumerate(forests))

        # Label phase: one fused batch first (the happy path), per-forest
        # probing only after a batch-aborting fault.  Each survivor then
        # carries its own labeling; forests from an intact batch all
        # share one.
        started = time.perf_counter_ns()
        labeled: list[tuple[int, Forest, Labeling]] = []
        shared_labeling: Labeling | None = None
        try:
            if live:
                shared_labeling = self._label_many_unchecked(
                    [f for _, f in live], None, deadline_at_ns
                )
        except DeadlineExceededError:
            raise
        except Exception:
            shared_labeling = None
        if shared_labeling is not None:
            labeled = [(i, forest, shared_labeling) for i, forest in live]
        else:
            for index, forest in live:
                try:
                    labeling = self._label_many_unchecked([forest], None, deadline_at_ns)
                except DeadlineExceededError:
                    raise
                except Exception as exc:
                    failures[index] = SelectionFailure(
                        index, forest.name, "label", exc, node_provenance(exc)
                    )
                else:
                    labeled.append((index, forest, labeling))
        label_ns = time.perf_counter_ns() - started

        # Reduce phase: one shared emission engine per labeling object.
        # A faulted forest's memo/value-buffer entries are rolled back
        # before the next forest reduces, so half-emitted values are
        # never reused.
        values: list[Any] = [None] * len(forests)
        engines: dict[int, Reducer] = {}
        started = time.perf_counter_ns()
        for index, forest, labeling in labeled:
            engine = engines.get(id(labeling))
            if engine is None:
                engine = engines[id(labeling)] = self._make_emitter(
                    labeling, context, deadline_at_ns
                )
            start_nt = engine.resolve_start(start)
            mark = engine.memo_size()
            try:
                values[index] = engine.reduce_forest(forest, start_nt)
            except DeadlineExceededError:
                engine.rollback_to(mark)
                raise
            except Exception as exc:
                engine.rollback_to(mark)
                failures[index] = SelectionFailure(
                    index,
                    forest.name,
                    "reduce",
                    exc,
                    node_provenance(exc),
                    roots_completed=engine.last_roots_completed,
                )
        end_ns = time.perf_counter_ns()
        reduce_ns = end_ns - started

        cover_cost: int | None = None
        if collect_cover:
            cover_cost = sum(
                extract_cover(labeling, forest, start).total_cost()
                for index, forest, labeling in labeled
                if index not in failures
            )

        for index, failure in failures.items():
            values[index] = failure
        self._resilience["isolated_failures"] += len(failures)
        by_phase = self._resilience["failures_by_phase"]
        for failure in failures.values():
            by_phase[failure.phase] += 1

        report = SelectionReport(
            grammar=self.source_grammar.name,
            labeler=self.mode,
            forests=len(forests),
            roots=sum(len(forest.roots) for forest in forests),
            nodes=sum(forest.node_count() for forest in forests),
            cover_cost=cover_cost,
            reductions=sum(r.reductions for r in engines.values()),
            memo_hits=sum(r.memo_hits for r in engines.values()),
            label_ns=label_ns,
            reduce_ns=reduce_ns,
            validate_ns=validate_ns,
            failures=len(failures),
            tapes_compiled=sum(
                getattr(r, "tapes_compiled", 0) for r in engines.values()
            ),
            tape_cache_hits=sum(
                getattr(r, "tape_cache_hits", 0) for r in engines.values()
            ),
        )
        self._record(report, end_ns)
        result_labeling = shared_labeling
        if result_labeling is None:
            result_labeling = labeled[0][2] if labeled else self.engine.label_many([])
        return SelectionResult(values=values, report=report, labeling=result_labeling)

    def select(
        self,
        forest: Forest,
        *,
        context: Any = None,
        start: str | None = None,
        collect_cover: bool | None = None,
        on_error: str = "raise",
        budget: BuildBudget | None = None,
    ) -> SelectionResult:
        """Select instructions for one forest: label, reduce, emit.

        A convenience wrapper over :meth:`select_many` for the
        single-forest case; the result's values are the per-root list
        of *forest* (not wrapped in a batch list).  Under
        ``on_error="isolate"`` a faulted forest's ``values`` is its
        :class:`~repro.selection.resilience.SelectionFailure` — the
        same one-error contract as a one-forest batch, so service
        workers treat both shapes identically (``result.failures``
        normalizes them).
        """
        result = self.select_many(
            [forest],
            context=context,
            start=start,
            collect_cover=collect_cover,
            on_error=on_error,
            budget=budget,
        )
        return SelectionResult(
            values=result.values[0], report=result.report, labeling=result.labeling
        )

    def _record(self, report: SelectionReport, end_ns: int | None = None) -> None:
        totals = self._totals
        totals["calls"] += 1
        totals["forests"] += report.forests
        totals["roots"] += report.roots
        totals["nodes"] += report.nodes
        totals["reductions"] += report.reductions
        totals["memo_hits"] += report.memo_hits
        totals["label_ns"] += report.label_ns
        totals["reduce_ns"] += report.reduce_ns
        totals["failures"] += report.failures
        totals["tapes_compiled"] += report.tapes_compiled
        totals["tape_cache_hits"] += report.tape_cache_hits
        self._last_report = report
        if self._obs.enabled:
            self._observe_batch(report, end_ns)

    def _observe_batch(self, report: SelectionReport, end_ns: int | None) -> None:
        """Record one batch's spans and metrics (enabled-obs path only).

        Span boundaries are reconstructed backwards from *end_ns* (the
        post-reduce ``perf_counter_ns`` reading) out of the report's
        already-measured phase nanoseconds — the tracer adds no clock
        calls inside the measured windows, so durations are exact; only
        the small inter-phase gaps (emitter construction) are absorbed
        into the reconstruction.
        """
        if end_ns is None:
            end_ns = time.perf_counter_ns()
        emit_start = end_ns - report.reduce_ns
        label_start = emit_start - report.label_ns
        select_start = label_start - report.validate_ns
        tracer = self._obs.tracer
        if tracer.enabled:
            select_id = tracer.next_id()
            if report.validate_ns:
                tracer.record(
                    "pipeline.validate",
                    select_start,
                    label_start,
                    parent_id=select_id,
                    forests=report.forests,
                )
            tracer.record(
                "pipeline.label",
                label_start,
                emit_start,
                parent_id=select_id,
                nodes=report.nodes,
                mode=report.labeler,
            )
            tracer.record(
                "pipeline.emit",
                emit_start,
                end_ns,
                parent_id=select_id,
                reductions=report.reductions,
                failures=report.failures,
            )
            tracer.record(
                "pipeline.select",
                select_start,
                end_ns,
                span_id=select_id,
                grammar=report.grammar,
                forests=report.forests,
                nodes=report.nodes,
            )
        if report.validate_ns:
            self._obs_phase_ns["validate"].observe(report.validate_ns)
        self._obs_phase_ns["label"].observe(report.label_ns)
        self._obs_phase_ns["emit"].observe(report.reduce_ns)
        self._obs_batches.inc()
        self._obs_nodes.inc(report.nodes)
        if report.failures:
            self._obs_failures.inc(report.failures)
        if report.tapes_compiled:
            self._obs_tapes.inc(report.tapes_compiled)
        if report.tape_cache_hits:
            self._obs_tape_hits.inc(report.tape_cache_hits)

    # ------------------------------------------------------------------
    # Ahead-of-time: compile / save / load

    def compile(
        self, max_states: int | None = None, budget: BuildBudget | None = None
    ) -> dict[str, object]:
        """Run the eager (offline) build: precompute all reachable tables.

        After ``compile()`` the selector labels with zero table misses
        (modulo ``skipped`` operators and a fired ``max_states`` cap)
        and :attr:`mode` reports ``"eager"``.  Returns the build stats,
        also available under ``stats()["tables"]["eager"]``.

        With a :class:`~repro.selection.resilience.BuildBudget`, the
        build runs under the budget's state cap and wall-clock deadline,
        and exceeding either **demotes** the selector to on-demand mode
        instead of shipping silently-incomplete "eager" tables: the
        partial tables stay warm, :attr:`mode` stays ``"ondemand"``,
        and the demotion is counted under
        ``stats()["resilience"]["demotions"]["build_budget"]``.  (A
        plain ``max_states`` cap keeps the historical capped-but-eager
        semantics.)
        """
        automaton = self._require_automaton("compile")
        cap = max_states
        deadline = None
        if budget is not None:
            if cap is None:
                cap = budget.max_states
            deadline = budget.deadline_ns
        if cap is None:
            cap = self.config.max_states
        started = time.perf_counter_ns()
        build = automaton.build_eager(cap, deadline)
        self._build_ns = time.perf_counter_ns() - started
        self._tables_version = automaton._source_version
        over_budget = budget is not None and (
            build.get("capped") or build.get("deadline_exceeded")
        )
        if over_budget:
            automaton._eager = None
            self._packed = None
            self._resilience["demotions"]["build_budget"] += 1
            cause = (
                "deadline_ns exceeded" if build.get("deadline_exceeded") else "max_states hit"
            )
            self._last_degradation = f"build_budget: {cause}, demoted to on-demand"
        else:
            self._packed = _pack_tables(automaton) if self.config.packed else None
        return build

    def verify(self, max_states: int | None = None):
        """Certify the grammar complete (total) over its covered operators.

        Runs the static completeness verifier
        (:func:`repro.analysis.completeness.verify_completeness`): every
        reachable (operator, child-state) combination must label to a
        state deriving the start nonterminal, so selection can never
        raise a "no cover" error on forests over the covered operators.
        The resulting certification bit is surfaced in
        ``stats()["aot"]["certified"]`` and stamped into artifacts
        written by :meth:`save` (a later grammar extension invalidates
        it).  Returns the full
        :class:`~repro.analysis.completeness.CompletenessReport`.
        """
        from repro.analysis.completeness import verify_completeness

        cap = max_states if max_states is not None else self.config.max_states
        report = verify_completeness(self.source_grammar, cap)
        self._verify_report = report
        self._certified = report.certified
        self._certified_version = self.source_grammar.version
        return report

    def _current_certification(self) -> bool | None:
        """The certification bit, or None when absent or stale."""
        if self._certified is None:
            return None
        if self._certified_version != self.source_grammar.version:
            return None
        return self._certified

    def save(self, path: str | Path) -> Path:
        """Serialize the compiled tables to *path* (compiling if needed).

        The artifact holds the interned nonterminal/operator id spaces,
        the state set, and every transition table as dense integer
        buffers, keyed by the grammar's fingerprint — plus the
        completeness-certification bit when :meth:`verify` ran against
        the current grammar; see the module docs for the format and
        what ``load`` guarantees.

        The write is **atomic**: the blob goes to a temp file in the
        target directory, is fsynced, then renamed over *path* — a
        crashed or concurrent ``save`` can never leave a partial
        artifact where a reader would find it.  OS-level write failures
        raise :class:`~repro.errors.ArtifactIOError`.
        """
        automaton = self._require_automaton("save")
        automaton._sync()
        if automaton._eager is None:
            self.compile()
        started = time.perf_counter_ns()
        packed = self._packed
        if packed is None or self._tables_version != automaton._source_version:
            packed = _pack_tables(automaton)
            if self.config.packed:
                self._packed = packed
                self._tables_version = automaton._source_version
        blob = _serialize(
            automaton,
            packed,
            grammar_fingerprint(self.source_grammar),
            certified=self._current_certification(),
        )
        target = Path(path)
        try:
            _atomic_write_bytes(target, blob)
        except OSError as exc:
            raise ArtifactIOError(
                f"cannot write selector artifact {target}: {exc}"
            ) from exc
        self._save_ns = time.perf_counter_ns() - started
        self._artifact_bytes = len(blob)
        return target

    @classmethod
    def load(
        cls, path: str | Path, grammar: Grammar, config: SelectorConfig | None = None
    ) -> "Selector":
        """Restore an ahead-of-time selector from *path* for *grammar*.

        The artifact's fingerprint must match *grammar* exactly — a
        mismatched or stale (since-extended) grammar is rejected with
        :class:`~repro.errors.ArtifactStaleError`; unreadable files
        raise :class:`~repro.errors.ArtifactIOError` and truncated or
        corrupted ones :class:`~repro.errors.ArtifactCorruptError` (all
        :class:`~repro.errors.SelectorError` subclasses, with the path
        and cause).  The loaded selector's tables are complete copies
        of the saved eager tables: labeling starts with zero table
        misses and never pays the eager build.
        """
        started = time.perf_counter_ns()
        header, payload, artifact_bytes = _read_artifact(path)
        fingerprint = grammar_fingerprint(grammar)
        if fingerprint != header.get("fingerprint"):
            raise ArtifactStaleError(
                f"{path}: selector artifact was compiled for a different grammar "
                f"(fingerprint {header.get('fingerprint', '?')[:12]}..., this grammar "
                f"is {fingerprint[:12]}...); recompile the artifact or pass the "
                f"matching grammar"
            )
        automaton = OnDemandAutomaton(grammar)
        packed = _rehydrate(automaton, header, payload)
        eager = dict(header["eager"]) if header.get("eager") else {}
        eager["loaded_from"] = str(path)
        automaton._eager = eager
        selector = cls(engine=automaton, config=config)
        # Keep the dense matrices only when the packed runtime path is
        # enabled — otherwise they would duplicate the dict tables'
        # memory for the selector's lifetime without ever being read.
        selector._packed = packed if selector.config.packed else None
        selector._tables_version = automaton._source_version
        selector._certified = header.get("certified")
        selector._certified_version = grammar.version
        selector._loaded_from = str(path)
        # The size of the blob already read — never a second stat()
        # syscall, whose OSError (file swapped or deleted by a
        # concurrent writer between read and stat) would fail an
        # otherwise fully successful load.
        selector._artifact_bytes = artifact_bytes
        selector._load_ns = time.perf_counter_ns() - started
        return selector

    @classmethod
    def load_or_compile(
        cls,
        path: str | Path,
        grammar: Grammar,
        config: SelectorConfig | None = None,
        *,
        budget: BuildBudget | None = None,
    ) -> "Selector":
        """The graceful-degradation ladder's entry point: load, else compile.

        Tries :meth:`load` first; **any** artifact failure — unreadable,
        corrupt, truncated, stale fingerprint — demotes to an in-process
        :meth:`compile` (under *budget*, when given, which may itself
        demote eager → on-demand) instead of propagating.  The demotion
        is recorded under
        ``stats()["resilience"]["demotions"]["load_failed"]`` on the
        returned selector.  The artifact file is left untouched — use
        :class:`~repro.selection.resilience.ArtifactCache` for the
        retry/quarantine/save-back lifecycle around a cache directory.
        """
        try:
            return cls.load(path, grammar, config)
        except SelectorError as exc:
            selector = cls(grammar, mode="ondemand", config=config)
            selector._resilience["demotions"]["load_failed"] += 1
            selector._last_degradation = (
                f"load_failed: {type(exc).__name__}: {exc}; compiled in-process"
            )
            selector.compile(budget=budget)
            return selector

    # ------------------------------------------------------------------
    # Unified stats

    def stats(self) -> dict[str, object]:
        """One dict unifying the previously-split introspection views.

        * ``tables`` — the automaton's state/transition counts (plus the
          ``eager`` build entry) for automaton modes, ``None`` for DP;
        * ``aot`` — the ahead-of-time story: compiled/loaded flags,
          build/save/load nanoseconds, artifact size, packed-matrix
          size, fingerprint, and whether the tables are still valid
          (a grammar extension invalidates them);
        * ``labeling`` — hit/warm rates and work counters of the most
          recent *metered* labeling run (``None`` until a caller passes
          a :class:`LabelMetrics`; the null-metrics fast paths are by
          design uncounted);
        * ``selection`` — cumulative pipeline totals (forests, nodes,
          reductions, memo hits, per-phase nanoseconds) plus the last
          :class:`SelectionReport` as a row;
        * ``resilience`` — fault-isolation and degradation-ladder
          counters: forests contained by ``on_error="isolate"`` (total
          and by phase), demotions by cause (``load_failed``,
          ``build_budget``, ``packed_miss``, ``packed_stale``),
          artifact-cache retries/quarantines attributed to this
          selector, and the human-readable ``last_degradation``.
        """
        engine = self.engine
        automaton = engine if isinstance(engine, OnDemandAutomaton) else None
        stale = (
            automaton is not None
            and automaton.source_grammar.version != automaton._source_version
        )
        row: dict[str, object] = {
            "grammar": self.source_grammar.name,
            "mode": self.mode,
            "tables": automaton.stats() if automaton is not None else None,
        }
        packed = self._packed
        packed_current = (
            packed is not None
            and automaton is not None
            and not stale
            and self._tables_version == automaton._source_version
        )
        row["aot"] = {
            "compiled": automaton is not None and automaton._eager is not None and not stale,
            "loaded_from": self._loaded_from,
            "valid": automaton is not None
            and automaton._eager is not None
            and not stale
            and self._tables_version == automaton._source_version,
            "fingerprint": grammar_fingerprint(self.source_grammar),
            "certified": self._current_certification(),
            "build_ns": self._build_ns,
            "save_ns": self._save_ns,
            "load_ns": self._load_ns,
            "artifact_bytes": self._artifact_bytes,
            "packed": {
                "state_count": packed.state_count,
                "matrix_bytes": packed.nbytes(),
                "transitions": packed.transition_count(),
            }
            if packed_current
            else None,
        }
        last = self._last_metrics
        row["labeling"] = (
            None
            if last is None
            else {
                "nodes_labeled": last.nodes_labeled,
                "table_lookups": last.table_lookups,
                "table_misses": last.table_misses,
                "hit_rate": last.hit_rate,
                "warm_fraction": last.warm_fraction,
                "rule_checks": last.rule_checks,
                "chain_checks": last.chain_checks,
                "states_created": last.states_created,
                "dynamic_evals": last.dynamic_evals,
                "seconds": last.seconds,
            }
        )
        totals = dict(self._totals)
        total_ns = totals["label_ns"] + totals["reduce_ns"]
        totals["total_ns"] = total_ns
        totals["ns_per_node"] = total_ns / max(totals["nodes"], 1)
        totals["reduce_fraction"] = totals["reduce_ns"] / total_ns if total_ns > 0 else 0.0
        totals["emitter"] = self.config.emitter
        totals["tape_cache"] = self._tape_cache.stats()
        totals["last"] = self._last_report.as_row() if self._last_report is not None else None
        row["selection"] = totals
        resilience = self._resilience
        row["resilience"] = {
            "isolated_failures": resilience["isolated_failures"],
            "failures_by_phase": dict(resilience["failures_by_phase"]),
            "demotions": dict(resilience["demotions"]),
            "retries": resilience["retries"],
            "quarantined": resilience["quarantined"],
            "deadline_overruns": resilience["deadline_overruns"],
            "last_degradation": self._last_degradation,
        }
        row["obs"] = self._obs_stats() if self._obs.enabled else None
        return row

    def _obs_stats(self) -> dict[str, object]:
        """The unified flattened observability view (``stats()["obs"]``).

        One flat key space subsuming the registry's counters/gauges/
        histogram summaries, the resilience counters, the cumulative
        selection totals, and the most recent metered
        :class:`LabelMetrics` — the single surface dashboards scrape.
        """
        flat = self._obs.metrics.flatten()
        resilience = self._resilience
        flat["resilience_isolated_failures"] = resilience["isolated_failures"]
        for phase, value in resilience["failures_by_phase"].items():
            flat[f'resilience_failures_total{{phase="{phase}"}}'] = value
        for cause, value in resilience["demotions"].items():
            flat[f'resilience_demotions_total{{cause="{cause}"}}'] = value
        flat["resilience_retries"] = resilience["retries"]
        flat["resilience_quarantined"] = resilience["quarantined"]
        flat["resilience_deadline_overruns"] = resilience["deadline_overruns"]
        totals = self._totals
        total_ns = totals["label_ns"] + totals["reduce_ns"]
        flat["selection_calls"] = totals["calls"]
        flat["selection_total_ns"] = total_ns
        flat["selection_ns_per_node"] = total_ns / max(totals["nodes"], 1)
        last = self._last_metrics
        if last is not None:
            flat["labeling_nodes_labeled"] = last.nodes_labeled
            flat["labeling_table_lookups"] = last.table_lookups
            flat["labeling_table_misses"] = last.table_misses
            flat["labeling_states_created"] = last.states_created
            flat["labeling_dynamic_evals"] = last.dynamic_evals
        return flat

    def __repr__(self) -> str:
        return f"Selector({self.source_grammar.name!r}, mode={self.mode!r})"


# ----------------------------------------------------------------------
# Command-line interface: ahead-of-time selector generation


def _resolve_object(spec: str) -> object:
    """Import a ``module:attr`` spec; call it if callable."""
    module_name, _, attr = spec.partition(":")
    if not module_name or not attr:
        raise SelectorError(f"bad module spec {spec!r}: expected module:attr")
    try:
        module = importlib.import_module(module_name)
        target = getattr(module, attr)
    except (ImportError, AttributeError) as exc:
        raise SelectorError(f"cannot resolve {spec!r}: {exc}") from exc
    return target() if callable(target) and not isinstance(target, type) else target


def resolve_grammar(
    spec: str, operators_spec: str | None = None, bindings_spec: str | None = None
) -> Grammar:
    """A grammar from a ``module:attr`` spec or a grammar text file.

    Shared by the selector and ``repro.analysis`` CLIs: a spec
    containing ``:`` that is not an existing path is imported (and
    called when it is a factory); anything else is read as burg-style
    grammar text, parsed with the optionally-specified operator set and
    bindings.
    """
    if ":" in spec and not Path(spec).exists():
        grammar = _resolve_object(spec)
        if not isinstance(grammar, Grammar):
            raise SelectorError(f"{spec!r} resolved to {type(grammar).__name__}, not a Grammar")
        return grammar
    from repro.grammar.parser import parse_grammar

    try:
        text = Path(spec).read_text()
    except OSError as exc:
        raise SelectorError(f"cannot read grammar {spec!r}: {exc}") from exc
    operators = _resolve_object(operators_spec) if operators_spec else None
    bindings = _resolve_object(bindings_spec) if bindings_spec else None
    return parse_grammar(text, operators=operators, bindings=bindings)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.selection.selector",
        description="Ahead-of-time selector generation: compile a grammar's eager "
        "tables to a loadable artifact.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compile_cmd = sub.add_parser(
        "compile", help="eager-build a grammar's tables and save the artifact"
    )
    compile_cmd.add_argument(
        "grammar",
        help="grammar source: a burg-style grammar text file, or a module:attr "
        "spec naming a Grammar or a callable returning one "
        "(e.g. repro.bench.workloads:bench_grammar)",
    )
    compile_cmd.add_argument("out", help="artifact path to write")
    compile_cmd.add_argument(
        "--max-states", type=int, default=None, help="eager-build state-pool cap"
    )
    compile_cmd.add_argument(
        "--verify",
        action="store_true",
        help="run the completeness verifier before writing; refuse (exit 1, with a "
        "counterexample tree) unless the grammar is certified total, and stamp the "
        "certification bit into the artifact header",
    )
    compile_cmd.add_argument(
        "--operators", default=None, help="module:attr OperatorSet for text grammars"
    )
    compile_cmd.add_argument(
        "--bindings",
        default=None,
        help="module:attr mapping of dynamic-cost/constraint callables for text grammars",
    )

    inspect_cmd = sub.add_parser("inspect", help="print an artifact's header summary")
    inspect_cmd.add_argument("artifact")

    args = parser.parse_args(argv)
    try:
        if args.command == "compile":
            grammar = resolve_grammar(args.grammar, args.operators, args.bindings)
            selector = Selector(
                grammar, mode="ondemand", config=SelectorConfig(max_states=args.max_states)
            )
            build = selector.compile()
            if args.verify:
                report = selector.verify()
                if not report.certified:
                    print(f"error: {report.describe()}", file=sys.stderr)
                    return 1
                print(report.describe())
            target = selector.save(args.out)
            aot = selector.stats()["aot"]
            print(
                f"compiled {grammar.name!r}: {build['states']} states, "
                f"{build['transitions']} transitions "
                f"(build {build['build_seconds'] * 1e3:.1f} ms"
                + (f", skipped ops: {', '.join(build['skipped'])}" if build["skipped"] else "")
                + (", CAPPED" if build["capped"] else "")
                + ")"
            )
            print(f"fingerprint {aot['fingerprint']}")
            print(f"wrote {target} ({aot['artifact_bytes']} bytes)")
            return 0
        header, _payload, _nbytes = _read_artifact(args.artifact)
        summary = {
            key: header[key]
            for key in ("format", "grammar", "start", "fingerprint", "states", "payload_len")
        }
        summary["nonterminals"] = len(header["nonterminals"])
        summary["operators"] = len(header["operators"])
        summary["eager"] = header.get("eager")
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    except (SelectorError, CoverError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
