"""The end-to-end selection pipeline: label, reduce, emit — measured.

The paper's claim is fast *instruction selection*, not fast labeling in
isolation.  This module fuses the two halves into one call:
:func:`select` / :func:`select_many` run any labeler (dynamic
programming, on-demand automaton, or the eager/offline automaton mode —
batched through ``label_many``) followed by the iterative
:class:`~repro.selection.reducer.Reducer`, and return the per-forest
semantic values together with a :class:`SelectionReport` describing the
whole run: cover cost, node and reduction counts, and per-phase
nanoseconds (labeling versus reduction/emission).

Batches are first-class, exactly as for labeling: ``select_many``
labels all forests in one fused ``label_many`` pass and reduces them
through a single shared :class:`Reducer`, so a (node, nonterminal)
combination shared between forests is reduced — and its emit action
run — exactly once.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Iterable

from repro.errors import CoverError
from repro.grammar.grammar import Grammar
from repro.ir.node import Forest
from repro.selection.automaton import OnDemandAutomaton
from repro.selection.cover import Labeling, extract_cover
from repro.selection.label_dp import DPLabeler
from repro.selection.reducer import Reducer

__all__ = [
    "LABELER_NAMES",
    "SelectionReport",
    "SelectionResult",
    "make_labeler",
    "select",
    "select_many",
]

#: Labeler specification strings accepted by :func:`make_labeler`.
LABELER_NAMES = ("dp", "ondemand", "eager")


def make_labeler(grammar: Grammar | None, labeler: object = "ondemand") -> object:
    """Resolve a labeler specification to a labeling engine.

    *labeler* is one of the :data:`LABELER_NAMES` strings — ``"dp"``
    (the dynamic-programming baseline), ``"ondemand"`` (a fresh
    :class:`OnDemandAutomaton`), ``"eager"`` (an automaton whose tables
    are precomputed with :meth:`OnDemandAutomaton.build_eager`) — or an
    already-constructed engine exposing ``label``/``label_many``
    (e.g. a long-lived automaton whose warm tables should be reused),
    which is returned unchanged.
    """
    if isinstance(labeler, str):
        if grammar is None:
            raise CoverError(
                f"labeler {labeler!r} needs a grammar to be constructed from; "
                f"pass grammar= or an already-built labeler object"
            )
        if labeler == "dp":
            return DPLabeler(grammar)
        if labeler == "ondemand":
            return OnDemandAutomaton(grammar)
        if labeler == "eager":
            automaton = OnDemandAutomaton(grammar)
            automaton.build_eager()
            return automaton
        raise ValueError(
            f"unknown labeler {labeler!r}; expected one of {', '.join(LABELER_NAMES)} "
            f"or a labeler object"
        )
    if not hasattr(labeler, "label_many"):
        raise TypeError(f"labeler object {labeler!r} does not expose label_many()")
    return labeler


def _labeler_name(labeler: object) -> str:
    if isinstance(labeler, DPLabeler):
        return "dp"
    if isinstance(labeler, OnDemandAutomaton):
        return "eager" if labeler._eager is not None else "ondemand"
    return type(labeler).__name__


@dataclass
class SelectionReport:
    """What one :func:`select` / :func:`select_many` call did and cost.

    Counts describe the whole batch; the two ``*_ns`` fields are
    integer ``perf_counter_ns`` measurements of the labeling phase and
    the reduction/emission phase respectively (cover extraction, when
    requested, is *not* timed — it is a verification artifact, not part
    of selection).
    """

    grammar: str
    labeler: str
    forests: int
    roots: int
    #: Distinct nodes per forest, summed (a node shared *between*
    #: forests counts once per forest, mirroring the labeling bench).
    nodes: int
    #: Total cover cost from the start nonterminal, summed over forests
    #: (``None`` when the caller skipped cover collection).
    cover_cost: int | None
    #: Distinct (node, nonterminal) reductions — rule applications.
    reductions: int
    #: Reduction requests answered from the reducer's memo.
    memo_hits: int
    label_ns: int
    reduce_ns: int

    @property
    def total_ns(self) -> int:
        """Labeling plus reduction/emission nanoseconds."""
        return self.label_ns + self.reduce_ns

    @property
    def ns_per_node(self) -> float:
        return self.total_ns / max(self.nodes, 1)

    @property
    def reduce_fraction(self) -> float:
        """Share of the pipeline spent reducing/emitting (0.0–1.0)."""
        total = self.total_ns
        return self.reduce_ns / total if total > 0 else 0.0

    def as_row(self) -> dict[str, object]:
        """Flat dict for table formatting / JSON reports."""
        return {
            "grammar": self.grammar,
            "labeler": self.labeler,
            "forests": self.forests,
            "roots": self.roots,
            "nodes": self.nodes,
            "cover_cost": self.cover_cost,
            "reductions": self.reductions,
            "memo_hits": self.memo_hits,
            "label_ns": self.label_ns,
            "reduce_ns": self.reduce_ns,
            "total_ns": self.total_ns,
            "ns_per_node": self.ns_per_node,
            "reduce_fraction": self.reduce_fraction,
        }


@dataclass
class SelectionResult:
    """Semantic values plus the report of one pipeline run.

    From :func:`select_many`, :attr:`values` holds one list of per-root
    semantic values per input forest; :func:`select` unwraps the single
    forest, so its :attr:`values` is the per-root list itself.
    """

    values: list[Any]
    report: SelectionReport
    labeling: Labeling


def select_many(
    forests: Iterable[Forest],
    grammar: Grammar | None = None,
    *,
    labeler: object = "ondemand",
    context: Any = None,
    start: str | None = None,
    collect_cover: bool = True,
) -> SelectionResult:
    """Select instructions for a batch of forests in one fused pipeline.

    Labels all *forests* with one batched ``label_many`` call, reduces
    every root through one shared :class:`Reducer` (running emit
    actions against *context*), and returns per-forest semantic-value
    lists plus a :class:`SelectionReport`.

    Args:
        forests: The forests to select over, reduced in order.
        grammar: The tree grammar; optional when *labeler* is an
            already-constructed engine (its grammar is used).
        labeler: A :data:`LABELER_NAMES` string or an engine object —
            see :func:`make_labeler`.
        context: Emit context handed to rule actions and
            ``emit_template``.
        start: Start nonterminal override (defaults to the grammar's).
        collect_cover: Also extract every forest's cover (untimed) and
            report the summed cost; switch off for pure-speed runs.
    """
    forests = list(forests)
    engine = make_labeler(grammar, labeler)
    engine_grammar = getattr(engine, "source_grammar", None) or engine.grammar

    started = time.perf_counter_ns()
    labeling = engine.label_many(forests)
    label_ns = time.perf_counter_ns() - started

    reducer = Reducer(labeling, context)
    started = time.perf_counter_ns()
    values = [reducer.reduce_forest(forest, start) for forest in forests]
    reduce_ns = time.perf_counter_ns() - started

    cover_cost: int | None = None
    if collect_cover:
        cover_cost = sum(
            extract_cover(labeling, forest, start).total_cost() for forest in forests
        )

    report = SelectionReport(
        grammar=engine_grammar.name,
        labeler=_labeler_name(engine),
        forests=len(forests),
        roots=sum(len(forest.roots) for forest in forests),
        nodes=sum(forest.node_count() for forest in forests),
        cover_cost=cover_cost,
        reductions=reducer.reductions,
        memo_hits=reducer.memo_hits,
        label_ns=label_ns,
        reduce_ns=reduce_ns,
    )
    return SelectionResult(values=values, report=report, labeling=labeling)


def select(
    forest: Forest,
    grammar: Grammar | None = None,
    *,
    labeler: object = "ondemand",
    context: Any = None,
    start: str | None = None,
    collect_cover: bool = True,
) -> SelectionResult:
    """Select instructions for one forest: label, reduce, emit.

    A convenience wrapper over :func:`select_many` for the single-forest
    case; the result's :attr:`SelectionResult.values` is the list of
    per-root semantic values of *forest* (not wrapped in a batch list).
    """
    result = select_many(
        [forest],
        grammar,
        labeler=labeler,
        context=context,
        start=start,
        collect_cover=collect_cover,
    )
    return SelectionResult(
        values=result.values[0], report=result.report, labeling=result.labeling
    )
