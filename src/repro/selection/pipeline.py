"""Functional pipeline entry points — thin wrappers over :class:`Selector`.

:func:`select` / :func:`select_many` remain the one-call way to run the
full label + reduce + emit pipeline, but the implementation now lives in
:class:`repro.selection.selector.Selector`; these functions resolve
their *labeler* argument to a selector and delegate.  Prefer
constructing a ``Selector`` directly for long-lived use — it keeps warm
tables, supports ahead-of-time ``compile``/``save``/``load``, and
reports everything through one ``stats()`` call.

:func:`make_labeler` survives for backward compatibility.  String specs
(``"dp"``/``"ondemand"``/``"eager"``) are **deprecated**: they emit a
:class:`DeprecationWarning` and resolve through a ``Selector``, whose
``mode=`` argument replaces them.  Engine objects pass through
unchanged, exactly as before.
"""

from __future__ import annotations

import warnings
from typing import Any, Iterable

from repro.errors import CoverError
from repro.grammar.grammar import Grammar
from repro.ir.node import Forest
from repro.selection.selector import (
    MODES,
    SelectionReport,
    SelectionResult,
    Selector,
    SelectorConfig,
)

__all__ = [
    "LABELER_NAMES",
    "SelectionReport",
    "SelectionResult",
    "make_labeler",
    "select",
    "select_many",
]

#: Labeler specification strings, now the :data:`Selector` modes.
LABELER_NAMES = MODES


def _selector_for(
    grammar: Grammar | None, labeler: object, observe: Any = None
) -> Selector:
    """Resolve the historical *labeler* argument to a :class:`Selector`.

    Keeps the original error contract of ``make_labeler``: a string
    spec without a grammar raises :class:`CoverError`, an unknown spec
    raises :class:`ValueError`, and a non-engine object raises
    :class:`TypeError`.  *observe* wires an observability bundle into a
    selector this call constructs (an already-built ``Selector`` keeps
    its own config).
    """
    config = SelectorConfig(observe=observe) if observe is not None else None
    if isinstance(labeler, Selector):
        return labeler
    if isinstance(labeler, str):
        if grammar is None:
            raise CoverError(
                f"labeler {labeler!r} needs a grammar to be constructed from; "
                f"pass grammar= or an already-built labeler object"
            )
        if labeler not in LABELER_NAMES:
            raise ValueError(
                f"unknown labeler {labeler!r}; expected one of {', '.join(LABELER_NAMES)} "
                f"or a labeler object"
            )
        return Selector(grammar, mode=labeler, config=config)
    if not hasattr(labeler, "label_many"):
        raise TypeError(f"labeler object {labeler!r} does not expose label_many()")
    return Selector.wrap(labeler, config=config)


def make_labeler(grammar: Grammar | None, labeler: object = "ondemand") -> object:
    """Resolve a labeler specification to a labeling engine.

    .. deprecated::
        String specs are deprecated; construct
        ``Selector(grammar, mode="dp" | "ondemand" | "eager")`` instead.
        They still resolve (through a ``Selector``) to the same engine
        objects as before — a :class:`~repro.selection.label_dp.
        DPLabeler` for ``"dp"``, an :class:`~repro.selection.automaton.
        OnDemandAutomaton` (eagerly compiled for ``"eager"``) otherwise
        — but emit a :class:`DeprecationWarning`.

    Already-constructed engines (anything exposing ``label_many``,
    including a ``Selector``) are returned unchanged.
    """
    if isinstance(labeler, str):
        warnings.warn(
            "string labeler specs in make_labeler are deprecated; construct "
            "repro.selection.Selector(grammar, mode=...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return _selector_for(grammar, labeler).engine
    if isinstance(labeler, Selector):
        return labeler
    if not hasattr(labeler, "label_many"):
        raise TypeError(f"labeler object {labeler!r} does not expose label_many()")
    return labeler


def select_many(
    forests: Iterable[Forest],
    grammar: Grammar | None = None,
    *,
    labeler: object = "ondemand",
    context: Any = None,
    start: str | None = None,
    collect_cover: bool = True,
    on_error: str = "raise",
    observe: Any = None,
) -> SelectionResult:
    """Select instructions for a batch of forests in one fused pipeline.

    A thin wrapper over :meth:`Selector.select_many`: *labeler* is a
    mode string, an engine object (e.g. a warm automaton), or a
    :class:`Selector`; see :func:`make_labeler` for resolution rules.
    ``on_error="isolate"`` contains per-forest faults as
    :class:`~repro.selection.resilience.SelectionFailure` values instead
    of aborting the batch.  *observe* threads an
    :class:`~repro.obs.Observability` bundle (or ``True``) into the
    constructed selector.
    """
    return _selector_for(grammar, labeler, observe).select_many(
        forests,
        context=context,
        start=start,
        collect_cover=collect_cover,
        on_error=on_error,
    )


def select(
    forest: Forest,
    grammar: Grammar | None = None,
    *,
    labeler: object = "ondemand",
    context: Any = None,
    start: str | None = None,
    collect_cover: bool = True,
    on_error: str = "raise",
    observe: Any = None,
) -> SelectionResult:
    """Select instructions for one forest: label, reduce, emit.

    A thin wrapper over :meth:`Selector.select`; the result's
    :attr:`SelectionResult.values` is the per-root list of *forest*
    (not wrapped in a batch list).
    """
    return _selector_for(grammar, labeler, observe).select(
        forest,
        context=context,
        start=start,
        collect_cover=collect_cover,
        on_error=on_error,
    )
