"""The on-demand tree-parsing automaton labeler (the paper's core).

Instead of recomputing a full cost vector on every node the way dynamic
programming does, the automaton labels each node with an interned
:class:`~repro.selection.states.State` found through a transition
table keyed by ``(operator, child states)``.  Tables are built *lazily*:
the first time an ``(operator, child-state-tuple)`` key is seen, the
state is constructed with exactly the dynamic-programming computation
(base-rule checks plus chain closure over **delta** costs) and memoized;
every later hit is a couple of dictionary lookups.  Repeated labeling
of recurring forest shapes therefore amortizes the construction work —
:class:`~repro.metrics.counters.LabelMetrics` separates the two kinds
of work (``rule_checks``/``chain_checks`` versus ``table_lookups``) so
the amortization claim is directly measurable.

The warm path is integer-indexed and **single-pass**.  At sync time the
automaton interns nonterminals to dense ids (shared with the state
pool) and operators to per-operator :class:`_OpTable` objects holding
arity-pre-filtered rule lists with pre-resolved child nonterminal ids.
Transitions live in per-operator tables with arity-specialized fast
paths — nullary operators cache a single state, unary and binary
operators are keyed by child-state ids with no tuple allocation, and
only arity ≥ 3 pays for a key tuple.  Labeling is one fused stack walk
per batch: children are discovered and the node transitioned the moment
its last child is labeled, with the per-node state map doubling as the
traversal's visited set — no separate topological pre-pass, no
intermediate order list.  When the caller passes no metrics object the
static loop performs no counter increments at all, so benchmarking raw
speed measures table lookups and nothing else.

Batches are first-class: :meth:`OnDemandAutomaton.label_many` labels a
sequence of forests with one sync check, one labeling object, and one
shared node-state map, so forests sharing nodes (a JIT's per-block
DAGs over common subexpressions) label each shared node exactly once
and small forests stop paying per-call setup.

The automaton requires a normal-form grammar: every base rule rooted at
an operator consumes each child exactly once, so the per-child
normalisation deltas shift all candidate costs by the same constant and
the locally-cheapest rule choice stays globally optimal.  Grammars with
multi-node patterns are normalized transparently on construction.

Dynamic costs and constraints are handled through a per-node *dynamic
signature*: the node-evaluated costs of the dynamic rules relevant to
its operator become part of the transition key, so constrained rules
split an operator's transitions into the few variants the constraint
outcomes induce (the paper's restricted-dynamic-cost argument) while
fully general dynamic costs degrade gracefully to per-outcome entries.
Operators with *no* dynamic rules take the integer fast path even in a
dynamic grammar (as long as no dynamic chain rule exists, which would
make every node's transition node-dependent).  Dynamic callables only
run where the DP labeler would run them: rules from multi-node patterns
require a structural match of the original pattern, and dynamic chain
rules require their source nonterminal to be derivable at the node (a
memoized derivability set keeps this off the warm path).

The grammar may be extended while the automaton is live (the JIT
flexibility argument): a grammar version bump invalidates the state
pool and transition tables, which are then rebuilt on demand — or
re-precomputed with :meth:`OnDemandAutomaton.build_eager`, the offline
mode that drives state construction over every reachable ``(operator,
child states)`` combination to a fixed point at build time, trading
table size for zero cold cost at labeling time.
"""

from __future__ import annotations

import itertools
import time
from typing import Iterable

from repro.grammar.closure import chain_closure
from repro.grammar.costs import INFINITE, add_costs, is_finite
from repro.grammar.grammar import Grammar
from repro.grammar.normalize import normalize
from repro.grammar.rule import Rule
from repro.ir.node import Forest, Node
from repro.ir.traversal import ready_postorder
from repro.metrics.counters import LabelMetrics
from repro.obs.trace import Timer
from repro.selection.cover import Labeling
from repro.selection.label_dp import dynamic_cost_at
from repro.selection.resilience import (
    DEADLINE_CHECK_EVERY,
    attach_node_provenance,
    check_deadline,
)
from repro.selection.states import State, StatePool

__all__ = ["AutomatonLabeling", "OnDemandAutomaton", "label_ondemand"]

#: Dynamic-signature slot for a chain rule whose source nonterminal was not
#: derivable at the node, so its cost callable was (correctly) never run.
#: ``None`` cannot collide with any integer a cost callable may return.
UNEVALUATED = None

#: Sink for construction-side counters in the null-metrics fast path:
#: written, never read.  Keeping one shared instance means the fast
#: loops carry no per-call allocation for it.
_NULL_METRICS = LabelMetrics()

#: One rule entry of an :class:`_OpTable`: the rule, its left-hand side,
#: its static cost, and the dense nonterminal ids of its pattern's kids.
_RuleEntry = tuple[Rule, str, int, tuple[int, ...]]


class _OpTable:
    """All per-operator structures, interned once per grammar sync.

    Transitions are arity-specialized: ``nullary`` caches the single
    leaf state, ``unary``/``binary`` are nested dicts keyed by child
    state ids (no key tuples on the warm path), ``nary`` covers arity
    ≥ 3, and ``dyn`` holds the ``(child ids, dynamic signature)``
    entries used by operators that do have dynamic rules (or by every
    operator when the grammar has dynamic chain rules).
    """

    __slots__ = (
        "op_id",
        "rules_by_arity",
        "dyn_rules",
        "nullary",
        "unary",
        "binary",
        "nary",
        "dyn",
        "derivable",
    )

    def __init__(self, op_id: int) -> None:
        self.op_id = op_id
        self.rules_by_arity: dict[int, tuple[_RuleEntry, ...]] = {}
        self.dyn_rules: tuple[Rule, ...] = ()
        self.nullary: State | None = None
        self.unary: dict[int, State] = {}
        self.binary: dict[int, dict[int, State]] = {}
        self.nary: dict[tuple[int, ...], State] = {}
        self.dyn: dict[tuple[tuple[int, ...], tuple["int | None", ...]], State] = {}
        self.derivable: dict[
            tuple[tuple[int, ...], tuple[int, ...]],
            tuple[frozenset[str], dict[str, int], dict[str, Rule]],
        ] = {}

    def transition_count(self) -> int:
        """Number of memoized transitions in this operator's tables."""
        total = len(self.unary) + len(self.nary) + len(self.dyn)
        total += sum(len(row) for row in self.binary.values())
        if self.nullary is not None:
            total += 1
        return total


class AutomatonLabeling(Labeling):
    """A forest labeling that stores one interned state per node.

    Costs returned by :meth:`cost_of` are state-relative *delta* costs;
    rule choices are nevertheless globally optimal (see module docs).
    One labeling may span several forests (see
    :meth:`OnDemandAutomaton.label_many`): it answers queries for every
    node of every forest labeled into it.
    """

    def __init__(self, automaton: "OnDemandAutomaton", metrics: LabelMetrics | None = None) -> None:
        super().__init__(automaton.grammar, metrics)
        self.automaton = automaton
        self._states: dict[int, State] = {}

    def state_of(self, node: Node) -> State | None:
        """The interned state labeling *node* (None when unlabeled)."""
        return self._states.get(id(node))

    def rule_for(self, node: Node, nonterminal: str) -> Rule | None:
        state = self._states.get(id(node))
        return None if state is None else state.rule_for(nonterminal)

    def cost_of(self, node: Node, nonterminal: str) -> int:
        state = self._states.get(id(node))
        return INFINITE if state is None else state.cost_of(nonterminal)


class OnDemandAutomaton:
    """A tree-parsing automaton whose tables grow on demand.

    The automaton is meant to be long-lived: construct it once per
    grammar and call :meth:`label` (or :meth:`label_many` for batches)
    for every forest.  State pool and transition tables persist across
    calls, so recurring forest shapes are labeled by table lookups
    alone.  :meth:`build_eager` switches to the offline mode of the
    trade-off: all reachable transitions are precomputed at build time
    and labeling never constructs a state again.
    """

    def __init__(self, grammar: Grammar) -> None:
        self.source_grammar = grammar
        self._source_version: int | None = None
        self.grammar: Grammar = grammar
        self.pool = StatePool()
        self.has_dynamic = False
        self._op_ids: dict[str, int] = {}
        self._tables: dict[str, _OpTable] = {}
        self._dyn_chain: list[Rule] = []
        self._empty_chain_signature: tuple[None, ...] = ()
        self._static_reach_cache: dict[str, frozenset[str]] = {}
        self._eager: dict[str, object] | None = None
        self._sync()

    # ------------------------------------------------------------------
    # Grammar synchronisation

    def _sync(self) -> None:
        """(Re)build derived structures when the source grammar changed."""
        if self._source_version == self.source_grammar.version:
            return
        source = self.source_grammar
        self.grammar = source if source.is_normal_form else normalize(source).grammar
        self._source_version = source.version
        self.pool = StatePool(self.grammar.nonterminals)
        self.has_dynamic = self.grammar.has_dynamic_rules
        self._op_ids = self.grammar.operator_ids()
        self._tables = {name: self._build_table(name, op_id) for name, op_id in self._op_ids.items()}
        self._dyn_chain = [rule for rule in self.grammar.chain_rules() if rule.is_dynamic]
        self._empty_chain_signature = (UNEVALUATED,) * len(self._dyn_chain)
        self._static_reach_cache = {}
        self._eager = None  # precomputed tables died with the old pool

    def _build_table(self, op_name: str, op_id: int) -> _OpTable:
        """Intern one operator: pre-filter its rules by arity, resolve
        its patterns' child nonterminals to dense ids."""
        table = _OpTable(op_id)
        by_arity: dict[int, list[_RuleEntry]] = {}
        for rule in self.grammar.rules_for_op(op_name):
            kid_ids = tuple(self.pool.declare(kid.symbol) for kid in rule.pattern.kids)
            by_arity.setdefault(len(kid_ids), []).append((rule, rule.lhs, rule.cost, kid_ids))
        table.rules_by_arity = {arity: tuple(entries) for arity, entries in by_arity.items()}
        table.dyn_rules = tuple(
            rule for rule in self.grammar.rules_for_op(op_name) if rule.is_dynamic
        )
        return table

    def _table_for(self, op_name: str) -> _OpTable:
        """The operator's table; foreign-dialect operators the grammar
        never mentions get an empty table (error states) on demand."""
        table = self._tables.get(op_name)
        if table is None:
            op_id = self._op_ids.setdefault(op_name, len(self._op_ids))
            table = self._build_table(op_name, op_id)
            self._tables[op_name] = table
        return table

    def _static_chain_reach(self, nonterminal: str) -> frozenset[str]:
        """Nonterminals derivable from *nonterminal* via static chain rules."""
        reach = self._static_reach_cache.get(nonterminal)
        if reach is None:
            seen = {nonterminal}
            stack = [nonterminal]
            while stack:
                for rule in self.grammar.chain_rules_from(stack.pop()):
                    if not rule.is_dynamic and rule.lhs not in seen:
                        seen.add(rule.lhs)
                        stack.append(rule.lhs)
            reach = frozenset(seen)
            self._static_reach_cache[nonterminal] = reach
        return reach

    # ------------------------------------------------------------------
    # Labeling

    def label(
        self,
        forest: Forest,
        metrics: LabelMetrics | None = None,
        *,
        deadline_at_ns: int | None = None,
    ) -> AutomatonLabeling:
        """Label *forest* bottom-up by transition-table lookups.

        Metrics are opt-in: with ``metrics=None`` on a grammar without
        dynamic rules, the run takes the null-metrics fast loop and no
        counters (not even ``nodes_labeled``) are maintained.
        *deadline_at_ns* arms cooperative cancellation: the walk checks
        the absolute monotonic deadline every
        :data:`~repro.selection.resilience.DEADLINE_CHECK_EVERY` nodes
        and raises :class:`~repro.errors.DeadlineExceededError`.
        """
        self._sync()
        labeling = AutomatonLabeling(self, metrics)
        self._label_roots(forest.roots, labeling, metrics, deadline_at_ns)
        return labeling

    def label_many(
        self,
        forests: Iterable[Forest],
        metrics: LabelMetrics | None = None,
        *,
        deadline_at_ns: int | None = None,
    ) -> AutomatonLabeling:
        """Label a batch of forests in one fused pass.

        The sync check, labeling-object allocation, and metrics wiring
        are paid once for the whole batch, and all forests share one
        node-state map: a node appearing in several forests (DAGs over
        common subexpressions) is labeled exactly once.  Returns a
        single :class:`AutomatonLabeling` valid for every forest in the
        batch — hand it to ``extract_cover(labeling, forest)`` per
        forest.  A grammar extension is picked up at the *next*
        ``label``/``label_many`` call, exactly as for single forests.
        """
        self._sync()
        labeling = AutomatonLabeling(self, metrics)
        roots = [root for forest in forests for root in forest.roots]
        self._label_roots(roots, labeling, metrics, deadline_at_ns)
        return labeling

    def _label_roots(
        self,
        roots: list[Node],
        labeling: AutomatonLabeling,
        metrics: LabelMetrics | None,
        deadline_at_ns: int | None = None,
    ) -> None:
        """Dispatch one batch of roots onto the right fused loop.

        With a deadline armed, static no-metrics labeling runs the
        counted walk against the null-metrics sink instead of the
        pristine fast loop — the fast loop stays branch-free for the
        unbudgeted hot path.
        """
        node_states = labeling._states
        if self.has_dynamic:
            run = labeling.metrics
            with Timer() as timer:
                self._label_dynamic(roots, node_states, run, deadline_at_ns)
            run.seconds += timer.elapsed
        elif metrics is not None:
            with Timer() as timer:
                self._label_static_counted(roots, node_states, metrics, deadline_at_ns)
            metrics.seconds += timer.elapsed
        elif deadline_at_ns is not None:
            self._label_static_counted(roots, node_states, _NULL_METRICS, deadline_at_ns)
        else:
            self._label_static_fast(roots, node_states)

    def _label_static_fast(self, roots: list[Node], node_states: dict[int, State]) -> None:
        """Warm path for static grammars, no metrics: one fused stack
        walk, one operator-table lookup plus one int-keyed get per
        child.  The state map is the visited set: a node is expanded at
        most once and transitioned the moment its last child has a
        state.
        """
        tables = self._tables
        stack = list(roots)
        pop = stack.pop
        push = stack.append
        get_state = node_states.get
        while stack:
            node = pop()
            nid = id(node)
            if nid in node_states:
                continue
            kids = node.kids
            arity = len(kids)
            if arity == 2:
                k0, k1 = kids
                s0 = get_state(id(k0))
                s1 = get_state(id(k1))
                if s0 is None or s1 is None:
                    push(node)
                    if s1 is None:
                        push(k1)
                    if s0 is None:
                        push(k0)
                    continue
                op_name = node.op.name
                table = tables.get(op_name)
                if table is None:
                    table = self._table_for(op_name)
                row = table.binary.get(s0.index)
                if row is None:
                    row = table.binary[s0.index] = {}
                state = row.get(s1.index)
                if state is None:
                    state = self._construct_state(table, 2, (s0, s1), None, _NULL_METRICS)
                    row[s1.index] = state
            elif arity == 0:
                op_name = node.op.name
                table = tables.get(op_name)
                if table is None:
                    table = self._table_for(op_name)
                state = table.nullary
                if state is None:
                    state = self._construct_state(table, 0, (), None, _NULL_METRICS)
                    table.nullary = state
            elif arity == 1:
                k0 = kids[0]
                s0 = get_state(id(k0))
                if s0 is None:
                    push(node)
                    push(k0)
                    continue
                op_name = node.op.name
                table = tables.get(op_name)
                if table is None:
                    table = self._table_for(op_name)
                state = table.unary.get(s0.index)
                if state is None:
                    state = self._construct_state(table, 1, (s0,), None, _NULL_METRICS)
                    table.unary[s0.index] = state
            else:
                deferred = False
                for kid in kids:
                    if id(kid) not in node_states:
                        if not deferred:
                            push(node)
                            deferred = True
                        push(kid)
                if deferred:
                    continue
                kid_states = tuple(node_states[id(kid)] for kid in kids)
                key = tuple(state.index for state in kid_states)
                table = self._table_for(node.op.name)
                state = table.nary.get(key)
                if state is None:
                    state = self._construct_state(table, arity, kid_states, None, _NULL_METRICS)
                    table.nary[key] = state
            node_states[nid] = state

    def _label_static_counted(
        self,
        roots: list[Node],
        node_states: dict[int, State],
        metrics: LabelMetrics,
        deadline_at_ns: int | None = None,
    ) -> None:
        """The fused static-grammar walk with full work counting (one
        table lookup is charged per node, regardless of arity nesting).

        Shares :func:`~repro.ir.traversal.ready_postorder` with the DP
        labeler — only the null-metrics loop justifies hand-inlining
        the walk; this one runs in untimed metric passes and under
        request deadlines.
        """
        ticks = 0
        for node in ready_postorder(roots, node_states):
            if deadline_at_ns is not None:
                ticks += 1
                if ticks >= DEADLINE_CHECK_EVERY:
                    ticks = 0
                    check_deadline(deadline_at_ns, "label")
            table = self._table_for(node.op.name)
            node_states[id(node)] = self._static_transition(
                table, node.kids, node_states, metrics
            )
            metrics.nodes_labeled += 1

    def _static_transition(
        self,
        table: _OpTable,
        kids: tuple[Node, ...],
        node_states: dict[int, State],
        metrics: LabelMetrics,
    ) -> State:
        """One counted transition through the integer-keyed static
        tables.  Shared by the counted static loop and by dynamic-grammar
        labeling of operators without dynamic rules (the specialization
        that keeps most of a mostly-static grammar on the fast tables).
        """
        arity = len(kids)
        metrics.table_lookups += 1
        if arity == 2:
            s0 = node_states[id(kids[0])]
            s1 = node_states[id(kids[1])]
            row = table.binary.get(s0.index)
            if row is None:
                row = table.binary[s0.index] = {}
            state = row.get(s1.index)
            if state is None:
                metrics.table_misses += 1
                state = self._construct_state(table, 2, (s0, s1), None, metrics)
                row[s1.index] = state
        elif arity == 0:
            state = table.nullary
            if state is None:
                metrics.table_misses += 1
                state = self._construct_state(table, 0, (), None, metrics)
                table.nullary = state
        elif arity == 1:
            s0 = node_states[id(kids[0])]
            state = table.unary.get(s0.index)
            if state is None:
                metrics.table_misses += 1
                state = self._construct_state(table, 1, (s0,), None, metrics)
                table.unary[s0.index] = state
        else:
            kid_states = tuple(node_states[id(kid)] for kid in kids)
            key = tuple(state.index for state in kid_states)
            state = table.nary.get(key)
            if state is None:
                metrics.table_misses += 1
                state = self._construct_state(table, arity, kid_states, None, metrics)
                table.nary[key] = state
        return state

    # ------------------------------------------------------------------
    # Dynamic-grammar path

    def _label_dynamic(
        self,
        roots: list[Node],
        node_states: dict[int, State],
        metrics: LabelMetrics,
        deadline_at_ns: int | None = None,
    ) -> None:
        """Fused walk for dynamic grammars.

        Operators without dynamic rules take the integer-keyed static
        tables (no signature, no per-node callable checks) as long as
        the grammar has no dynamic chain rules — those would make every
        transition node-dependent.  Only operators that actually carry
        dynamic rules pay the signature path.
        """
        tables = self._tables
        no_dyn_chain = not self._dyn_chain
        ticks = 0
        for node in ready_postorder(roots, node_states):
            if deadline_at_ns is not None:
                ticks += 1
                if ticks >= DEADLINE_CHECK_EVERY:
                    ticks = 0
                    check_deadline(deadline_at_ns, "label")
            op_name = node.op.name
            table = tables.get(op_name)
            if table is None:
                table = self._table_for(op_name)
            if no_dyn_chain and not table.dyn_rules:
                state = self._static_transition(table, node.kids, node_states, metrics)
            else:
                kid_states = tuple(node_states[id(kid)] for kid in node.kids)
                # Zero-cost on the happy path (3.11+): a raising dynamic
                # cost/constraint callable gets the faulting IR node
                # attached for SelectionFailure provenance.
                try:
                    state = self._transition(table, node, kid_states, metrics)
                except Exception as exc:
                    attach_node_provenance(exc, node)
                    raise
            node_states[id(node)] = state
            metrics.nodes_labeled += 1

    def _transition(
        self, table: _OpTable, node: Node, kid_states: tuple[State, ...], metrics: LabelMetrics
    ) -> State:
        dyn_base = table.dyn_rules
        if dyn_base:
            dyn_costs: dict[int, int] | None = {}
            for rule in dyn_base:
                dyn_costs[rule.number] = dynamic_cost_at(rule, node, metrics)
            dyn_signature = tuple(dyn_costs[rule.number] for rule in dyn_base)
        else:
            dyn_costs = None
            dyn_signature = ()
        kid_ids = tuple(state.index for state in kid_states)
        base_pair = None
        if self._dyn_chain:
            derivable, base_costs, base_rules = self._initial_derivable(
                table, kid_ids, kid_states, dyn_costs, dyn_signature, metrics
            )
            dyn_costs, chain_signature = self._evaluate_dynamic_chains(
                node, derivable, dyn_costs, metrics
            )
            dyn_signature = dyn_signature + chain_signature
            base_pair = (base_costs, base_rules)
        key = (kid_ids, dyn_signature)
        metrics.table_lookups += 1
        state = table.dyn.get(key)
        if state is None:
            metrics.table_misses += 1
            state = self._construct_state(
                table, len(kid_states), kid_states, dyn_costs, metrics, base_pair
            )
            table.dyn[key] = state
        return state

    def _evaluate_dynamic_chains(
        self,
        node: Node,
        initial_derivable: frozenset[str],
        dyn_costs: dict[int, int] | None,
        metrics: LabelMetrics,
    ) -> tuple[dict[int, int] | None, tuple["int | None", ...]]:
        """Evaluate dynamic chain-rule costs, only where they can apply.

        A dynamic chain rule's callable runs only when its source
        nonterminal is derivable at the node — the same guard the DP
        labeler gets from ``chain_closure``'s finite-source check — and
        the outcome joins the transition key.  Unreached rules get the
        :data:`UNEVALUATED` sentinel; derivability grows to a fixed
        point as finite outcomes unlock further chain rules.
        """
        derivable = set(initial_derivable)
        evaluated: dict[int, int] = {}
        progress = True
        while progress:
            progress = False
            for rule in self._dyn_chain:
                if rule.number in evaluated or rule.pattern.symbol not in derivable:
                    continue
                metrics.dynamic_evals += 1
                cost = rule.cost_at(node)
                evaluated[rule.number] = cost
                if is_finite(cost):
                    derivable |= self._static_chain_reach(rule.lhs)
                    progress = True
        if not evaluated:
            # Nothing ran: keep the caller's dict (warm path, no copy).
            return dyn_costs, self._empty_chain_signature
        merged = dict(dyn_costs) if dyn_costs else {}
        merged.update(evaluated)
        signature = tuple(evaluated.get(rule.number, UNEVALUATED) for rule in self._dyn_chain)
        return merged, signature

    def _initial_derivable(
        self,
        table: _OpTable,
        kid_ids: tuple[int, ...],
        kid_states: tuple[State, ...],
        dyn_costs: dict[int, int] | None,
        base_signature: tuple[int, ...],
        metrics: LabelMetrics,
    ) -> tuple[frozenset[str], dict[str, int], dict[str, Rule]]:
        """Nonterminals derivable at a node before dynamic chain rules.

        Depends only on the transition key's static part, so the result
        — including the base (costs, rules) pair, which a subsequent
        state construction reuses instead of recomputing — is memoized
        alongside the transition tables.  The cached dicts must not be
        mutated by callers.
        """
        key = (kid_ids, base_signature)
        entry = table.derivable.get(key)
        if entry is None:
            costs, rules = self._base_costs(table, len(kid_states), kid_states, dyn_costs, metrics)
            closed: set[str] = set()
            for nonterminal in costs:
                closed |= self._static_chain_reach(nonterminal)
            entry = (frozenset(closed), costs, rules)
            table.derivable[key] = entry
        return entry

    # ------------------------------------------------------------------
    # State construction (the cold path)

    def _base_costs(
        self,
        table: _OpTable,
        arity: int,
        kid_states: tuple[State, ...],
        dyn_costs: dict[int, int] | None,
        metrics: LabelMetrics | None = None,
    ) -> tuple[dict[str, int], dict[str, Rule]]:
        """Best base-rule costs/rules at a transition, before chain closure.

        Walks the operator's arity-pre-filtered rule entries, summing
        child costs through the pre-resolved nonterminal ids.  Shared by
        state construction and the derivability guard so the two can
        never disagree about which base rules apply.
        """
        costs: dict[str, int] = {}
        rules: dict[str, Rule] = {}
        entries = table.rules_by_arity.get(arity, ())
        if metrics is not None:
            metrics.rule_checks += len(entries)
        for rule, lhs, static_cost, kid_ids in entries:
            if dyn_costs is None:
                total = static_cost
            else:
                total = dyn_costs.get(rule.number, static_cost)
            for nt_id, kid_state in zip(kid_ids, kid_states):
                total = add_costs(total, kid_state.cost_at(nt_id))
                if total >= INFINITE:
                    break
            if total < costs.get(lhs, INFINITE):
                costs[lhs] = total
                rules[lhs] = rule
        return costs, rules

    def _construct_state(
        self,
        table: _OpTable,
        arity: int,
        kid_states: tuple[State, ...],
        dyn_costs: dict[int, int] | None,
        metrics: LabelMetrics,
        base_pair: tuple[dict[str, int], dict[str, Rule]] | None = None,
    ) -> State:
        """The dynamic-programming step, run once per novel transition key."""
        if base_pair is None:
            costs, rules = self._base_costs(table, arity, kid_states, dyn_costs, metrics)
        else:
            # The derivability guard already computed (and counted) the
            # base pair for this key; copy before chain closure mutates.
            costs, rules = dict(base_pair[0]), dict(base_pair[1])

        if dyn_costs is None:
            chain_cost = None
        else:
            captured = dyn_costs

            def chain_cost(rule: Rule) -> int:
                return captured.get(rule.number, rule.cost)

        metrics.chain_checks += chain_closure(self.grammar, costs, rules, chain_cost)
        state, created = self.pool.intern(costs, rules)
        if created:
            metrics.states_created += 1
        return state

    # ------------------------------------------------------------------
    # Offline (eager) construction

    def build_eager(
        self, max_states: int | None = None, deadline_ns: int | None = None
    ) -> dict[str, object]:
        """Precompute every reachable transition at build time.

        This is the offline end of the paper's trade-off: state
        construction is driven over all ``(operator, child-state)``
        combinations of the interned state set, repeatedly, until a
        fixed point — afterwards labeling any forest over the grammar's
        operators performs pure table lookups (zero ``table_misses``),
        at the price of tables covering combinations a given workload
        may never present.  Since the children of distinct subtrees are
        independent, every combination of reachable states is reachable,
        so the fixed point is exactly the reachable table.

        Dynamic rules restrict what can be enumerated:

        * constraint rules have two possible signature outcomes (the
          static cost, or :data:`~repro.grammar.costs.INFINITE`), so
          their operators are enumerated over all outcome combinations
          — the restricted-dynamic-cost argument;
        * operators with fully general dynamic-cost rules, and grammars
          with dynamic *chain* rules (which make every transition
          node-dependent), cannot be precomputed and are left on demand
          — they are reported in the returned stats under ``skipped``.

        *max_states* caps the state pool as a runaway guard: when
        construction interns more states, the build stops and reports
        ``capped: True`` (the tables stay valid, just incomplete).
        *deadline_ns* is the wall-clock analogue: a build still running
        that many nanoseconds after it started stops between operator
        tables and reports ``deadline_exceeded: True``.  Both limits
        leave the partial tables warm and usable on demand — a budgeted
        :meth:`Selector.compile` turns either flag into a demotion to
        on-demand mode.  Returns the build stats dict, also available
        afterwards under ``stats()["eager"]``.
        """
        self._sync()
        states_before = len(self.pool)
        transitions_before = self.transition_count()
        metrics = LabelMetrics()
        skipped: list[str] = []
        if self._dyn_chain:
            # Every transition key embeds node-evaluated chain outcomes.
            skipped = sorted(self._tables)
        else:
            for name, table in self._tables.items():
                if any(rule.constraint is None for rule in table.dyn_rules):
                    skipped.append(name)
            skipped.sort()
        capped = False
        deadline_exceeded = False
        rounds = 0
        start_ns = time.monotonic_ns()
        # The deadline is enforced *inside* _eager_fill's construction
        # loops, not only at per-operator boundaries — one operator's
        # closure can be arbitrarily large, so a boundary-only check
        # would overshoot the budget by an entire operator table.
        deadline_at = None if deadline_ns is None else start_ns + deadline_ns
        with Timer() as timer:
            if not self._dyn_chain:
                while True:
                    rounds += 1
                    snapshot = list(self.pool.states)
                    grew = self.transition_count()
                    for name, table in list(self._tables.items()):
                        if name in skipped:
                            continue
                        for arity in table.rules_by_arity:
                            if self._eager_fill(table, arity, snapshot, metrics, deadline_at):
                                deadline_exceeded = True
                                break
                        if max_states is not None and len(self.pool) > max_states:
                            capped = True
                            break
                        if deadline_exceeded or (
                            deadline_at is not None and time.monotonic_ns() > deadline_at
                        ):
                            deadline_exceeded = True
                            break
                    if capped or deadline_exceeded:
                        break
                    if len(self.pool) == len(snapshot) and self.transition_count() == grew:
                        break
        self._eager = {
            "rounds": rounds,
            "states_before": states_before,
            "states": len(self.pool),
            "transitions_before": transitions_before,
            "transitions": self.transition_count(),
            "states_created": metrics.states_created,
            "rule_checks": metrics.rule_checks,
            "chain_checks": metrics.chain_checks,
            "build_seconds": timer.elapsed,
            "skipped": skipped,
            "capped": capped,
            "deadline_exceeded": deadline_exceeded,
        }
        return self._eager

    def _eager_fill(
        self,
        table: _OpTable,
        arity: int,
        states: list[State],
        metrics: LabelMetrics,
        deadline_at: int | None = None,
    ) -> bool:
        """Construct every missing transition of one (operator, arity)
        slot over the given state snapshot.

        *deadline_at* (absolute monotonic ns) is checked before each
        state construction — the expensive step — so the build stops
        within one construction of the deadline even when a single
        operator's closure dominates the whole fixed point.  Returns
        ``True`` when the deadline fired mid-fill (the tables keep
        whatever was constructed; they stay valid, just incomplete).
        """
        over = (
            (lambda: False)
            if deadline_at is None
            else (lambda: time.monotonic_ns() > deadline_at)
        )
        if table.dyn_rules:
            # Constraint-only operator: enumerate the finite signature
            # space alongside the child-state combinations, mirroring
            # the keys _transition builds from node-evaluated outcomes.
            dyn_rules = table.dyn_rules
            outcome_space = [(rule.cost, INFINITE) for rule in dyn_rules]
            dyn = table.dyn
            for kid_states in itertools.product(states, repeat=arity):
                kid_ids = tuple(state.index for state in kid_states)
                for signature in itertools.product(*outcome_space):
                    key = (kid_ids, signature)
                    if key in dyn:
                        continue
                    if over():
                        return True
                    dyn_costs = {
                        rule.number: cost for rule, cost in zip(dyn_rules, signature)
                    }
                    dyn[key] = self._construct_state(
                        table, arity, kid_states, dyn_costs, metrics
                    )
            return False
        if arity == 0:
            if table.nullary is None:
                table.nullary = self._construct_state(table, 0, (), None, metrics)
        elif arity == 1:
            unary = table.unary
            for s0 in states:
                if s0.index not in unary:
                    if over():
                        return True
                    unary[s0.index] = self._construct_state(table, 1, (s0,), None, metrics)
        elif arity == 2:
            binary = table.binary
            for s0 in states:
                row = binary.get(s0.index)
                if row is None:
                    row = binary[s0.index] = {}
                for s1 in states:
                    if s1.index not in row:
                        if over():
                            return True
                        row[s1.index] = self._construct_state(table, 2, (s0, s1), None, metrics)
        else:
            nary = table.nary
            for kid_states in itertools.product(states, repeat=arity):
                key = tuple(state.index for state in kid_states)
                if key not in nary:
                    if over():
                        return True
                    nary[key] = self._construct_state(table, arity, kid_states, None, metrics)
        return False

    # ------------------------------------------------------------------
    # Introspection

    @property
    def states(self) -> list[State]:
        return self.pool.states

    def transition_count(self) -> int:
        """Total memoized transitions across all per-operator tables."""
        return sum(table.transition_count() for table in self._tables.values())

    def stats(self) -> dict[str, object]:
        """Automaton size row (states interned, transitions memoized).

        After :meth:`build_eager`, an ``eager`` entry reports the
        offline build: table growth (states/transitions before and
        after), construction work, build seconds, skipped operators,
        and whether the *max_states* cap fired.
        """
        row: dict[str, object] = {
            "grammar": self.grammar.name,
            "states": len(self.pool),
            "transitions": self.transition_count(),
        }
        if self._eager is not None:
            row["eager"] = dict(self._eager)
        return row

    def __repr__(self) -> str:
        return (
            f"OnDemandAutomaton({self.grammar.name!r}, states={len(self.pool)}, "
            f"transitions={self.transition_count()})"
        )


def label_ondemand(
    grammar_or_automaton: Grammar | OnDemandAutomaton,
    forest: Forest,
    metrics: LabelMetrics | None = None,
) -> AutomatonLabeling:
    """Convenience: label *forest* with an on-demand automaton.

    A thin wrapper over :class:`~repro.selection.selector.Selector`
    (imported lazily to avoid a module cycle).  Passing a
    :class:`Grammar` builds a throwaway automaton (no amortization
    across calls); pass a persistent :class:`OnDemandAutomaton` — or
    keep a ``Selector`` — to reuse warm tables.
    """
    from repro.selection.selector import Selector

    if isinstance(grammar_or_automaton, OnDemandAutomaton):
        selector = Selector.wrap(grammar_or_automaton)
    else:
        selector = Selector(grammar_or_automaton, mode="ondemand")
    return selector.label(forest, metrics)
