"""The on-demand tree-parsing automaton labeler (the paper's core).

Instead of recomputing a full cost vector on every node the way dynamic
programming does, the automaton labels each node with an interned
:class:`~repro.selection.states.State` found through a transition
table keyed by ``(operator, child states)``.  Tables are built *lazily*:
the first time an ``(operator, child-state-tuple)`` key is seen, the
state is constructed with exactly the dynamic-programming computation
(base-rule checks plus chain closure over **delta** costs) and memoized;
every later hit is a single dictionary lookup.  Repeated labeling of
recurring forest shapes therefore amortizes the construction work —
:class:`~repro.metrics.counters.LabelMetrics` separates the two kinds
of work (``rule_checks``/``chain_checks`` versus ``table_lookups``) so
the amortization claim is directly measurable.

The automaton requires a normal-form grammar: every base rule rooted at
an operator consumes each child exactly once, so the per-child
normalisation deltas shift all candidate costs by the same constant and
the locally-cheapest rule choice stays globally optimal.  Grammars with
multi-node patterns are normalized transparently on construction.

Dynamic costs and constraints are handled through a per-node *dynamic
signature*: the node-evaluated costs of the dynamic rules relevant to
its operator become part of the transition key, so constrained rules
split an operator's transitions into the few variants the constraint
outcomes induce (the paper's restricted-dynamic-cost argument) while
fully general dynamic costs degrade gracefully to per-outcome entries.
Dynamic callables only run where the DP labeler would run them: rules
from multi-node patterns require a structural match of the original
pattern, and dynamic chain rules require their source nonterminal to
be derivable at the node (a memoized derivability set keeps this off
the warm path).

The grammar may be extended while the automaton is live (the JIT
flexibility argument): a grammar version bump invalidates the state
pool and transition tables, which are then rebuilt on demand.
"""

from __future__ import annotations

from repro.grammar.closure import chain_closure
from repro.grammar.costs import INFINITE, add_costs, is_finite
from repro.grammar.grammar import Grammar
from repro.grammar.normalize import normalize
from repro.grammar.rule import Rule
from repro.ir.node import Forest, Node
from repro.metrics.counters import LabelMetrics
from repro.metrics.timer import Timer
from repro.selection.cover import Labeling
from repro.selection.label_dp import dynamic_cost_at
from repro.selection.states import State, StatePool

__all__ = ["AutomatonLabeling", "OnDemandAutomaton", "label_ondemand"]

#: Transition key: (operator name, child state indices, dynamic signature).
TransitionKey = tuple[str, tuple[int, ...], tuple["int | None", ...]]

#: Dynamic-signature slot for a chain rule whose source nonterminal was not
#: derivable at the node, so its cost callable was (correctly) never run.
#: ``None`` cannot collide with any integer a cost callable may return.
UNEVALUATED = None


class AutomatonLabeling(Labeling):
    """A forest labeling that stores one interned state per node.

    Costs returned by :meth:`cost_of` are state-relative *delta* costs;
    rule choices are nevertheless globally optimal (see module docs).
    """

    def __init__(self, automaton: "OnDemandAutomaton", metrics: LabelMetrics | None = None) -> None:
        super().__init__(automaton.grammar, metrics)
        self.automaton = automaton
        self._states: dict[int, State] = {}

    def state_of(self, node: Node) -> State | None:
        """The interned state labeling *node* (None when unlabeled)."""
        return self._states.get(id(node))

    def rule_for(self, node: Node, nonterminal: str) -> Rule | None:
        state = self._states.get(id(node))
        return None if state is None else state.rule_for(nonterminal)

    def cost_of(self, node: Node, nonterminal: str) -> int:
        state = self._states.get(id(node))
        return INFINITE if state is None else state.cost_of(nonterminal)


class OnDemandAutomaton:
    """A tree-parsing automaton whose tables grow on demand.

    The automaton is meant to be long-lived: construct it once per
    grammar and call :meth:`label` for every forest.  State pool and
    transition tables persist across calls, so recurring forest shapes
    are labeled by table lookups alone.
    """

    def __init__(self, grammar: Grammar) -> None:
        self.source_grammar = grammar
        self._source_version: int | None = None
        self.grammar: Grammar = grammar
        self.pool = StatePool()
        self._transitions: dict[TransitionKey, State] = {}
        self._dyn_chain: list[Rule] = []
        self._empty_chain_signature: tuple[None, ...] = ()
        self._dyn_by_op: dict[str, tuple[Rule, ...]] = {}
        self._derivable_cache: dict[
            tuple[str, tuple[int, ...], tuple[int, ...]],
            tuple[frozenset[str], dict[str, int], dict[str, Rule]],
        ] = {}
        self._static_reach_cache: dict[str, frozenset[str]] = {}
        self._sync()

    # ------------------------------------------------------------------
    # Grammar synchronisation

    def _sync(self) -> None:
        """(Re)build derived structures when the source grammar changed."""
        if self._source_version == self.source_grammar.version:
            return
        source = self.source_grammar
        self.grammar = source if source.is_normal_form else normalize(source).grammar
        self._source_version = source.version
        self.pool = StatePool()
        self._transitions = {}
        self._dyn_chain = [rule for rule in self.grammar.chain_rules() if rule.is_dynamic]
        self._empty_chain_signature = (UNEVALUATED,) * len(self._dyn_chain)
        self._dyn_by_op = {}
        self._derivable_cache = {}
        self._static_reach_cache = {}

    def _dynamic_rules_for(self, op_name: str) -> tuple[Rule, ...]:
        """Dynamic non-chain rules rooted at *op_name* (node-evaluated)."""
        rules = self._dyn_by_op.get(op_name)
        if rules is None:
            rules = tuple(rule for rule in self.grammar.rules_for_op(op_name) if rule.is_dynamic)
            self._dyn_by_op[op_name] = rules
        return rules

    def _static_chain_reach(self, nonterminal: str) -> frozenset[str]:
        """Nonterminals derivable from *nonterminal* via static chain rules."""
        reach = self._static_reach_cache.get(nonterminal)
        if reach is None:
            seen = {nonterminal}
            stack = [nonterminal]
            while stack:
                for rule in self.grammar.chain_rules_from(stack.pop()):
                    if not rule.is_dynamic and rule.lhs not in seen:
                        seen.add(rule.lhs)
                        stack.append(rule.lhs)
            reach = frozenset(seen)
            self._static_reach_cache[nonterminal] = reach
        return reach

    # ------------------------------------------------------------------
    # Labeling

    def label(self, forest: Forest, metrics: LabelMetrics | None = None) -> AutomatonLabeling:
        """Label *forest* bottom-up by transition-table lookups."""
        self._sync()
        labeling = AutomatonLabeling(self, metrics)
        run = labeling.metrics
        node_states = labeling._states
        with Timer() as timer:
            for node in forest.nodes():
                kid_states = tuple(node_states[id(kid)] for kid in node.kids)
                state = self._transition(node, kid_states, run)
                node_states[id(node)] = state
                run.nodes_labeled += 1
        run.seconds += timer.elapsed
        return labeling

    def _transition(self, node: Node, kid_states: tuple[State, ...], metrics: LabelMetrics) -> State:
        op_name = node.op.name
        dyn_base = self._dynamic_rules_for(op_name)
        if dyn_base:
            dyn_costs: dict[int, int] | None = {}
            for rule in dyn_base:
                dyn_costs[rule.number] = dynamic_cost_at(rule, node, metrics)
            dyn_signature = tuple(dyn_costs[rule.number] for rule in dyn_base)
        else:
            dyn_costs = None
            dyn_signature = ()
        base_pair = None
        if self._dyn_chain:
            derivable, base_costs, base_rules = self._initial_derivable(
                op_name, kid_states, dyn_costs, dyn_signature, metrics
            )
            dyn_costs, chain_signature = self._evaluate_dynamic_chains(
                node, derivable, dyn_costs, metrics
            )
            dyn_signature = dyn_signature + chain_signature
            base_pair = (base_costs, base_rules)
        key: TransitionKey = (op_name, tuple(s.index for s in kid_states), dyn_signature)
        return self._lookup(key, op_name, kid_states, dyn_costs, metrics, base_pair)

    def _evaluate_dynamic_chains(
        self,
        node: Node,
        initial_derivable: frozenset[str],
        dyn_costs: dict[int, int] | None,
        metrics: LabelMetrics,
    ) -> tuple[dict[int, int] | None, tuple["int | None", ...]]:
        """Evaluate dynamic chain-rule costs, only where they can apply.

        A dynamic chain rule's callable runs only when its source
        nonterminal is derivable at the node — the same guard the DP
        labeler gets from ``chain_closure``'s finite-source check — and
        the outcome joins the transition key.  Unreached rules get the
        :data:`UNEVALUATED` sentinel; derivability grows to a fixed
        point as finite outcomes unlock further chain rules.
        """
        derivable = set(initial_derivable)
        evaluated: dict[int, int] = {}
        progress = True
        while progress:
            progress = False
            for rule in self._dyn_chain:
                if rule.number in evaluated or rule.pattern.symbol not in derivable:
                    continue
                metrics.dynamic_evals += 1
                cost = rule.cost_at(node)
                evaluated[rule.number] = cost
                if is_finite(cost):
                    derivable |= self._static_chain_reach(rule.lhs)
                    progress = True
        if not evaluated:
            # Nothing ran: keep the caller's dict (warm path, no copy).
            return dyn_costs, self._empty_chain_signature
        merged = dict(dyn_costs) if dyn_costs else {}
        merged.update(evaluated)
        signature = tuple(evaluated.get(rule.number, UNEVALUATED) for rule in self._dyn_chain)
        return merged, signature

    def _initial_derivable(
        self,
        op_name: str,
        kid_states: tuple[State, ...],
        dyn_costs: dict[int, int] | None,
        base_signature: tuple[int, ...],
        metrics: LabelMetrics,
    ) -> tuple[frozenset[str], dict[str, int], dict[str, Rule]]:
        """Nonterminals derivable at a node before dynamic chain rules.

        Depends only on the transition key's static part, so the result
        — including the base (costs, rules) pair, which a subsequent
        state construction reuses instead of recomputing — is memoized
        alongside the transition tables.  The cached dicts must not be
        mutated by callers.
        """
        key = (op_name, tuple(state.index for state in kid_states), base_signature)
        entry = self._derivable_cache.get(key)
        if entry is None:
            costs, rules = self._base_costs(op_name, kid_states, dyn_costs, metrics)
            closed: set[str] = set()
            for nonterminal in costs:
                closed |= self._static_chain_reach(nonterminal)
            entry = (frozenset(closed), costs, rules)
            self._derivable_cache[key] = entry
        return entry

    def _base_costs(
        self,
        op_name: str,
        kid_states: tuple[State, ...],
        dyn_costs: dict[int, int] | None,
        metrics: LabelMetrics | None = None,
    ) -> tuple[dict[str, int], dict[str, Rule]]:
        """Best base-rule costs/rules at a transition, before chain closure.

        Shared by state construction and the derivability guard so the
        two can never disagree about which base rules apply.
        """
        costs: dict[str, int] = {}
        rules: dict[str, Rule] = {}
        for rule in self.grammar.rules_for_op(op_name):
            if metrics is not None:
                metrics.rule_checks += 1
            pattern_kids = rule.pattern.kids
            if len(pattern_kids) != len(kid_states):
                continue
            total = rule.cost if dyn_costs is None else dyn_costs.get(rule.number, rule.cost)
            for kid_pattern, kid_state in zip(pattern_kids, kid_states):
                total = add_costs(total, kid_state.cost_of(kid_pattern.symbol))
                if total >= INFINITE:
                    break
            if total < costs.get(rule.lhs, INFINITE):
                costs[rule.lhs] = total
                rules[rule.lhs] = rule
        return costs, rules

    def _lookup(
        self,
        key: TransitionKey,
        op_name: str,
        kid_states: tuple[State, ...],
        dyn_costs: dict[int, int] | None,
        metrics: LabelMetrics,
        base_pair: tuple[dict[str, int], dict[str, Rule]] | None = None,
    ) -> State:
        metrics.table_lookups += 1
        state = self._transitions.get(key)
        if state is None:
            metrics.table_misses += 1
            state = self._construct_state(op_name, kid_states, dyn_costs, metrics, base_pair)
            self._transitions[key] = state
        return state

    def _construct_state(
        self,
        op_name: str,
        kid_states: tuple[State, ...],
        dyn_costs: dict[int, int] | None,
        metrics: LabelMetrics,
        base_pair: tuple[dict[str, int], dict[str, Rule]] | None = None,
    ) -> State:
        """The dynamic-programming step, run once per novel transition key."""
        if base_pair is None:
            costs, rules = self._base_costs(op_name, kid_states, dyn_costs, metrics)
        else:
            # The derivability guard already computed (and counted) the
            # base pair for this key; copy before chain closure mutates.
            costs, rules = dict(base_pair[0]), dict(base_pair[1])

        if dyn_costs is None:
            chain_cost = None
        else:
            captured = dyn_costs

            def chain_cost(rule: Rule) -> int:
                return captured.get(rule.number, rule.cost)

        metrics.chain_checks += chain_closure(self.grammar, costs, rules, chain_cost)
        state, created = self.pool.intern(costs, rules)
        if created:
            metrics.states_created += 1
        return state

    # ------------------------------------------------------------------
    # Introspection

    @property
    def states(self) -> list[State]:
        return self.pool.states

    def stats(self) -> dict[str, object]:
        """Automaton size row (states interned, transitions memoized)."""
        return {
            "grammar": self.grammar.name,
            "states": len(self.pool),
            "transitions": len(self._transitions),
        }

    def __repr__(self) -> str:
        return (
            f"OnDemandAutomaton({self.grammar.name!r}, states={len(self.pool)}, "
            f"transitions={len(self._transitions)})"
        )


def label_ondemand(
    grammar_or_automaton: Grammar | OnDemandAutomaton,
    forest: Forest,
    metrics: LabelMetrics | None = None,
) -> AutomatonLabeling:
    """Convenience: label *forest* with an on-demand automaton.

    Passing a :class:`Grammar` builds a throwaway automaton (no
    amortization across calls); pass a persistent
    :class:`OnDemandAutomaton` to reuse its tables.
    """
    if isinstance(grammar_or_automaton, OnDemandAutomaton):
        automaton = grammar_or_automaton
    else:
        automaton = OnDemandAutomaton(grammar_or_automaton)
    return automaton.label(forest, metrics)
