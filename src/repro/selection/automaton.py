"""The on-demand tree-parsing automaton labeler (the paper's core).

Instead of recomputing a full cost vector on every node the way dynamic
programming does, the automaton labels each node with an interned
:class:`~repro.selection.states.State` found through a transition
table keyed by ``(operator, child states)``.  Tables are built *lazily*:
the first time an ``(operator, child-state-tuple)`` key is seen, the
state is constructed with exactly the dynamic-programming computation
(base-rule checks plus chain closure over **delta** costs) and memoized;
every later hit is a couple of dictionary lookups.  Repeated labeling
of recurring forest shapes therefore amortizes the construction work —
:class:`~repro.metrics.counters.LabelMetrics` separates the two kinds
of work (``rule_checks``/``chain_checks`` versus ``table_lookups``) so
the amortization claim is directly measurable.

The warm path is integer-indexed throughout.  At sync time the
automaton interns nonterminals to dense ids (shared with the state
pool) and operators to per-operator :class:`_OpTable` objects holding
arity-pre-filtered rule lists with pre-resolved child nonterminal ids.
Transitions live in per-operator tables with arity-specialized fast
paths — nullary operators cache a single state, unary and binary
operators are keyed by child-state ids with no tuple allocation, and
only arity ≥ 3 pays for a key tuple.  When the grammar has no dynamic
rules (the precomputed ``has_dynamic`` flag) the labeler skips all
dynamic-rule machinery; when the caller passes no metrics object it
additionally takes a null-metrics loop that performs no counter
increments at all, so benchmarking raw speed measures table lookups
and nothing else.

The automaton requires a normal-form grammar: every base rule rooted at
an operator consumes each child exactly once, so the per-child
normalisation deltas shift all candidate costs by the same constant and
the locally-cheapest rule choice stays globally optimal.  Grammars with
multi-node patterns are normalized transparently on construction.

Dynamic costs and constraints are handled through a per-node *dynamic
signature*: the node-evaluated costs of the dynamic rules relevant to
its operator become part of the transition key, so constrained rules
split an operator's transitions into the few variants the constraint
outcomes induce (the paper's restricted-dynamic-cost argument) while
fully general dynamic costs degrade gracefully to per-outcome entries.
Dynamic callables only run where the DP labeler would run them: rules
from multi-node patterns require a structural match of the original
pattern, and dynamic chain rules require their source nonterminal to
be derivable at the node (a memoized derivability set keeps this off
the warm path).

The grammar may be extended while the automaton is live (the JIT
flexibility argument): a grammar version bump invalidates the state
pool and transition tables, which are then rebuilt on demand.
"""

from __future__ import annotations

from repro.grammar.closure import chain_closure
from repro.grammar.costs import INFINITE, add_costs, is_finite
from repro.grammar.grammar import Grammar
from repro.grammar.normalize import normalize
from repro.grammar.rule import Rule
from repro.ir.node import Forest, Node
from repro.metrics.counters import LabelMetrics
from repro.metrics.timer import Timer
from repro.selection.cover import Labeling
from repro.selection.label_dp import dynamic_cost_at
from repro.selection.states import State, StatePool

__all__ = ["AutomatonLabeling", "OnDemandAutomaton", "label_ondemand"]

#: Dynamic-signature slot for a chain rule whose source nonterminal was not
#: derivable at the node, so its cost callable was (correctly) never run.
#: ``None`` cannot collide with any integer a cost callable may return.
UNEVALUATED = None

#: Sink for construction-side counters in the null-metrics fast path:
#: written, never read.  Keeping one shared instance means the fast
#: loops carry no per-call allocation for it.
_NULL_METRICS = LabelMetrics()

#: One rule entry of an :class:`_OpTable`: the rule, its left-hand side,
#: its static cost, and the dense nonterminal ids of its pattern's kids.
_RuleEntry = tuple[Rule, str, int, tuple[int, ...]]


class _OpTable:
    """All per-operator structures, interned once per grammar sync.

    Transitions are arity-specialized: ``nullary`` caches the single
    leaf state, ``unary``/``binary`` are nested dicts keyed by child
    state ids (no key tuples on the warm path), ``nary`` covers arity
    ≥ 3, and ``dyn`` holds the general ``(child ids, dynamic
    signature)`` entries used when the grammar has dynamic rules.
    """

    __slots__ = (
        "op_id",
        "rules_by_arity",
        "dyn_rules",
        "nullary",
        "unary",
        "binary",
        "nary",
        "dyn",
        "derivable",
    )

    def __init__(self, op_id: int) -> None:
        self.op_id = op_id
        self.rules_by_arity: dict[int, tuple[_RuleEntry, ...]] = {}
        self.dyn_rules: tuple[Rule, ...] = ()
        self.nullary: State | None = None
        self.unary: dict[int, State] = {}
        self.binary: dict[int, dict[int, State]] = {}
        self.nary: dict[tuple[int, ...], State] = {}
        self.dyn: dict[tuple[tuple[int, ...], tuple["int | None", ...]], State] = {}
        self.derivable: dict[
            tuple[tuple[int, ...], tuple[int, ...]],
            tuple[frozenset[str], dict[str, int], dict[str, Rule]],
        ] = {}

    def transition_count(self) -> int:
        """Number of memoized transitions in this operator's tables."""
        total = len(self.unary) + len(self.nary) + len(self.dyn)
        total += sum(len(row) for row in self.binary.values())
        if self.nullary is not None:
            total += 1
        return total


class AutomatonLabeling(Labeling):
    """A forest labeling that stores one interned state per node.

    Costs returned by :meth:`cost_of` are state-relative *delta* costs;
    rule choices are nevertheless globally optimal (see module docs).
    """

    def __init__(self, automaton: "OnDemandAutomaton", metrics: LabelMetrics | None = None) -> None:
        super().__init__(automaton.grammar, metrics)
        self.automaton = automaton
        self._states: dict[int, State] = {}

    def state_of(self, node: Node) -> State | None:
        """The interned state labeling *node* (None when unlabeled)."""
        return self._states.get(id(node))

    def rule_for(self, node: Node, nonterminal: str) -> Rule | None:
        state = self._states.get(id(node))
        return None if state is None else state.rule_for(nonterminal)

    def cost_of(self, node: Node, nonterminal: str) -> int:
        state = self._states.get(id(node))
        return INFINITE if state is None else state.cost_of(nonterminal)


class OnDemandAutomaton:
    """A tree-parsing automaton whose tables grow on demand.

    The automaton is meant to be long-lived: construct it once per
    grammar and call :meth:`label` for every forest.  State pool and
    transition tables persist across calls, so recurring forest shapes
    are labeled by table lookups alone.
    """

    def __init__(self, grammar: Grammar) -> None:
        self.source_grammar = grammar
        self._source_version: int | None = None
        self.grammar: Grammar = grammar
        self.pool = StatePool()
        self.has_dynamic = False
        self._op_ids: dict[str, int] = {}
        self._tables: dict[str, _OpTable] = {}
        self._dyn_chain: list[Rule] = []
        self._empty_chain_signature: tuple[None, ...] = ()
        self._static_reach_cache: dict[str, frozenset[str]] = {}
        self._sync()

    # ------------------------------------------------------------------
    # Grammar synchronisation

    def _sync(self) -> None:
        """(Re)build derived structures when the source grammar changed."""
        if self._source_version == self.source_grammar.version:
            return
        source = self.source_grammar
        self.grammar = source if source.is_normal_form else normalize(source).grammar
        self._source_version = source.version
        self.pool = StatePool(self.grammar.nonterminals)
        self.has_dynamic = self.grammar.has_dynamic_rules
        self._op_ids = self.grammar.operator_ids()
        self._tables = {name: self._build_table(name, op_id) for name, op_id in self._op_ids.items()}
        self._dyn_chain = [rule for rule in self.grammar.chain_rules() if rule.is_dynamic]
        self._empty_chain_signature = (UNEVALUATED,) * len(self._dyn_chain)
        self._static_reach_cache = {}

    def _build_table(self, op_name: str, op_id: int) -> _OpTable:
        """Intern one operator: pre-filter its rules by arity, resolve
        its patterns' child nonterminals to dense ids."""
        table = _OpTable(op_id)
        by_arity: dict[int, list[_RuleEntry]] = {}
        for rule in self.grammar.rules_for_op(op_name):
            kid_ids = tuple(self.pool.declare(kid.symbol) for kid in rule.pattern.kids)
            by_arity.setdefault(len(kid_ids), []).append((rule, rule.lhs, rule.cost, kid_ids))
        table.rules_by_arity = {arity: tuple(entries) for arity, entries in by_arity.items()}
        table.dyn_rules = tuple(
            rule for rule in self.grammar.rules_for_op(op_name) if rule.is_dynamic
        )
        return table

    def _table_for(self, op_name: str) -> _OpTable:
        """The operator's table; foreign-dialect operators the grammar
        never mentions get an empty table (error states) on demand."""
        table = self._tables.get(op_name)
        if table is None:
            op_id = self._op_ids.setdefault(op_name, len(self._op_ids))
            table = self._build_table(op_name, op_id)
            self._tables[op_name] = table
        return table

    def _static_chain_reach(self, nonterminal: str) -> frozenset[str]:
        """Nonterminals derivable from *nonterminal* via static chain rules."""
        reach = self._static_reach_cache.get(nonterminal)
        if reach is None:
            seen = {nonterminal}
            stack = [nonterminal]
            while stack:
                for rule in self.grammar.chain_rules_from(stack.pop()):
                    if not rule.is_dynamic and rule.lhs not in seen:
                        seen.add(rule.lhs)
                        stack.append(rule.lhs)
            reach = frozenset(seen)
            self._static_reach_cache[nonterminal] = reach
        return reach

    # ------------------------------------------------------------------
    # Labeling

    def label(self, forest: Forest, metrics: LabelMetrics | None = None) -> AutomatonLabeling:
        """Label *forest* bottom-up by transition-table lookups.

        Metrics are opt-in: with ``metrics=None`` on a grammar without
        dynamic rules, the run takes the null-metrics fast loop and no
        counters (not even ``nodes_labeled``) are maintained.
        """
        self._sync()
        labeling = AutomatonLabeling(self, metrics)
        node_states = labeling._states
        order = forest.nodes()
        if self.has_dynamic:
            run = labeling.metrics
            with Timer() as timer:
                for node in order:
                    kid_states = tuple(node_states[id(kid)] for kid in node.kids)
                    state = self._transition(node, kid_states, run)
                    node_states[id(node)] = state
                    run.nodes_labeled += 1
            run.seconds += timer.elapsed
        elif metrics is not None:
            with Timer() as timer:
                self._label_static_counted(order, node_states, metrics)
            metrics.seconds += timer.elapsed
        else:
            self._label_static_fast(order, node_states)
        return labeling

    def _label_static_fast(self, order: list[Node], node_states: dict[int, State]) -> None:
        """Warm path for static grammars, no metrics: per node, one
        operator-table lookup plus one int-keyed get per child."""
        tables = self._tables
        for node in order:
            kids = node.kids
            op_name = node.op.name
            table = tables.get(op_name)
            if table is None:
                table = self._table_for(op_name)
            arity = len(kids)
            if arity == 2:
                s0 = node_states[id(kids[0])]
                s1 = node_states[id(kids[1])]
                row = table.binary.get(s0.index)
                if row is None:
                    row = table.binary[s0.index] = {}
                state = row.get(s1.index)
                if state is None:
                    state = self._construct_state(table, 2, (s0, s1), None, _NULL_METRICS)
                    row[s1.index] = state
            elif arity == 0:
                state = table.nullary
                if state is None:
                    state = self._construct_state(table, 0, (), None, _NULL_METRICS)
                    table.nullary = state
            elif arity == 1:
                s0 = node_states[id(kids[0])]
                state = table.unary.get(s0.index)
                if state is None:
                    state = self._construct_state(table, 1, (s0,), None, _NULL_METRICS)
                    table.unary[s0.index] = state
            else:
                kid_states = tuple(node_states[id(kid)] for kid in kids)
                key = tuple(state.index for state in kid_states)
                state = table.nary.get(key)
                if state is None:
                    state = self._construct_state(table, arity, kid_states, None, _NULL_METRICS)
                    table.nary[key] = state
            node_states[id(node)] = state

    def _label_static_counted(
        self, order: list[Node], node_states: dict[int, State], metrics: LabelMetrics
    ) -> None:
        """The static-grammar loop with full work counting (one table
        lookup is charged per node, regardless of arity nesting)."""
        tables = self._tables
        for node in order:
            kids = node.kids
            op_name = node.op.name
            table = tables.get(op_name)
            if table is None:
                table = self._table_for(op_name)
            arity = len(kids)
            metrics.table_lookups += 1
            if arity == 2:
                s0 = node_states[id(kids[0])]
                s1 = node_states[id(kids[1])]
                row = table.binary.get(s0.index)
                if row is None:
                    row = table.binary[s0.index] = {}
                state = row.get(s1.index)
                if state is None:
                    metrics.table_misses += 1
                    state = self._construct_state(table, 2, (s0, s1), None, metrics)
                    row[s1.index] = state
            elif arity == 0:
                state = table.nullary
                if state is None:
                    metrics.table_misses += 1
                    state = self._construct_state(table, 0, (), None, metrics)
                    table.nullary = state
            elif arity == 1:
                s0 = node_states[id(kids[0])]
                state = table.unary.get(s0.index)
                if state is None:
                    metrics.table_misses += 1
                    state = self._construct_state(table, 1, (s0,), None, metrics)
                    table.unary[s0.index] = state
            else:
                kid_states = tuple(node_states[id(kid)] for kid in kids)
                key = tuple(state.index for state in kid_states)
                state = table.nary.get(key)
                if state is None:
                    metrics.table_misses += 1
                    state = self._construct_state(table, arity, kid_states, None, metrics)
                    table.nary[key] = state
            node_states[id(node)] = state
            metrics.nodes_labeled += 1

    # ------------------------------------------------------------------
    # Dynamic-grammar path

    def _transition(self, node: Node, kid_states: tuple[State, ...], metrics: LabelMetrics) -> State:
        table = self._table_for(node.op.name)
        dyn_base = table.dyn_rules
        if dyn_base:
            dyn_costs: dict[int, int] | None = {}
            for rule in dyn_base:
                dyn_costs[rule.number] = dynamic_cost_at(rule, node, metrics)
            dyn_signature = tuple(dyn_costs[rule.number] for rule in dyn_base)
        else:
            dyn_costs = None
            dyn_signature = ()
        kid_ids = tuple(state.index for state in kid_states)
        base_pair = None
        if self._dyn_chain:
            derivable, base_costs, base_rules = self._initial_derivable(
                table, kid_ids, kid_states, dyn_costs, dyn_signature, metrics
            )
            dyn_costs, chain_signature = self._evaluate_dynamic_chains(
                node, derivable, dyn_costs, metrics
            )
            dyn_signature = dyn_signature + chain_signature
            base_pair = (base_costs, base_rules)
        key = (kid_ids, dyn_signature)
        metrics.table_lookups += 1
        state = table.dyn.get(key)
        if state is None:
            metrics.table_misses += 1
            state = self._construct_state(
                table, len(kid_states), kid_states, dyn_costs, metrics, base_pair
            )
            table.dyn[key] = state
        return state

    def _evaluate_dynamic_chains(
        self,
        node: Node,
        initial_derivable: frozenset[str],
        dyn_costs: dict[int, int] | None,
        metrics: LabelMetrics,
    ) -> tuple[dict[int, int] | None, tuple["int | None", ...]]:
        """Evaluate dynamic chain-rule costs, only where they can apply.

        A dynamic chain rule's callable runs only when its source
        nonterminal is derivable at the node — the same guard the DP
        labeler gets from ``chain_closure``'s finite-source check — and
        the outcome joins the transition key.  Unreached rules get the
        :data:`UNEVALUATED` sentinel; derivability grows to a fixed
        point as finite outcomes unlock further chain rules.
        """
        derivable = set(initial_derivable)
        evaluated: dict[int, int] = {}
        progress = True
        while progress:
            progress = False
            for rule in self._dyn_chain:
                if rule.number in evaluated or rule.pattern.symbol not in derivable:
                    continue
                metrics.dynamic_evals += 1
                cost = rule.cost_at(node)
                evaluated[rule.number] = cost
                if is_finite(cost):
                    derivable |= self._static_chain_reach(rule.lhs)
                    progress = True
        if not evaluated:
            # Nothing ran: keep the caller's dict (warm path, no copy).
            return dyn_costs, self._empty_chain_signature
        merged = dict(dyn_costs) if dyn_costs else {}
        merged.update(evaluated)
        signature = tuple(evaluated.get(rule.number, UNEVALUATED) for rule in self._dyn_chain)
        return merged, signature

    def _initial_derivable(
        self,
        table: _OpTable,
        kid_ids: tuple[int, ...],
        kid_states: tuple[State, ...],
        dyn_costs: dict[int, int] | None,
        base_signature: tuple[int, ...],
        metrics: LabelMetrics,
    ) -> tuple[frozenset[str], dict[str, int], dict[str, Rule]]:
        """Nonterminals derivable at a node before dynamic chain rules.

        Depends only on the transition key's static part, so the result
        — including the base (costs, rules) pair, which a subsequent
        state construction reuses instead of recomputing — is memoized
        alongside the transition tables.  The cached dicts must not be
        mutated by callers.
        """
        key = (kid_ids, base_signature)
        entry = table.derivable.get(key)
        if entry is None:
            costs, rules = self._base_costs(table, len(kid_states), kid_states, dyn_costs, metrics)
            closed: set[str] = set()
            for nonterminal in costs:
                closed |= self._static_chain_reach(nonterminal)
            entry = (frozenset(closed), costs, rules)
            table.derivable[key] = entry
        return entry

    # ------------------------------------------------------------------
    # State construction (the cold path)

    def _base_costs(
        self,
        table: _OpTable,
        arity: int,
        kid_states: tuple[State, ...],
        dyn_costs: dict[int, int] | None,
        metrics: LabelMetrics | None = None,
    ) -> tuple[dict[str, int], dict[str, Rule]]:
        """Best base-rule costs/rules at a transition, before chain closure.

        Walks the operator's arity-pre-filtered rule entries, summing
        child costs through the pre-resolved nonterminal ids.  Shared by
        state construction and the derivability guard so the two can
        never disagree about which base rules apply.
        """
        costs: dict[str, int] = {}
        rules: dict[str, Rule] = {}
        entries = table.rules_by_arity.get(arity, ())
        if metrics is not None:
            metrics.rule_checks += len(entries)
        for rule, lhs, static_cost, kid_ids in entries:
            if dyn_costs is None:
                total = static_cost
            else:
                total = dyn_costs.get(rule.number, static_cost)
            for nt_id, kid_state in zip(kid_ids, kid_states):
                total = add_costs(total, kid_state.cost_at(nt_id))
                if total >= INFINITE:
                    break
            if total < costs.get(lhs, INFINITE):
                costs[lhs] = total
                rules[lhs] = rule
        return costs, rules

    def _construct_state(
        self,
        table: _OpTable,
        arity: int,
        kid_states: tuple[State, ...],
        dyn_costs: dict[int, int] | None,
        metrics: LabelMetrics,
        base_pair: tuple[dict[str, int], dict[str, Rule]] | None = None,
    ) -> State:
        """The dynamic-programming step, run once per novel transition key."""
        if base_pair is None:
            costs, rules = self._base_costs(table, arity, kid_states, dyn_costs, metrics)
        else:
            # The derivability guard already computed (and counted) the
            # base pair for this key; copy before chain closure mutates.
            costs, rules = dict(base_pair[0]), dict(base_pair[1])

        if dyn_costs is None:
            chain_cost = None
        else:
            captured = dyn_costs

            def chain_cost(rule: Rule) -> int:
                return captured.get(rule.number, rule.cost)

        metrics.chain_checks += chain_closure(self.grammar, costs, rules, chain_cost)
        state, created = self.pool.intern(costs, rules)
        if created:
            metrics.states_created += 1
        return state

    # ------------------------------------------------------------------
    # Introspection

    @property
    def states(self) -> list[State]:
        return self.pool.states

    def transition_count(self) -> int:
        """Total memoized transitions across all per-operator tables."""
        return sum(table.transition_count() for table in self._tables.values())

    def stats(self) -> dict[str, object]:
        """Automaton size row (states interned, transitions memoized)."""
        return {
            "grammar": self.grammar.name,
            "states": len(self.pool),
            "transitions": self.transition_count(),
        }

    def __repr__(self) -> str:
        return (
            f"OnDemandAutomaton({self.grammar.name!r}, states={len(self.pool)}, "
            f"transitions={self.transition_count()})"
        )


def label_ondemand(
    grammar_or_automaton: Grammar | OnDemandAutomaton,
    forest: Forest,
    metrics: LabelMetrics | None = None,
) -> AutomatonLabeling:
    """Convenience: label *forest* with an on-demand automaton.

    Passing a :class:`Grammar` builds a throwaway automaton (no
    amortization across calls); pass a persistent
    :class:`OnDemandAutomaton` to reuse its tables.
    """
    if isinstance(grammar_or_automaton, OnDemandAutomaton):
        automaton = grammar_or_automaton
    else:
        automaton = OnDemandAutomaton(grammar_or_automaton)
    return automaton.label(forest, metrics)
