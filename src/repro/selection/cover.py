"""Labeling results and covers.

A *labeling* is what a labeler (dynamic programming, offline automaton,
or on-demand automaton) produces for a forest: enough information to
answer, for every node and nonterminal, "which rule starts the cheapest
derivation of this subtree from this nonterminal?".  A *cover* is the
set of (node, nonterminal, rule) decisions actually used when reducing
from the start nonterminal; its total cost is the metric the optimality
tests compare across labelers.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.errors import CoverError
from repro.grammar.grammar import Grammar
from repro.grammar.rule import Rule
from repro.ir.node import Forest, Node
from repro.metrics.counters import LabelMetrics

__all__ = ["Labeling", "Cover", "CoverEntry", "extract_cover", "require_structural_match"]


def require_structural_match(pattern, node: Node) -> None:
    """Raise :class:`CoverError` unless *pattern*'s root can match *node*.

    Shared by the cover and reducer walkers to reject structurally
    impossible rules (a corrupt labeling, or operator sets disagreeing
    about a name's arity) instead of silently mis-walking the tree.
    """
    if pattern.is_operator and pattern.symbol != node.op.name:
        raise CoverError(
            f"pattern {pattern} rooted at {pattern.symbol} does not match "
            f"node {node.op.name} (nid={node.nid})"
        )
    if len(pattern.kids) != len(node.kids):
        raise CoverError(
            f"pattern {pattern} with arity {len(pattern.kids)} does not match "
            f"node {node.op.name} (nid={node.nid}) with arity {len(node.kids)}"
        )


class Labeling(ABC):
    """Abstract result of labeling a forest.

    Concrete labelings differ in what they store per node (full cost
    vectors for dynamic programming, automaton states for the automaton
    labelers) but expose the same queries to the reducer.
    """

    def __init__(self, grammar: Grammar, metrics: LabelMetrics | None = None) -> None:
        self.grammar = grammar
        self.metrics = metrics if metrics is not None else LabelMetrics()

    @abstractmethod
    def rule_for(self, node: Node, nonterminal: str) -> Rule | None:
        """The rule starting the cheapest derivation of *node* from *nonterminal*."""

    @abstractmethod
    def cost_of(self, node: Node, nonterminal: str) -> int:
        """Cost of deriving *node* from *nonterminal*.

        Dynamic-programming labelings return absolute costs; automaton
        labelings return state-relative (delta) costs.  Costs are only
        comparable between nonterminals of the same node.
        """

    def require_rule(self, node: Node, nonterminal: str) -> Rule:
        """Like :meth:`rule_for` but raises :class:`CoverError` when absent."""
        rule = self.rule_for(node, nonterminal)
        if rule is None:
            raise CoverError(
                f"no derivation of node {node.op.name} (nid={node.nid}) from "
                f"nonterminal {nonterminal!r} with grammar {self.grammar.name!r}"
            )
        return rule


@dataclass(eq=False)
class CoverEntry:
    """One decision of a cover: *rule* used to derive *node* from *nonterminal*."""

    node: Node
    nonterminal: str
    rule: Rule

    @property
    def cost(self) -> int:
        return self.rule.cost_at(self.node)


@dataclass
class Cover:
    """A complete cover of a forest from the start nonterminal."""

    grammar: Grammar
    entries: list[CoverEntry] = field(default_factory=list)

    def total_cost(self) -> int:
        """Sum of the chosen rules' (node-evaluated) costs.

        Node/nonterminal combinations visited more than once through DAG
        sharing contribute once, mirroring the reducer's memoisation.
        """
        return sum(entry.cost for entry in self.entries)

    def rules_used(self) -> list[Rule]:
        return [entry.rule for entry in self.entries]

    def original_rules_used(self) -> list[Rule]:
        """The user-written rules (normalisation helpers folded away)."""
        return [entry.rule.original for entry in self.entries]

    def __len__(self) -> int:
        return len(self.entries)


def extract_cover(labeling: Labeling, forest: Forest, start: str | None = None) -> Cover:
    """Walk *labeling* top-down from the start nonterminal and collect the cover.

    This mirrors the reducer's traversal (including DAG memoisation) but
    collects decisions instead of running emit actions, so tests can
    compare covers across labelers without involving target back ends.
    The walk is iterative, so deep trees and long chain-rule sequences
    cannot overflow the interpreter stack.
    """
    grammar = labeling.grammar
    start_nt = start or grammar.start
    if start_nt is None:
        raise CoverError("grammar has no start nonterminal")
    cover = Cover(grammar=grammar)
    entries = cover.entries
    visited: set[tuple[int, str]] = set()
    targets: list[tuple[Node, str]] = []

    for root in forest.roots:
        stack: list[tuple[Node, str]] = [(root, start_nt)]
        while stack:
            node, nonterminal = stack.pop()
            key = (id(node), nonterminal)
            if key in visited:
                continue
            visited.add(key)
            rule = labeling.require_rule(node, nonterminal)
            entries.append(CoverEntry(node=node, nonterminal=nonterminal, rule=rule))
            if rule.is_chain:
                stack.append((node, rule.pattern.symbol))
                continue
            targets.clear()
            _pattern_targets(rule.pattern, node, targets)
            stack.extend(reversed(targets))
    return cover


def _pattern_targets(pattern, node: Node, targets: list[tuple[Node, str]]) -> None:
    """Collect the (node, nonterminal) pairs below *pattern* matched at *node*.

    Recursion depth is bounded by the grammar's pattern height (small by
    construction), not by the IR tree.
    """
    require_structural_match(pattern, node)
    for kid_pattern, kid_node in zip(pattern.kids, node.kids):
        if kid_pattern.is_nonterminal:
            targets.append((kid_node, kid_pattern.symbol))
        else:
            _pattern_targets(kid_pattern, kid_node, targets)
