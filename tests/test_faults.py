"""Unit tests for the deterministic fault-injection harness itself.

The chaos suite (``test_resilience.py``) trusts these injectors to fire
exactly when told to; this file pins that contract — call counting,
trigger semantics, byte corruption determinism, and the syscall-hook
patching lifecycle (install, count, crash, restore).
"""

from __future__ import annotations

import os
import time

import pytest

from conftest import DYNAMIC_TEXT, mul_cost, small_const
from repro.grammar import parse_grammar
from repro.selection import grammar_fingerprint
from repro.selection import selector as selector_module
from repro.testing import (
    ArtifactIOFaults,
    FaultyCallable,
    InjectedFault,
    SimulatedCrash,
    artifact_io_faults,
    corrupt_bytes,
    poison_action,
    poison_constraint,
    poison_dynamic_cost,
    truncate_bytes,
)


def _dynamic_grammar():
    return parse_grammar(DYNAMIC_TEXT, bindings={"small": small_const, "mulcost": mul_cost})


# ----------------------------------------------------------------------
# FaultyCallable


def test_faulty_callable_needs_a_trigger():
    with pytest.raises(ValueError, match="on_call, predicate, and/or latency_s"):
        FaultyCallable(lambda: None)


def test_on_call_fires_exactly_once_by_default():
    fault = FaultyCallable(lambda x: x + 1, on_call=2)
    assert fault(1) == 2
    with pytest.raises(InjectedFault, match="call #2"):
        fault(1)
    assert fault(1) == 2  # healed: non-sticky faults fire once
    assert fault.calls == 3
    assert fault.faults == 1


def test_sticky_fault_fires_forever_from_nth_call():
    fault = FaultyCallable(lambda: "ok", on_call=2, sticky=True)
    assert fault() == "ok"
    for _ in range(3):
        with pytest.raises(InjectedFault):
            fault()
    assert (fault.calls, fault.faults) == (4, 3)


def test_predicate_trigger_and_composition():
    fault = FaultyCallable(lambda x: -x, predicate=lambda x: x == 13)
    assert fault(5) == -5
    with pytest.raises(InjectedFault):
        fault(13)
    assert fault(7) == -7
    assert fault.faults == 1

    both = FaultyCallable(lambda x: x, on_call=1, predicate=lambda x: x == 13)
    with pytest.raises(InjectedFault):
        both(0)  # on_call trigger
    with pytest.raises(InjectedFault):
        both(13)  # predicate trigger
    assert both.faults == 2


def test_exc_factory_controls_the_exception_type():
    fault = FaultyCallable(lambda: None, on_call=1, exc_factory=lambda: OSError("disk"))
    with pytest.raises(OSError, match="disk"):
        fault()


def test_wrapper_impersonates_the_wrapped_callable():
    fault = FaultyCallable(small_const, on_call=10**9)
    assert fault.__name__ == small_const.__name__
    assert fault.__qualname__ == small_const.__qualname__
    assert fault.__module__ == small_const.__module__
    assert "small_const" in repr(fault)


def test_poisoning_keeps_grammar_fingerprints_stable():
    # Fingerprints identify dynamic callables by qualified name; the
    # wrapper copies those attributes, so a poisoned grammar still
    # matches artifacts compiled from the clean one.
    grammar = _dynamic_grammar()
    before = grammar_fingerprint(grammar)
    rule = next(r for r in grammar.rules if r.constraint is not None)
    fault, restore = poison_constraint(rule, on_call=10**9)
    assert grammar_fingerprint(grammar) == before
    restore()
    assert grammar_fingerprint(grammar) == before


def test_poison_helpers_install_and_restore():
    grammar = _dynamic_grammar()
    constrained = next(r for r in grammar.rules if r.constraint is not None)
    dynamic = next(r for r in grammar.rules if r.dynamic_cost is not None)

    fault, restore = poison_constraint(constrained, on_call=1)
    assert constrained.constraint is fault
    with pytest.raises(InjectedFault):
        constrained.constraint(None)
    restore()
    assert constrained.constraint is small_const

    fault, restore = poison_dynamic_cost(dynamic, predicate=lambda node: False)
    assert dynamic.dynamic_cost is fault
    restore()
    assert dynamic.dynamic_cost is mul_cost

    plain = next(r for r in grammar.rules if r.constraint is None and r.dynamic_cost is None)
    with pytest.raises(ValueError, match="no constraint to poison"):
        poison_constraint(plain, on_call=1)
    with pytest.raises(ValueError, match="no dynamic cost to poison"):
        poison_dynamic_cost(plain, on_call=1)


def test_poison_action_installs_passthrough_on_actionless_rules():
    grammar = _dynamic_grammar()
    rule = grammar.rules[0]
    assert rule.action is None
    fault, restore = poison_action(rule, on_call=2)
    assert rule.action is fault
    # Non-faulting calls forward like the default reducer behavior.
    assert rule.action(None, None, [["a"], "b"]) == ["a", "b"]
    with pytest.raises(InjectedFault):
        rule.action(None, None, [])
    restore()
    assert rule.action is None


# ----------------------------------------------------------------------
# Byte faults


def test_corrupt_bytes_flips_exactly_one_byte(tmp_path):
    path = tmp_path / "blob"
    path.write_bytes(b"hello world")
    assert corrupt_bytes(path, 0) == 0
    assert path.read_bytes() == bytes([ord("h") ^ 0xFF]) + b"ello world"
    # Negative offsets index from the end; a custom mask is honored.
    assert corrupt_bytes(path, -1, xor_mask=0x01) == 10
    assert path.read_bytes()[-1] == ord("d") ^ 0x01


def test_corrupt_bytes_seeded_offset_is_deterministic(tmp_path):
    a = tmp_path / "a"
    b = tmp_path / "b"
    payload = bytes(range(256))
    a.write_bytes(payload)
    b.write_bytes(payload)
    assert corrupt_bytes(a, seed=1234) == corrupt_bytes(b, seed=1234)
    assert a.read_bytes() == b.read_bytes()


def test_corrupt_bytes_rejects_empty_files_and_bad_offsets(tmp_path):
    path = tmp_path / "blob"
    path.write_bytes(b"")
    with pytest.raises(ValueError, match="empty"):
        corrupt_bytes(path)
    path.write_bytes(b"xy")
    with pytest.raises(ValueError, match="outside"):
        corrupt_bytes(path, 5)


def test_truncate_bytes(tmp_path):
    path = tmp_path / "blob"
    path.write_bytes(b"0123456789")
    assert truncate_bytes(path, keep=4) == 4
    assert path.read_bytes() == b"0123"
    assert truncate_bytes(path, fraction=0.5) == 2
    assert path.read_bytes() == b"01"
    assert truncate_bytes(path, keep=0) == 0
    assert path.read_bytes() == b""
    with pytest.raises(ValueError, match="exactly one"):
        truncate_bytes(path)
    with pytest.raises(ValueError, match="exactly one"):
        truncate_bytes(path, keep=1, fraction=0.5)
    path.write_bytes(b"xy")
    with pytest.raises(ValueError, match="cannot keep"):
        truncate_bytes(path, keep=5)


# ----------------------------------------------------------------------
# Syscall-level IO faults


def test_simulated_crash_is_not_an_exception():
    # The whole point: resilience-layer ``except Exception`` handlers
    # must never swallow a crash simulation.
    assert issubclass(SimulatedCrash, BaseException)
    assert not issubclass(SimulatedCrash, Exception)
    assert issubclass(InjectedFault, Exception)


def test_io_faults_fail_first_n_reads_then_recover(tmp_path):
    path = tmp_path / "blob"
    path.write_bytes(b"payload")
    with artifact_io_faults(fail_reads=2) as counters:
        for _ in range(2):
            with pytest.raises(OSError, match="injected IO failure"):
                selector_module._io_read_bytes(path)
        assert selector_module._io_read_bytes(path) == b"payload"
        assert counters.read == 3


def test_io_faults_crash_after_chosen_write_step(tmp_path):
    path = tmp_path / "blob"
    with artifact_io_faults(crash_after_step=2) as counters:
        fd = selector_module._io_open(str(path), os.O_WRONLY | os.O_CREAT)
        assert counters.write_steps == 1
        try:
            with pytest.raises(SimulatedCrash, match="after write step 2"):
                selector_module._io_write(fd, b"data")
        finally:
            os.close(fd)
    # The crash fires *after* the syscall completed: bytes are on disk.
    assert path.read_bytes() == b"data"
    assert counters.write_steps == 2


def test_io_faults_latency_delays_hooked_calls(tmp_path):
    path = tmp_path / "blob"
    path.write_bytes(b"x")
    with artifact_io_faults(latency_s=0.02):
        started = time.perf_counter()
        selector_module._io_read_bytes(path)
        assert time.perf_counter() - started >= 0.02


def test_io_hooks_restored_on_exit_even_after_errors(tmp_path):
    originals = {
        name: getattr(selector_module, name)
        for name in ("_io_read_bytes", "_io_open", "_io_write", "_io_fsync", "_io_replace")
    }
    faults = ArtifactIOFaults(fail_reads=1)
    with pytest.raises(RuntimeError):
        with faults:
            assert selector_module._io_read_bytes is not originals["_io_read_bytes"]
            raise RuntimeError("boom")
    for name, fn in originals.items():
        assert getattr(selector_module, name) is fn
