"""Shared grammars and benchmark forests for the selection tests.

The demo grammar is a small burg-style machine description exercising
chain rules, a multi-node (add-to-memory) rule, and several overlapping
``ADD`` rules; the dynamic grammar adds a constraint and an lburg-style
dynamic cost.  Forest builders return *fresh* node objects on every
call so tests can label "the same shape" repeatedly, which is exactly
the workload the on-demand automaton amortizes.
"""

from __future__ import annotations

import pytest

from repro.grammar import Grammar, parse_grammar
from repro.ir import Forest, NodeBuilder

DEMO_TEXT = """
%grammar demo
%start stmt

stmt: EXPR(reg)                          (0)
stmt: STORE(addr, reg)                   (1) "st %1, (%0)"
stmt: STORE(addr, ADD(LOAD(addr), reg))  (2) "add %1, (%0)"
addr: reg                                (0)
addr: ADD(reg, con)                      (0) "index"
reg:  REG                                (0)
reg:  LOAD(addr)                         (3)
reg:  ADD(reg, reg)                      (1)
reg:  ADD(reg, con)                      (1) "addi"
reg:  con                                (1) "li"
reg:  NEG(reg)                           (1)
reg:  SUB(reg, reg)                      (1)
reg:  MUL(reg, reg)                      (2)
con:  CNST                               (0)
"""


def small_const(node) -> bool:
    """Constraint: the constant fits in a 4-bit immediate."""
    return node.value is not None and 0 <= node.value < 16


def mul_cost(node) -> int:
    """Dynamic cost: multiplication by a shiftable constant is cheap."""
    kid = node.kids[1]
    if kid.op.name == "CNST" and kid.value in (2, 4, 8):
        return 1
    return 3


DYNAMIC_TEXT = """
%grammar dyn
%start stmt

stmt: EXPR(reg)       (0)
reg:  REG             (0)
reg:  con             (1) "li"
reg:  CNST            (0) @constraint(small)
reg:  ADD(reg, reg)   (1)
reg:  MUL(reg, con)   (mulcost)
reg:  MUL(reg, reg)   (3)
con:  CNST            (0)
"""


@pytest.fixture
def demo_grammar() -> Grammar:
    return parse_grammar(DEMO_TEXT)


@pytest.fixture
def dynamic_grammar() -> Grammar:
    return parse_grammar(DYNAMIC_TEXT, bindings={"small": small_const, "mulcost": mul_cost})


# ----------------------------------------------------------------------
# Benchmark forest shapes (fresh nodes per call; one is a shared DAG).


def build_flat_forest() -> Forest:
    """Three independent statement trees over most demo operators."""
    b = NodeBuilder()
    forest = Forest(name="flat")
    forest.add(b.expr(b.add(b.reg(1), b.cnst(4))))
    forest.add(b.store(b.add(b.reg(2), b.cnst(8)), b.mul(b.reg(3), b.reg(4))))
    forest.add(b.expr(b.neg(b.sub(b.reg(1), b.cnst(100)))))
    return forest


def build_deep_forest() -> Forest:
    """One deep left-leaning ADD chain under a store."""
    b = NodeBuilder()
    value = b.reg(0)
    for i in range(1, 9):
        value = b.add(value, b.cnst(i))
    forest = Forest(name="deep")
    forest.add(b.store(b.add(b.reg(9), b.cnst(16)), value))
    forest.add(b.expr(b.load(b.add(b.reg(9), b.cnst(24)))))
    return forest


def build_dag_forest() -> Forest:
    """Two roots sharing one address subtree (a genuine DAG)."""
    b = NodeBuilder()
    shared = b.add(b.reg(1), b.cnst(4))
    forest = Forest(name="dag")
    forest.add(b.expr(b.load(shared)))
    forest.add(b.store(shared, b.add(b.load(shared), b.reg(2))))
    return forest


BENCHMARK_BUILDERS = [build_flat_forest, build_deep_forest, build_dag_forest]


@pytest.fixture
def benchmark_forests() -> list[Forest]:
    return [build() for build in BENCHMARK_BUILDERS]


def build_dynamic_forest() -> Forest:
    """Shapes whose optimal rules depend on constraint/dynamic outcomes."""
    b = NodeBuilder()
    forest = Forest(name="dyn")
    forest.add(b.expr(b.add(b.cnst(3), b.cnst(200))))
    forest.add(b.expr(b.mul(b.reg(1), b.cnst(4))))
    forest.add(b.expr(b.mul(b.reg(1), b.cnst(5))))
    forest.add(b.expr(b.mul(b.add(b.reg(1), b.reg(2)), b.cnst(2))))
    return forest
