"""Tests for the structured forest validator (ir/validate satellite)."""

from __future__ import annotations

import pytest

from repro.bench.workloads import bench_grammar, random_forests
from repro.ir import (
    DEFAULT_OPERATORS,
    Forest,
    ForestValidationError,
    Node,
    NodeBuilder,
    OperatorSet,
    validate_forest,
)
from repro.selection import Selector
from repro.selection.selector import SelectorConfig


def _codes(issues) -> set[str]:
    return {issue.code for issue in issues}


def test_clean_forests_validate():
    for forest in random_forests(1, forests=3):
        assert validate_forest(forest, DEFAULT_OPERATORS) == []


def test_cycle_detection():
    b = NodeBuilder()
    inner = b.add(b.reg(1), b.reg(2))
    root = b.expr(inner)
    inner.kids = (inner.kids[0], inner)  # tie the knot
    issues = validate_forest(Forest([root]), collect=True)
    assert "IR001" in _codes(issues)


def test_dangling_child_and_bad_root():
    b = NodeBuilder()
    node = b.add(b.reg(1), b.reg(2))
    node.kids = (node.kids[0], "oops")
    issues = validate_forest([b.expr(node.kids[0]), "not-a-node"], collect=True)
    # The dangling root is IR002; the string kid is unreachable from the
    # valid root, so only the root issue appears here.
    assert "IR002" in _codes(issues)
    issues = validate_forest(Forest([Node(DEFAULT_OPERATORS["EXPR"], [node])]), collect=True)
    assert "IR002" in _codes(issues)


def test_unknown_operator_and_dialect_arity_conflict():
    foreign = OperatorSet(name="foreign")
    vec = foreign.define("VECADD", 2)
    b = NodeBuilder()
    root = b.expr(Node(vec, [b.reg(1), b.reg(2)]))
    issues = validate_forest(Forest([root]), DEFAULT_OPERATORS, collect=True)
    assert "IR003" in _codes(issues)

    conflicting = DEFAULT_OPERATORS.copy(name="conflicting")
    conflicting._ops["NEG"] = foreign.define("NEG", 2)
    issues = validate_forest(
        Forest([b.expr(b.neg(b.reg(1)))]), conflicting, collect=True
    )
    assert "IR005" in _codes(issues)


def test_arity_mismatch_against_own_operator():
    b = NodeBuilder()
    node = b.add(b.reg(1), b.reg(2))
    node.kids = (node.kids[0],)  # drop a child behind the constructor's back
    issues = validate_forest(Forest([b.expr(node)]), collect=True)
    assert "IR004" in _codes(issues)


def test_payload_issues():
    b = NodeBuilder()
    missing = b.cnst()  # CNST carries a payload; none given
    extra = b.add(b.reg(1), b.reg(2))
    extra.value = 7  # ADD carries no payload
    issues = validate_forest(Forest([b.expr(missing), b.expr(extra)]), collect=True)
    assert {"IR006", "IR007"} <= _codes(issues)


def test_statement_as_operand_and_nonstatement_root():
    b = NodeBuilder()
    stmt = b.expr(b.reg(1))
    bad_operand = Node(DEFAULT_OPERATORS["EXPR"], [b.reg(2)])
    node = b.add(b.reg(3), b.reg(3))
    node.kids = (node.kids[0], bad_operand)
    issues = validate_forest([b.expr(node), b.reg(9)], collect=True)
    codes = _codes(issues)
    assert "IR008" in codes
    assert "IR009" in codes
    del stmt


def test_collect_false_raises_with_issue_list():
    b = NodeBuilder()
    with pytest.raises(ForestValidationError) as excinfo:
        validate_forest([b.reg(1)])
    assert _codes(excinfo.value.issues) == {"IR009"}
    assert "IR009" in str(excinfo.value)


def test_selector_validate_flag():
    grammar = bench_grammar()
    strict = Selector(grammar, config=SelectorConfig(validate=True))
    b = NodeBuilder()
    good = Forest([b.expr(b.add(b.reg(1), b.cnst(2)))])
    strict.label(good)  # clean forest labels fine

    bad = Forest([b.add(b.reg(1), b.cnst(2))])  # value root: IR009
    with pytest.raises(ForestValidationError):
        strict.label(bad)
    with pytest.raises(ForestValidationError):
        strict.label_many([good, bad])

    relaxed = Selector(grammar)
    relaxed.label(bad)  # default config does not validate
