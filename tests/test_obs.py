"""Tests for the observability subsystem (``repro.obs``).

Layered like the package: the log2-bucket histogram algebra first —
including the exact-merge contract across a real ``fork()`` boundary,
the property the service's worker-snapshot aggregation rests on — then
the span tracer (parenting, ring bound, and the disabled null path's
zero-footprint guarantee), the exporters (JSONL round-trip through the
``python -m repro.obs render`` CLI, Prometheus text exposition), the
selector/service wiring, and the deprecation shims left behind by the
``repro.metrics.timer`` fold-in.
"""

from __future__ import annotations

import json
import multiprocessing
import warnings

import pytest

from repro.bench.workloads import bench_grammar, random_forests
from repro.obs import (
    NULL_OBS,
    Histogram,
    MetricsRegistry,
    NullTracer,
    Observability,
    Tracer,
    metric_key,
    percentile,
    resolve_obs,
)
from repro.obs.__main__ import main as obs_main
from repro.obs.export import load_trace, to_prometheus, trace_summary, write_trace
from repro.selection import Selector
from repro.selection.selector import SelectorConfig
from repro.service import SelectionService, ServiceConfig


def _forests(seed: int = 21, n: int = 3):
    return random_forests(seed, forests=n, statements=4, max_depth=3)


# ----------------------------------------------------------------------
# Histograms and percentiles


def test_percentile_is_nearest_rank():
    values = [10, 20, 30, 40, 50]
    assert percentile(values, 50) == 30
    assert percentile(values, 0) == 10
    assert percentile(values, 100) == 50
    assert percentile([], 99) is None
    assert percentile([7], 99) == 7


def test_histogram_quantiles_bound_by_observed_extremes():
    h = Histogram()
    for v in (3, 5, 1000, 70_000):
        h.observe(v)
    assert h.count == 4
    assert h.sum == 3 + 5 + 1000 + 70_000
    assert h.quantile(0.0) >= h.min
    assert h.quantile(1.0) == h.max
    # A quantile is a bucket upper bound clamped into [min, max].
    for q in (0.5, 0.95, 0.99):
        assert h.min <= h.quantile(q) <= h.max


def test_histogram_merge_is_exact():
    import random

    rng = random.Random(5)
    values = [rng.randrange(1, 1 << 40) for _ in range(500)]
    left, right = Histogram.of(values[:200]), Histogram.of(values[200:])
    merged = Histogram.of(values[:200]).merge(right)
    whole = Histogram.of(values)
    assert merged.snapshot() == whole.snapshot()
    # merge() also accepts a plain snapshot dict (the fork-crossing form).
    from_snapshot = left.merge(Histogram.of(values[200:]).snapshot())
    assert from_snapshot.snapshot() == whole.snapshot()
    for q in (0.5, 0.95, 0.99):
        assert merged.quantile(q) == whole.quantile(q)


def _child_histogram(conn, values):
    registry = MetricsRegistry()
    h = registry.histogram("fork_ns", side="child")
    for v in values:
        h.observe(v)
    registry.counter("fork_events_total").inc(len(values))
    conn.send(registry.snapshot())
    conn.close()


def test_histogram_merge_exact_across_fork_boundary():
    """A worker-side registry snapshot merges losslessly in the parent.

    This is the exact contract the selection service relies on: each
    worker pickles ``registry.snapshot()`` onto its reply tuple and the
    supervisor folds it in with ``merge_snapshot`` — the merged
    histogram must be indistinguishable from one process having
    observed every value.
    """
    import random

    rng = random.Random(9)
    child_values = [rng.randrange(1, 1 << 32) for _ in range(100)]
    parent_values = [rng.randrange(1, 1 << 32) for _ in range(100)]

    ctx = multiprocessing.get_context("fork")
    parent_conn, child_conn = ctx.Pipe()
    proc = ctx.Process(target=_child_histogram, args=(child_conn, child_values))
    proc.start()
    snapshot = parent_conn.recv()
    proc.join(10.0)
    assert proc.exitcode == 0

    registry = MetricsRegistry()
    h = registry.histogram("fork_ns", side="child")
    for v in parent_values:
        h.observe(v)
    registry.merge_snapshot(snapshot)

    whole = Histogram.of(child_values + parent_values)
    assert h.snapshot() == whole.snapshot()
    assert h.quantile(0.5) == whole.quantile(0.5)
    assert h.quantile(0.99) == whole.quantile(0.99)
    assert registry.counters[metric_key("fork_events_total", {})].value == len(child_values)


# ----------------------------------------------------------------------
# Span tracer


def test_tracer_spans_nest_and_carry_parent_links():
    tracer = Tracer(capacity=16)
    with tracer.span("outer", kind="test"):
        with tracer.span("inner"):
            pass
    spans = tracer.spans()
    assert [s.name for s in spans] == ["inner", "outer"]
    inner, outer = spans
    assert inner.parent_id == outer.span_id
    assert outer.parent_id is None
    assert outer.start_ns <= inner.start_ns <= inner.end_ns <= outer.end_ns
    assert outer.attrs == {"kind": "test"}
    assert tracer.recorded == 2


def test_tracer_ring_is_bounded_but_counts_everything():
    tracer = Tracer(capacity=4)
    for i in range(10):
        tracer.record(f"s{i}", 0, 1)
    assert tracer.recorded == 10
    assert [s.name for s in tracer.spans()] == ["s6", "s7", "s8", "s9"]


def test_null_tracer_records_nothing():
    tracer = NullTracer()
    assert tracer.enabled is False
    with tracer.span("ignored", key="value"):
        pass
    tracer.record("ignored", 0, 1)
    assert tracer.spans() == []
    assert tracer.recorded == 0


def test_resolve_obs_normalizes_the_observe_argument():
    assert resolve_obs(None) is NULL_OBS
    assert resolve_obs(False) is NULL_OBS
    fresh = resolve_obs(True)
    assert fresh.enabled and fresh is not NULL_OBS
    bundle = Observability()
    assert resolve_obs(bundle) is bundle


# ----------------------------------------------------------------------
# Exporters: JSONL round-trip, render CLI, Prometheus text


def test_trace_jsonl_round_trips_through_render(tmp_path, capsys):
    tracer = Tracer(capacity=64)
    base = 1_000_000
    for i, tenant in enumerate(["a", "a", "b"]):
        tracer.record(
            "service.request",
            base,
            base + (i + 1) * 1000,
            tenant=tenant,
            status="ok",
        )
    tracer.record("pipeline.label", base, base + 500, nodes=12)
    spans = tracer.spans()

    path = tmp_path / "trace.jsonl"
    assert write_trace(path, spans) == 4
    loaded = load_trace(path)
    assert [s.as_dict() for s in loaded] == [s.as_dict() for s in spans]

    # Table render names every span family and every tenant.
    assert obs_main(["render", str(path)]) == 0
    out = capsys.readouterr().out
    assert "service.request" in out and "pipeline.label" in out
    assert "tenant" in out

    # --json emits exactly trace_summary().
    assert obs_main(["render", str(path), "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary == json.loads(json.dumps(trace_summary(loaded)))
    assert summary["per_tenant"]["a"]["count"] == 2
    durations = [s.duration_ns for s in spans if s.attrs.get("tenant") == "a"]
    assert summary["per_tenant"]["a"]["latency_p50_ns"] == Histogram.of(durations).quantile(0.5)


def test_prometheus_exposition_from_registry_and_snapshot(tmp_path, capsys):
    registry = MetricsRegistry()
    registry.counter("requests_total", tenant="a").inc(3)
    registry.gauge("queue_depth").set(2)
    h = registry.histogram("latency_ns", tenant="a")
    for v in (1, 2, 1000):
        h.observe(v)
    text = to_prometheus(registry)
    assert '# TYPE requests_total counter' in text
    assert 'requests_total{tenant="a"} 3' in text
    assert 'queue_depth 2' in text
    # Bucket samples are cumulative and end at +Inf == _count.
    assert 'latency_ns_bucket{tenant="a",le="+Inf"} 3' in text
    assert 'latency_ns_count{tenant="a"} 3' in text
    assert 'latency_ns_sum{tenant="a"} 1003' in text

    # The prom subcommand renders the same text from a snapshot dump.
    path = tmp_path / "metrics.json"
    path.write_text(json.dumps(registry.snapshot()))
    assert obs_main(["prom", str(path)]) == 0
    assert capsys.readouterr().out == text


# ----------------------------------------------------------------------
# Selector and service wiring


def test_selector_disabled_observability_is_the_null_path():
    selector = Selector(bench_grammar())
    assert selector.stats()["obs"] is None
    assert not selector._obs.enabled
    assert len(selector._obs.metrics) == 0
    selector.select_many(_forests(), collect_cover=False)
    # The null registry and tracer stayed empty: no metric objects, no spans.
    assert len(selector._obs.metrics) == 0
    assert selector._obs.tracer.spans() == []


def test_selector_records_pipeline_phases_and_metrics():
    obs = Observability()
    selector = Selector(bench_grammar(), config=SelectorConfig(observe=obs))
    forests = _forests()
    selector.select_many(forests, collect_cover=False)
    names = {s.name for s in obs.tracer.spans()}
    assert {"pipeline.select", "pipeline.label", "pipeline.emit"} <= names
    select = next(s for s in obs.tracer.spans() if s.name == "pipeline.select")
    label = next(s for s in obs.tracer.spans() if s.name == "pipeline.label")
    assert label.parent_id == select.span_id
    assert select.attrs["forests"] == len(forests)

    flat = selector.stats()["obs"]
    assert flat["pipeline_batches_total"] == 1
    assert flat["pipeline_nodes_total"] == sum(f.node_count() for f in forests)
    key = 'pipeline_phase_ns_count{phase="label"}'
    assert flat[key] == 1


def test_service_worker_metrics_cross_the_fork(tmp_path):
    """Worker-side pipeline/cache metrics surface in the service's obs view."""
    obs = Observability()
    tenants = {"bench": bench_grammar()}
    forests = _forests(seed=31, n=4)
    config = ServiceConfig(workers=1, seed=3)
    with SelectionService(tenants, tmp_path, config, obs=obs) as service:
        futures = [service.submit("bench", f) for f in forests]
        responses = [f.result(60.0) for f in futures]
        assert all(r.ok for r in responses)
        stats = service.stats()
    flat = stats["obs"]
    # Worker-side counters crossed the fork on the reply tuples...
    assert flat["pipeline_batches_total"] >= 1
    assert flat["pipeline_nodes_total"] > 0
    # ...and supervisor-side request accounting agrees with the responses.
    key = 'service_requests_total{status="ok",tenant="bench"}'
    assert flat[key] == len(responses)
    latency_count = 'service_request_latency_ns_count{tenant="bench"}'
    assert flat[latency_count] == len(responses)

    # After stop() the worker registries are absorbed into the bundle, so
    # an exported trace + metrics view agrees with the live stats().
    merged = obs.metrics.flatten()
    assert merged["pipeline_batches_total"] == flat["pipeline_batches_total"]
    request_spans = [s for s in obs.tracer.spans() if s.name == "service.request"]
    assert len(request_spans) == len(responses)
    # The acceptance invariant: span durations are exactly the latencies
    # the latency histogram observed.
    histogram = obs.metrics.histograms[
        metric_key("service_request_latency_ns", {"tenant": "bench"})
    ]
    rebuilt = Histogram.of([s.duration_ns for s in request_spans])
    assert rebuilt.snapshot() == histogram.snapshot()


def test_service_disabled_observability_reports_none(tmp_path):
    tenants = {"bench": bench_grammar()}
    with SelectionService(tenants, tmp_path, ServiceConfig(workers=1, seed=3)) as service:
        future = service.submit("bench", _forests(n=1)[0])
        assert future.result(60.0).ok
        assert service.stats()["obs"] is None


# ----------------------------------------------------------------------
# Deprecation shims for the folded-in repro.metrics timers


def test_metrics_timer_module_is_a_deprecated_alias():
    import repro.metrics.timer as legacy
    from repro.obs.trace import Stopwatch as obs_stopwatch
    from repro.obs.trace import Timer as obs_timer

    with pytest.warns(DeprecationWarning, match="repro.obs"):
        assert legacy.Timer is obs_timer
    with pytest.warns(DeprecationWarning, match="repro.obs"):
        assert legacy.Stopwatch is obs_stopwatch
    with pytest.raises(AttributeError):
        legacy.NotAThing  # noqa: B018


def test_metrics_package_lazy_exports_warn():
    import repro.metrics as metrics
    from repro.obs.trace import Timer as obs_timer

    with pytest.warns(DeprecationWarning, match="repro.obs"):
        assert metrics.Timer is obs_timer
    # The non-deprecated surface stays silent.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        metrics.LabelMetrics()


def test_obs_timer_keeps_the_elapsed_surface_and_records_spans():
    from repro.obs import Timer

    tracer = Tracer(capacity=8)
    with Timer(tracer=tracer, name="work", stage="test") as t:
        pass
    assert t.elapsed >= 0.0
    (span,) = tracer.spans()
    assert span.name == "work"
    assert span.attrs == {"stage": "test"}
    # Without a tracer it is a plain stopwatch (the legacy contract).
    with Timer() as t:
        pass
    assert t.elapsed >= 0.0
