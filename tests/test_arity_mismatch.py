"""Regression: pattern/node arity mismatches must raise, never truncate.

Before the fix, ``Reducer._collect_operands`` and the cover walker's
``_visit_pattern`` zipped ``pattern.kids`` with ``node.kids`` and
silently dropped the excess side, producing bogus covers/operand lists
for labelings that answer with a structurally impossible rule (e.g. a
corrupt table, or operator sets disagreeing about an operator's arity).
"""

from __future__ import annotations

import pytest

from repro.errors import CoverError
from repro.grammar import Grammar
from repro.ir import Forest, NodeBuilder, OperatorSet
from repro.selection import Labeling, Reducer, extract_cover


class MisarityLabeling(Labeling):
    """A (deliberately broken) labeling answering one rule for every query."""

    def __init__(self, grammar: Grammar, rule) -> None:
        super().__init__(grammar)
        self._rule = rule

    def rule_for(self, node, nonterminal):
        return self._rule

    def cost_of(self, node, nonterminal):
        return 0


@pytest.fixture
def mismatch_setup():
    # Same operator *name*, different arity: two IR dialects disagreeing
    # about WIDGET — the case the root-operator check cannot catch.
    grammar_ops = OperatorSet(name="grammar-dialect")
    grammar_ops.define("WIDGET", 2)
    grammar = Grammar(name="mismatch", operators=grammar_ops, start="reg")
    rule = grammar.op_rule("reg", "WIDGET", ["reg", "reg"], 1)  # arity-2 pattern

    node_ops = OperatorSet(name="node-dialect")
    node_ops.define("WIDGET", 1)
    node_ops.define("REG", 0, has_payload=True)
    builder = NodeBuilder(node_ops)
    node = builder.widget(builder.reg(1))  # arity-1 node
    return MisarityLabeling(grammar, rule), node


def test_extract_cover_raises_on_arity_mismatch(mismatch_setup):
    labeling, node = mismatch_setup
    with pytest.raises(CoverError, match="arity"):
        extract_cover(labeling, Forest([node]), start="reg")


def test_reducer_raises_on_arity_mismatch(mismatch_setup):
    labeling, node = mismatch_setup
    with pytest.raises(CoverError, match="arity"):
        Reducer(labeling).reduce(node, "reg")


@pytest.fixture
def wrong_op_setup():
    grammar = Grammar(name="wrongop", start="reg")
    rule = grammar.op_rule("reg", "ADD", ["reg", "reg"], 1)
    builder = NodeBuilder()
    node = builder.sub(builder.reg(1), builder.reg(2))  # same arity, wrong operator
    return MisarityLabeling(grammar, rule), node


def test_extract_cover_raises_on_same_arity_wrong_operator(wrong_op_setup):
    labeling, node = wrong_op_setup
    with pytest.raises(CoverError, match="rooted at ADD"):
        extract_cover(labeling, Forest([node]), start="reg")


def test_reducer_raises_on_same_arity_wrong_operator(wrong_op_setup):
    labeling, node = wrong_op_setup
    with pytest.raises(CoverError, match="rooted at ADD"):
        Reducer(labeling).reduce(node, "reg")


def test_reducer_still_reduces_matching_patterns():
    """Sanity: the arity check must not reject structurally valid covers."""
    grammar = Grammar(name="ok", start="reg")
    grammar.op_rule("reg", "REG", [], 0)
    grammar.op_rule(
        "reg", "ADD", ["reg", "reg"], 1,
        action=lambda ctx, node, operands: ("add", *operands),
    )
    builder = NodeBuilder()
    node = builder.add(builder.reg(1), builder.reg(2))

    from repro.selection import label_dp

    labeling = label_dp(grammar, Forest([node]))
    reducer = Reducer(labeling)
    value = reducer.reduce(node, "reg")
    assert value[0] == "add"
    assert reducer.reductions == 3
