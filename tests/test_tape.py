"""The emission-tape compiler: differential, caching, and fault tests.

Four contracts are pinned here:

* **Differential emission** — the tape engine (compile + sweep) is
  byte-for-byte equivalent to the frame-stack :class:`Reducer` oracle:
  same semantic values, same emitted instructions, same ``(rule,
  mnemonic, operands)`` trace, same ``reductions``/``memo_hits``
  counters, across every benchmark workload family — including repeat
  batches where the tape answers from its shape cache (a *different*
  emitter instance replaying a tape the first instance compiled).
* **Cache soundness** — shape-keyed replay is refused exactly where it
  would be unsound: dynamic grammars, cross-forest node sharing,
  unhashable payloads; the identity fast path refuses mutated forests;
  the cache is FIFO-bounded.
* **Fault isolation** — ``on_error="isolate"`` under injected action
  faults rolls the tape's value buffer back to the same state the frame
  engine's memo surgery reaches, and both engines agree on every
  surviving forest's values; action faults carry node provenance,
  deadline aborts do not; a broken cover faults *before* any action
  runs (the frame engine's partial-prefix emission never happens).
* **Identity keying** — reduction memos key by ``node.nid`` (with the
  documented ``~id`` fallback for hand-built nodes), and
  ``replace_kids`` copies get fresh nids so they can never alias their
  source in a memo.
"""

from __future__ import annotations

import pytest

from conftest import DEMO_TEXT
from repro.errors import CoverError, DeadlineExceededError
from repro.grammar import parse_grammar
from repro.ir import Forest, Node, NodeBuilder
from repro.selection import (
    EMITTERS,
    Reducer,
    Selector,
    SelectorConfig,
    TapeCache,
    TapeEmitter,
    node_memo_key,
)
from repro.selection.resilience import SelectionFailure, node_provenance
from repro.bench.workloads import (
    EmitContext,
    bench_grammar,
    clone_forest,
    dynamic_bench_grammar,
    dynamic_constraint_forests,
    emit_bench_grammar,
    random_forests,
    recurring_shape_stream,
    reduce_heavy_forests,
    shared_reduction_forests,
)
from repro.testing import InjectedFault, poison_action

# ----------------------------------------------------------------------
# Helpers

#: The benchmark workload families the pipeline bench reduces, as
#: ``(name, grammar factory, forest factory)`` — the differential
#: surface the ISSUE acceptance criteria name.
FAMILIES = [
    ("random_trees", bench_grammar, lambda: random_forests(11, forests=6, statements=6, max_depth=5)),
    ("reduce_heavy", emit_bench_grammar, lambda: reduce_heavy_forests(12, forests=5, statements=6, max_depth=4)),
    ("dag_reduce", emit_bench_grammar, lambda: shared_reduction_forests(13, forests=5, statements=8, shared=4, max_depth=4)),
    ("dynamic_constraints", dynamic_bench_grammar, lambda: dynamic_constraint_forests(14, forests=5, statements=6, max_depth=4)),
    ("recurring_stream", bench_grammar, lambda: recurring_shape_stream(15, shapes=3, length=12, statements=5, max_depth=4)),
]


def _tape_selector(grammar, **config):
    return Selector(grammar, mode="ondemand", config=SelectorConfig(emitter="tape", **config))


def _frame_selector(grammar, **config):
    return Selector(grammar, mode="ondemand", config=SelectorConfig(emitter="reducer", **config))


def _pure_action(lhs: str, pattern: str):
    def action(context, node, operands):
        return (lhs, pattern, node.op.name, node.value, tuple(operands))

    return action


ACTION_TEXT = """
%grammar tapechaos
%start stmt

stmt: EXPR(reg)      (0)
reg:  REG            (0)
reg:  con            (1)
reg:  ADD(reg, reg)  (1)
reg:  SUB(reg, reg)  (2)
reg:  MUL(reg, reg)  (3)
con:  CNST           (0)
"""


def _action_grammar():
    grammar = parse_grammar(ACTION_TEXT)
    for rule in grammar.rules:
        rule.action = _pure_action(rule.lhs, str(rule.pattern))
    return grammar


def _action_forests() -> list[Forest]:
    b = NodeBuilder()
    f0 = Forest(name="f0")
    f0.add(b.expr(b.add(b.reg(1), b.cnst(4))))
    f1 = Forest(name="f1")
    f1.add(b.expr(b.mul(b.reg(1), b.reg(2))))
    f2 = Forest(name="f2")  # the only forest containing SUB
    f2.add(b.expr(b.sub(b.reg(3), b.cnst(7))))
    f3 = Forest(name="f3")
    f3.add(b.expr(b.add(b.add(b.reg(1), b.reg(2)), b.cnst(3))))
    return [f0, f1, f2, f3]


def _rule(grammar, lhs: str, fragment: str):
    return next(r for r in grammar.rules if r.lhs == lhs and fragment in str(r.pattern))


def _chain_forest(length: int) -> Forest:
    """A left-leaning ADD chain long enough to cross deadline strides."""
    b = NodeBuilder()
    value = b.reg(0)
    for i in range(length):
        value = b.add(value, b.cnst(i % 8))
    forest = Forest(name="chain")
    forest.add(b.expr(value))
    return forest


# ----------------------------------------------------------------------
# Differential emission: tape vs frame reducer, every workload family


@pytest.mark.parametrize("name,make_grammar,make_forests", FAMILIES, ids=[f[0] for f in FAMILIES])
def test_tape_matches_reducer_on_workload_family(name, make_grammar, make_forests):
    tape_ctx, frame_ctx = EmitContext(), EmitContext()
    tape = _tape_selector(make_grammar()).select_many(make_forests(), context=tape_ctx)
    frame = _frame_selector(make_grammar()).select_many(make_forests(), context=frame_ctx)

    assert tape.values == frame.values
    assert tape_ctx.instructions == frame_ctx.instructions
    assert tape_ctx.trace == frame_ctx.trace
    assert tape.report.reductions == frame.report.reductions
    assert tape.report.memo_hits == frame.report.memo_hits


def test_tape_cache_replay_matches_reducer_across_batches():
    """Repeat batches replay shape-cached tapes compiled by an *earlier*
    emitter instance (each ``select_many`` builds a fresh engine over
    the selector-owned cache) and stay byte-identical to the oracle."""
    grammar = bench_grammar()
    tape_sel = _tape_selector(grammar)
    hits = 0
    compiled = 0
    for round_number in range(3):
        tape_ctx, frame_ctx = EmitContext(), EmitContext()
        stream = recurring_shape_stream(21, shapes=3, length=10, statements=5, max_depth=4)
        tape = tape_sel.select_many(stream, context=tape_ctx)
        frame = _frame_selector(bench_grammar()).select_many(
            recurring_shape_stream(21, shapes=3, length=10, statements=5, max_depth=4),
            context=frame_ctx,
        )
        assert tape.values == frame.values
        assert tape_ctx.instructions == frame_ctx.instructions
        assert tape_ctx.trace == frame_ctx.trace
        assert tape.report.memo_hits == frame.report.memo_hits
        hits += tape.report.tape_cache_hits
        compiled += tape.report.tapes_compiled
        if round_number > 0:
            assert tape.report.tapes_compiled == 0  # everything replayed
    assert hits > 0
    cache = tape_sel.stats()["selection"]["tape_cache"]
    assert cache["hits"] == hits
    assert cache["size"] == compiled


def test_selector_report_carries_tape_counters():
    grammar = bench_grammar()
    stream = recurring_shape_stream(22, shapes=2, length=6, statements=4, max_depth=4)
    result = _tape_selector(grammar).select_many(stream, context=EmitContext())
    compiled = result.report.tapes_compiled
    assert 1 <= compiled <= 2  # one per distinct template shape drawn
    assert result.report.tape_cache_hits == len(stream) - compiled
    row = result.report.as_row()
    assert row["tapes_compiled"] == compiled
    assert row["tape_cache_hits"] == len(stream) - compiled
    frame = _frame_selector(grammar).select_many(
        recurring_shape_stream(22, shapes=2, length=6, statements=4, max_depth=4),
        context=EmitContext(),
    )
    assert frame.report.tapes_compiled == 0
    assert frame.report.tape_cache_hits == 0


def test_emitters_registry_and_unknown_emitter_rejected():
    assert EMITTERS == ("tape", "reducer")
    grammar = parse_grammar(DEMO_TEXT)
    sel = Selector(grammar, config=SelectorConfig(emitter="frames"))
    with pytest.raises(ValueError, match="unknown emitter 'frames'"):
        sel.select_many([_chain_forest(2)])
    assert Selector(grammar).stats()["selection"]["emitter"] == "tape"


# ----------------------------------------------------------------------
# Cache soundness gates


def _label(grammar, forest):
    return Selector(grammar, mode="ondemand").label(forest)


def test_dynamic_grammars_are_never_cached():
    grammar = dynamic_bench_grammar()
    sel = _tape_selector(grammar)
    for _ in range(2):
        result = sel.select_many(
            dynamic_constraint_forests(31, forests=3, statements=4, max_depth=3),
            context=EmitContext(),
        )
        assert result.report.tape_cache_hits == 0
    stats = sel.stats()["selection"]["tape_cache"]
    assert stats["size"] == 0 and stats["hits"] == 0


def _sharing_pair() -> list[Forest]:
    b = NodeBuilder()
    shared = b.add(b.reg(1), b.cnst(4))
    first = Forest(name="first")
    first.add(b.expr(shared))
    second = Forest(name="second")  # same shape, shares `shared` with first
    second.add(b.expr(shared))
    return [first, second]


def test_cross_forest_sharing_disables_caching_but_not_correctness():
    tape = _tape_selector(_action_grammar()).select_many(_sharing_pair())
    frame = _frame_selector(_action_grammar()).select_many(_sharing_pair())
    # The second forest memo-hits the shared subtree instead of
    # re-emitting it — replaying a cached tape here would double-emit.
    assert tape.report.tape_cache_hits == 0
    assert tape.values == frame.values
    assert tape.report.memo_hits == frame.report.memo_hits
    assert tape.report.reductions == frame.report.reductions


def test_unhashable_payload_skips_signature():
    grammar = _action_grammar()
    b = NodeBuilder()
    forest = Forest(name="weird")
    forest.add(b.expr(b.cnst([1, 2])))  # unhashable payload
    emitter = TapeEmitter(_label(grammar, forest), cache=TapeCache())
    signature, nodes, ord_of, shares = emitter._signature(forest)
    assert signature is None
    assert len(nodes) == len(ord_of) == 2  # EXPR and its CNST leaf
    assert shares is False
    # Emission still works; the tape just is not cached.
    values = emitter.reduce_forest(forest)
    assert len(values) == 1
    assert emitter.tapes_compiled == 1 and len(emitter._cache) == 0


def test_identity_fast_path_and_mutation_guard():
    grammar = _action_grammar()
    sel = _tape_selector(grammar)
    b = NodeBuilder()
    forest = Forest(name="ident")
    forest.add(b.expr(b.add(b.reg(1), b.cnst(2))))
    baseline = sel.select_many([forest]).values
    cache = sel._tape_cache
    assert cache.identity_hits == 0
    replay = sel.select_many([forest])  # same object: identity fast path
    assert cache.identity_hits == 1
    assert replay.report.tape_cache_hits == 1
    assert replay.values == baseline
    # Mutating the root list invalidates the identity entry; the grown
    # forest is a new shape and recompiles instead of replaying stale.
    forest.add(b.expr(b.sub(b.reg(1), b.reg(2))))
    result = sel.select_many([forest])
    assert cache.identity_hits == 1
    assert result.report.tapes_compiled == 1
    assert result.values[0][:1] == baseline[0][:1]


def test_tape_cache_fifo_eviction():
    cache = TapeCache(maxsize=2)
    sentinel = object()
    cache.put(("a",), sentinel)
    cache.put(("b",), sentinel)
    cache.put(("c",), sentinel)
    assert len(cache) == 2
    assert cache.evictions == 1
    assert cache.get(("a",)) is None  # FIFO: oldest key evicted
    assert cache.get(("c",)) is sentinel
    stats = cache.stats()
    assert stats["misses"] == 1 and stats["hits"] == 1


def test_tape_engine_matches_reducer_on_dynamic_grammar_directly():
    """The selector routes dynamic grammars to the frame engine, but the
    TapeEmitter itself still handles them (uncached) - pin that the
    direct engine stays differentially equal to the oracle."""
    grammar = dynamic_bench_grammar()
    forests = dynamic_constraint_forests(61, forests=4, statements=5, max_depth=4)
    labeling = Selector(grammar, mode="ondemand").label_many(forests)
    tape_ctx, frame_ctx = EmitContext(), EmitContext()
    tape = TapeEmitter(labeling, tape_ctx, cache=TapeCache())
    frame = Reducer(labeling, frame_ctx)
    tape_values = [tape.reduce_forest(forest) for forest in forests]
    frame_values = [frame.reduce_forest(forest) for forest in forests]
    assert tape_values == frame_values
    assert tape_ctx.instructions == frame_ctx.instructions
    assert tape_ctx.trace == frame_ctx.trace
    assert tape.tapes_compiled == len(forests)
    assert tape.tape_cache_hits == 0


def test_selector_routes_dynamic_grammar_to_frame_engine():
    dyn = _tape_selector(dynamic_bench_grammar())
    forests = dynamic_constraint_forests(62, forests=2, statements=4, max_depth=3)
    labeling = dyn.label_many(forests)
    assert type(dyn._make_emitter(labeling, None, None)) is Reducer
    static = _tape_selector(_action_grammar())
    static_labeling = static.label_many([_chain_forest(3)])
    assert isinstance(static._make_emitter(static_labeling, None, None), TapeEmitter)


# ----------------------------------------------------------------------
# Wire format


def test_tape_wire_format_is_consistent():
    grammar = bench_grammar()
    sel = _tape_selector(grammar)
    sel.select_many(
        recurring_shape_stream(51, shapes=2, length=4, statements=5, max_depth=4),
        context=EmitContext(),
    )
    tapes = list(sel._tape_cache._tapes.values())
    assert tapes
    for tape in tapes:
        n = tape.entries
        assert len(tape.rule_ids) == len(tape.nt_ids) == len(tape.spliced) == n
        assert len(tape.thunks) == len(tape.nodes) == len(tape.node_ords) == n
        assert len(tape.opnd_offsets) == n + 1
        assert tape.opnd_offsets[0] == 0
        assert tape.opnd_offsets[-1] == len(tape.opnd_refs)
        # `runs` is the tuple view of the opnd_refs/opnd_offsets arrays.
        for i, run in enumerate(tape.runs):
            lo, hi = tape.opnd_offsets[i], tape.opnd_offsets[i + 1]
            assert run == tuple(tape.opnd_refs[lo:hi])
            for ref in run:
                assert 0 <= (ref >> 1) < tape.base + n
        assert tape.cacheable
        assert all(0 <= ref < tape.base + n for ref in tape.root_refs)


# ----------------------------------------------------------------------
# Fault isolation


@pytest.mark.parametrize("emitter", EMITTERS)
def test_isolate_rolls_back_identically_under_action_fault(emitter):
    # Clean oracle run first (fresh grammar, no fault).
    clean = _frame_selector(_action_grammar()).select_many(_action_forests())

    grammar = _action_grammar()
    poison_action(_rule(grammar, "reg", "SUB"), on_call=1)
    # Build the selector *after* poisoning: thunks bind rule actions.
    sel = Selector(grammar, mode="ondemand", config=SelectorConfig(emitter=emitter))
    result = sel.select_many(_action_forests(), on_error="isolate")

    failure = result.values[2]
    assert isinstance(failure, SelectionFailure)
    assert failure.phase == "reduce"
    assert isinstance(failure.error, InjectedFault)
    assert failure.roots_completed == 0
    for index in (0, 1, 3):
        assert result.values[index] == clean.values[index]
    resilience = sel.stats()["resilience"]
    assert resilience["isolated_failures"] == 1
    assert resilience["failures_by_phase"].get("reduce") == 1


def test_isolate_rollback_keeps_later_batches_clean():
    """After a rollback, re-selecting the faulted forest's shape must
    re-emit from scratch — no stale slots, no stale cache tape."""
    grammar = _action_grammar()
    fault, _restore = poison_action(_rule(grammar, "reg", "SUB"), on_call=1)
    sel = _tape_selector(grammar)
    first = sel.select_many(_action_forests(), on_error="isolate")
    assert isinstance(first.values[2], SelectionFailure)
    # The fault healed (non-sticky); the same batch now fully succeeds.
    second = sel.select_many(_action_forests(), on_error="isolate")
    assert not any(isinstance(v, SelectionFailure) for v in second.values)
    oracle = _frame_selector(_action_grammar()).select_many(_action_forests())
    assert second.values == oracle.values
    assert fault.faults == 1


def test_broken_cover_faults_before_any_action_runs():
    """Compilation precedes emission: a forest whose *second* root has
    no cover emits nothing through the tape, while the frame engine
    emits the first root's prefix before discovering the hole."""
    grammar = _action_grammar()
    b = NodeBuilder()
    forest = Forest(name="half-covered")
    forest.add(b.cnst(1))            # coverable from `con`
    forest.add(b.add(b.reg(1), b.reg(2)))  # `con` cannot derive ADD
    labeling = _label(grammar, forest)

    tape_ctx: list = []
    tape = TapeEmitter(labeling, tape_ctx)
    with pytest.raises(CoverError):
        tape.reduce_forest(forest, "con")
    assert tape.last_roots_completed == 0
    assert tape.memo_size() == 0      # nothing emitted, nothing to roll back
    assert len(tape._slots) == 0      # compile-time slots were unwound

    frame = Reducer(labeling, [])
    with pytest.raises(CoverError):
        frame.reduce_forest(forest, "con")
    assert frame.last_roots_completed == 1  # the prefix emitted first


def test_startless_grammar_raises_cover_error_in_isolate_path():
    grammar = _action_grammar()
    sel = Selector(grammar, mode="ondemand")
    forests = _action_forests()
    # Erase the start nonterminal on the grammar the emitters see.
    sel.label(forests[0]).grammar.start = None
    with pytest.raises(CoverError, match="no start nonterminal"):
        sel.select_many(_action_forests(), on_error="isolate")
    # An explicit start sidesteps the missing default.
    result = sel.select_many(_action_forests(), start="stmt", on_error="isolate")
    assert not any(isinstance(v, SelectionFailure) for v in result.values)


def test_action_fault_has_provenance_deadline_abort_does_not():
    grammar = _action_grammar()
    poison_action(_rule(grammar, "reg", "ADD"), on_call=1)
    forest = _chain_forest(80)
    labeling = _label(grammar, forest)
    emitter = TapeEmitter(labeling, [])
    with pytest.raises(InjectedFault) as excinfo:
        emitter.reduce_forest(forest)
    assert node_provenance(excinfo.value) is not None
    assert "ADD" in node_provenance(excinfo.value)

    # Replay the cached shape under an expired deadline: the sweep
    # aborts mid-tape with *no* provenance (the action is not at fault).
    grammar = _action_grammar()
    forest = _chain_forest(80)
    labeling = _label(grammar, forest)
    cache = TapeCache()
    TapeEmitter(labeling, [], cache=cache).reduce_forest(forest)
    expired = TapeEmitter(
        labeling, [], deadline_at_ns=1, cache=cache
    )
    with pytest.raises(DeadlineExceededError) as excinfo:
        expired.reduce_forest(clone_forest(forest))
    assert node_provenance(excinfo.value) is None


def test_rollback_to_truncates_values_and_slots():
    grammar = _action_grammar()
    forests = _action_forests()
    labeling = Selector(grammar, mode="ondemand").label_many(forests)
    emitter = TapeEmitter(labeling, [])
    emitter.reduce_forest(forests[0])
    mark = emitter.memo_size()
    prefix = list(emitter._values)
    emitter.reduce_forest(forests[1])
    assert emitter.memo_size() > mark
    discarded = emitter.rollback_to(mark)
    assert discarded > 0
    assert emitter.memo_size() == mark == len(emitter._slots)
    # Re-reducing the rolled-back forest starts clean and agrees with a
    # fresh engine (no stale slot reuse, no corrupted seen counts).
    again = emitter.reduce_forest(forests[1])
    fresh = TapeEmitter(labeling, [])
    fresh.reduce_forest(forests[0])
    assert again == fresh.reduce_forest(forests[1])
    assert emitter._values[:mark] == prefix  # forest 0's slots untouched


# ----------------------------------------------------------------------
# Identity keying (nid-keyed memos, replace_kids freshness)


def test_node_memo_key_ranges_are_disjoint():
    b = NodeBuilder()
    built = b.reg(1)
    assert built.nid >= 0
    assert node_memo_key(built) == built.nid
    hand = Node(built.op, (), value=7)
    assert hand.nid == -1
    assert node_memo_key(hand) == ~id(hand) < 0


def test_replace_kids_assigns_fresh_nid():
    b = NodeBuilder()
    original = b.add(b.reg(1), b.reg(2))
    copy = original.replace_kids((b.reg(3), b.reg(4)))
    assert copy.nid >= 0
    assert copy.nid != original.nid
    # Hand-built sources never had a nid and stay that way.
    hand = Node(original.op, original.kids)
    assert hand.replace_kids(original.kids).nid == -1


@pytest.mark.parametrize("engine_cls", [Reducer, TapeEmitter])
def test_memo_never_aliases_replace_kids_copy(engine_cls):
    grammar = _action_grammar()
    b = NodeBuilder()
    original = b.add(b.reg(1), b.cnst(2))
    copy = original.replace_kids((b.reg(9), b.cnst(8)))
    forest = Forest(name="alias")
    forest.add(b.expr(original))
    forest.add(b.expr(copy))
    labeling = _label(grammar, forest)
    engine = engine_cls(labeling, [])
    values = engine.reduce_forest(forest, "stmt")
    # Same memo key would return the original's value for the copy; the
    # fresh nid forces a genuine second reduction with copy's operands.
    assert values[0] != values[1]
    # The copy's left operand really is REG(9), not the original's REG(1).
    assert values[1][4][0][4][0] == ("reg", "REG", "REG", 9, ())
