"""Tests for the static-analysis subsystem (repro.analysis).

Covers: lint diagnostics over broken and clean grammars, completeness
certification (with counterexamples that really fail labeling, and the
certification bit round-tripping through save()/load()), dominated-rule
pruning with a differential cover/cost/trace sweep across the bench
workload families, rule provenance, and the CLIs.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    DIAGNOSTIC_CODES,
    analyze_dominance,
    differential_check,
    lint_grammar,
    prune,
    verify_completeness,
)
from repro.analysis.__main__ import main as analysis_main
from repro.bench.workloads import (
    EmitContext,
    bench_grammar,
    dag_heavy_forests,
    dynamic_bench_grammar,
    dynamic_constraint_forests,
    emit_bench_grammar,
    random_forests,
    recurring_shape_stream,
    reduce_heavy_forests,
    shared_reduction_forests,
    synthetic_grammar,
)
from repro.errors import AnalysisError, CoverError
from repro.grammar import Grammar, normalize, parse_grammar
from repro.ir import DEFAULT_OPERATORS, Forest
from repro.selection import OnDemandAutomaton, Selector, extract_cover
from repro.selection.selector import main as selector_main, read_artifact_header

INCOMPLETE_TEXT = """
%grammar holes
%start stmt

stmt: EXPR(reg)       (0)
reg:  ADD(reg, con)   (1)
reg:  REG             (0)
con:  CNST            (0)
"""
# No ``reg: con`` chain: a bare CNST only derives ``con``, so the tree
# EXPR(CNST) has no cover — the grammar is incomplete.


def broken_grammar() -> Grammar:
    """A deliberately broken grammar hitting many distinct lint codes."""
    g = Grammar("broken", start="stmt")
    g.op_rule("stmt", "EXPR", ["reg"], 0)
    g.op_rule("reg", "REG", [], 0)
    g.op_rule("reg", "REG", [], 0)  # GRM004: exact duplicate
    g.op_rule("reg", "REG", [], 2)  # GRM005: shadowed by the cost-0 rule
    g.chain("a", "b", 0)  # a/b: zero-cost cycle, unproductive, unreachable
    g.chain("b", "a", 0)
    g.chain("c", "c", 1)  # GRM007: self-referential chain rule
    g.op_rule("con", "CNST", [], 0)
    g.chain("reg", "con", 1, dynamic_cost=lambda node: 1)  # GRM008
    return g


# ----------------------------------------------------------------------
# Lints


def test_lint_broken_grammar_flags_many_distinct_codes():
    report = lint_grammar(broken_grammar())
    codes = report.codes()
    assert {"GRM001", "GRM002", "GRM004", "GRM005", "GRM006", "GRM007", "GRM008"} <= codes
    assert len(codes) >= 4
    assert report.has_errors
    # Every emitted code is registered, with its registered severity.
    for diagnostic in report:
        severity, _title = DIAGNOSTIC_CODES[diagnostic.code]
        assert diagnostic.severity == severity


def test_lint_missing_start_and_underivable_start():
    g = Grammar("nostart")
    assert "GRM003" in lint_grammar(g).codes()
    g2 = Grammar("badstart", start="ghost")
    g2.op_rule("stmt", "EXPR", ["reg"], 0)
    g2.op_rule("reg", "REG", [], 0)
    report = lint_grammar(g2)
    assert "GRM003" in report.codes()
    assert report.has_errors


def test_lint_cross_dialect_operator_conflicts():
    grammar = bench_grammar()
    # A dialect lacking MUL and disagreeing about NEG's arity.
    dialect = DEFAULT_OPERATORS.subset(
        [op.name for op in DEFAULT_OPERATORS if op.name not in ("MUL", "NEG")]
    )
    dialect.define("NEG", 2)
    report = lint_grammar(grammar, operators=dialect)
    messages = [d.message for d in report if d.code == "GRM010"]
    assert any("MUL" in m for m in messages)
    assert any("NEG" in m for m in messages)
    assert report.has_errors


def test_lint_bench_grammars_have_no_errors():
    for factory in (bench_grammar, dynamic_bench_grammar, emit_bench_grammar):
        report = lint_grammar(factory())
        assert not report.has_errors, report.format()


def test_lint_diagnostics_carry_rule_provenance():
    grammar = parse_grammar(
        "%grammar p\n%start stmt\nstmt: EXPR(reg) (0)\nreg: REG (0)\nreg: REG (1)\n"
    )
    report = lint_grammar(grammar)
    shadowed = [d for d in report if d.code == "GRM005"]
    assert len(shadowed) == 1
    assert shadowed[0].line == 5
    assert shadowed[0].column == 1
    assert ":5:1:" in shadowed[0].format()


# ----------------------------------------------------------------------
# Rule provenance (parser satellite)


def test_parsed_rules_record_line_and_column():
    grammar = bench_grammar()
    lines = {rule.number: rule.line for rule in grammar.rules}
    # Rules are numbered in order of appearance; lines strictly increase.
    numbers = sorted(lines)
    assert all(lines[a] < lines[b] for a, b in zip(numbers, numbers[1:]))
    assert all(rule.column == 1 for rule in grammar.rules)
    assert grammar.rules[0].location == f"{grammar.rules[0].line}:1"


def test_normalization_inherits_source_positions():
    grammar = bench_grammar()
    normalized = normalize(grammar).grammar
    for rule in normalized.rules:
        assert rule.line == rule.original.line
        assert rule.column == rule.original.column


# ----------------------------------------------------------------------
# Completeness certification


def test_bench_grammars_certify_complete():
    for factory in (bench_grammar, dynamic_bench_grammar, emit_bench_grammar):
        report = verify_completeness(factory())
        assert report.certified, report.describe()
        assert report.transitions_checked > 0
        assert report.value_states > 0
        assert report.counterexample is None
    dyn = verify_completeness(dynamic_bench_grammar())
    assert dyn.dynamic_rules_assumed == 3


def test_incomplete_grammar_yields_minimal_counterexample():
    grammar = parse_grammar(INCOMPLETE_TEXT)
    report = verify_completeness(grammar)
    assert not report.certified
    assert report.counterexample is not None
    assert report.counterexample_operator == "EXPR"
    # Minimal tree: EXPR over a bare constant (2 nodes).
    assert report.counterexample.size() == 2
    assert report.counterexample.kids[0].op.name == "CNST"


def test_counterexample_actually_fails_labeling():
    grammar = parse_grammar(INCOMPLETE_TEXT)
    report = verify_completeness(grammar)
    forest = Forest([report.counterexample])
    labeling = OnDemandAutomaton(grammar).label(forest)
    with pytest.raises(CoverError):
        extract_cover(labeling, forest)


def test_synthetic_counterexamples_fail_labeling_when_incomplete():
    for seed in range(4):
        grammar = synthetic_grammar(12, 5, seed=seed)
        report = verify_completeness(grammar)
        if report.certified:
            continue
        forest = Forest([report.counterexample])
        labeling = OnDemandAutomaton(grammar).label(forest)
        with pytest.raises(CoverError):
            extract_cover(labeling, forest)


def test_verify_reports_capped_builds_as_inconclusive():
    report = verify_completeness(bench_grammar(), max_states=2)
    assert report.capped
    assert not report.certified


# ----------------------------------------------------------------------
# Certification in the Selector / AOT wire format


def test_certification_round_trips_through_save_load(tmp_path):
    grammar = bench_grammar()
    selector = Selector(grammar)
    selector.compile()
    assert selector.stats()["aot"]["certified"] is None
    report = selector.verify()
    assert report.certified
    assert selector.stats()["aot"]["certified"] is True
    path = selector.save(tmp_path / "bench.rsel")
    assert read_artifact_header(path)["certified"] is True
    loaded = Selector.load(path, grammar)
    assert loaded.stats()["aot"]["certified"] is True


def test_unverified_save_carries_no_certification(tmp_path):
    grammar = bench_grammar()
    selector = Selector(grammar)
    path = selector.save(tmp_path / "bench.rsel")
    assert read_artifact_header(path)["certified"] is None
    assert Selector.load(path, grammar).stats()["aot"]["certified"] is None


def test_grammar_extension_invalidates_certification():
    grammar = bench_grammar()
    selector = Selector(grammar)
    selector.verify()
    assert selector.stats()["aot"]["certified"] is True
    grammar.chain("addr", "con", 2)
    assert selector.stats()["aot"]["certified"] is None


# ----------------------------------------------------------------------
# Dominance analysis and pruning


def test_bench_grammar_has_exactly_the_seeded_dominated_rules():
    grammar = bench_grammar()
    report = analyze_dominance(grammar)
    assert report.analyzable
    dominated = {rule.describe() for rule in report.dominated}
    assert dominated == {
        "reg: MUL(reg,con) = 19 (4)",
        "addr: LOAD(addr) = 20 (4)",
    }
    assert len(report.used) + len(report.dominated) == len(grammar.rules)


def test_prune_removes_dominated_rules_and_validates():
    grammar = bench_grammar()
    result = prune(grammar)
    assert len(result.removed) == 2
    assert len(result.grammar.rules) == len(grammar.rules) - 2
    result.grammar.validate()
    # Surviving rules keep provenance and link back to their originals.
    for rule in result.grammar.rules:
        assert rule.source in grammar.rules
        assert rule.line == rule.source.line
    # The pruned grammar itself has no dominated rules left.
    assert analyze_dominance(result.grammar).dominated == []


def test_prune_refuses_unanalyzable_grammars():
    grammar = parse_grammar(
        "%grammar dynchain\n%start stmt\nstmt: EXPR(reg) (0)\nreg: REG (0)\n"
        "reg: con (c)\ncon: CNST (0)\n",
        bindings={"c": lambda node: 1},
    )
    report = analyze_dominance(grammar)
    assert not report.analyzable
    with pytest.raises(AnalysisError):
        prune(grammar)


def test_differential_sweep_across_workload_families():
    grammar = bench_grammar()
    result = prune(grammar)
    forests = (
        random_forests(11, forests=4)
        + dag_heavy_forests(12, forests=4)
        + recurring_shape_stream(13, shapes=3, length=6)
        + reduce_heavy_forests(14, forests=4)
        + shared_reduction_forests(15, forests=4)
    )
    outcome = differential_check(grammar, result.grammar, forests)
    assert outcome["forests"] == len(forests)
    assert outcome["entries"] > 0


def test_differential_sweep_dynamic_grammar():
    grammar = dynamic_bench_grammar()
    result = prune(grammar)
    assert len(result.removed) >= 1
    forests = dynamic_constraint_forests(16, forests=6)
    outcome = differential_check(grammar, result.grammar, forests)
    assert outcome["forests"] == len(forests)


def test_differential_check_detects_a_real_mismatch():
    grammar = bench_grammar()
    # A wrong "pruned" grammar: same rules, but reg: ADD(reg, reg) got
    # more expensive — covers stay extractable, totals change.
    broken = Grammar("bench-wrong", grammar.operators, grammar.start)
    for rule in grammar.rules:
        cost = 3 if rule.describe().startswith("reg: ADD(reg,reg)") else rule.cost
        broken.add_rule(
            rule.lhs, rule.pattern, cost,
            template=rule.template, source=rule,
        )
    with pytest.raises(AnalysisError):
        differential_check(grammar, broken, random_forests(17, forests=3))


def test_pruned_emit_grammar_produces_identical_traces():
    grammar = emit_bench_grammar()
    result = prune(grammar)
    assert len(result.removed) == 2
    forests = reduce_heavy_forests(18, forests=4)

    original = Selector(grammar)
    pruned = Selector(result.grammar)
    ctx_a, ctx_b = EmitContext(), EmitContext()
    out_a = original.select_many(forests, context=ctx_a)
    out_b = pruned.select_many(forests, context=ctx_b)
    assert ctx_a.instructions == ctx_b.instructions
    assert ctx_a.trace == ctx_b.trace
    assert out_a.report.cover_cost == out_b.report.cover_cost


# ----------------------------------------------------------------------
# CLIs


def test_analysis_cli_lint_verify_prune(capsys, tmp_path):
    spec = "repro.bench.workloads:bench_grammar"
    assert analysis_main(["lint", spec]) == 0
    assert analysis_main(["verify", spec]) == 0
    assert analysis_main(["prune", spec]) == 0
    out = capsys.readouterr().out
    assert "COMPLETE" in out
    assert "2 of 20 rule(s) dominated" in out

    unproductive = tmp_path / "bad.g"
    unproductive.write_text(
        "%grammar bad\n%start stmt\nstmt: EXPR(reg) (0)\nreg: LOAD(reg) (1)\n"
    )
    assert analysis_main(["lint", str(unproductive)]) == 1

    incomplete = tmp_path / "holes.g"
    incomplete.write_text(INCOMPLETE_TEXT)
    assert analysis_main(["verify", str(incomplete)]) == 1
    out = capsys.readouterr().out
    assert "counterexample: EXPR(CNST)" in out


def test_compile_cli_verify_flag(capsys, tmp_path):
    artifact = tmp_path / "bench.rsel"
    code = selector_main(
        ["compile", "repro.bench.workloads:bench_grammar", str(artifact), "--verify"]
    )
    assert code == 0
    assert read_artifact_header(artifact)["certified"] is True

    incomplete = tmp_path / "holes.g"
    incomplete.write_text(INCOMPLETE_TEXT)
    bad_artifact = tmp_path / "holes.rsel"
    code = selector_main(["compile", str(incomplete), str(bad_artifact), "--verify"])
    assert code == 1
    assert not bad_artifact.exists()
    assert "INCOMPLETE" in capsys.readouterr().err
