"""Node/Forest scalability: deep trees, shared DAGs, cheap introspection."""

from __future__ import annotations

import sys
import time

from repro.ir import Forest, NodeBuilder

DEEP = 3000  # comfortably past the default interpreter recursion limit


def build_deep_chain(levels: int) -> tuple[NodeBuilder, "object"]:
    builder = NodeBuilder()
    value = builder.reg(0)
    for i in range(levels):
        value = builder.add(value, builder.cnst(i % 7))
    return builder, value


def build_shared_diamond(levels: int) -> "object":
    builder = NodeBuilder()
    value = builder.reg(1)
    for _ in range(levels):
        value = builder.add(value, value)  # both kids share one node
    return value


def test_depth_is_iterative_on_deep_trees():
    assert DEEP * 2 > sys.getrecursionlimit()
    _, node = build_deep_chain(DEEP)
    assert node.depth() == DEEP + 1


def test_depth_is_memoized_on_shared_dags():
    node = build_shared_diamond(60)  # 2**60 paths, 61 distinct nodes
    started = time.perf_counter()
    assert node.depth() == 61
    assert time.perf_counter() - started < 1.0


def test_structurally_equal_is_iterative_on_deep_trees():
    _, a = build_deep_chain(DEEP)
    _, b = build_deep_chain(DEEP)
    assert a.structurally_equal(b)
    _, c = build_deep_chain(DEEP - 1)
    assert not a.structurally_equal(c)


def test_structurally_equal_shares_work_on_dags():
    a = build_shared_diamond(60)
    b = build_shared_diamond(60)
    started = time.perf_counter()
    assert a.structurally_equal(b)
    assert time.perf_counter() - started < 1.0
    assert not a.structurally_equal(build_shared_diamond(59))


def test_structurally_equal_still_compares_payloads_and_ops():
    builder = NodeBuilder()
    assert builder.cnst(4).structurally_equal(builder.cnst(4))
    assert not builder.cnst(4).structurally_equal(builder.cnst(5))
    assert not builder.cnst(4).structurally_equal(builder.reg(4))
    left = builder.add(builder.reg(1), builder.cnst(2))
    right = builder.add(builder.reg(1), builder.cnst(2))
    assert left.structurally_equal(right)
    assert not left.structurally_equal(builder.sub(builder.reg(1), builder.cnst(2)))


def test_node_count_matches_distinct_nodes_without_building_order():
    node = build_shared_diamond(50)
    forest = Forest([node])
    assert forest.node_count() == 51
    assert forest.node_count() == len(forest.nodes())


def test_forest_repr_is_traversal_free():
    node = build_shared_diamond(200)  # huge path count; repr must not walk it
    forest = Forest([node], name="big")
    started = time.perf_counter()
    text = repr(forest)
    assert time.perf_counter() - started < 0.1
    assert "roots=1" in text
    assert "nodes=" not in text


def test_forest_nodes_is_children_first_and_unique():
    builder = NodeBuilder()
    shared = builder.add(builder.reg(1), builder.cnst(4))
    forest = Forest(
        [
            builder.expr(builder.load(shared)),
            builder.store(shared, builder.reg(2)),
        ]
    )
    order = forest.nodes()
    assert len(order) == len({id(node) for node in order}) == forest.node_count()
    seen: set[int] = set()
    for node in order:
        assert all(id(kid) in seen for kid in node.kids)
        seen.add(id(node))


def test_deep_forest_labels_and_covers_without_recursion_error(demo_grammar):
    from repro.selection import OnDemandAutomaton, extract_cover, label_dp

    builder = NodeBuilder()
    value = builder.reg(0)
    for i in range(DEEP):
        value = builder.add(value, builder.cnst(i % 5))
    forest = Forest([builder.expr(value)])

    dp_cover = extract_cover(label_dp(demo_grammar, forest), forest)
    auto_cover = extract_cover(OnDemandAutomaton(demo_grammar).label(forest), forest)
    assert dp_cover.total_cost() == auto_cover.total_cost()
