"""Chain-closure fixed point versus the Floyd–Warshall chain-cost matrix."""

from __future__ import annotations

from repro.grammar import Grammar, INFINITE, chain_closure, chain_cost_matrix, is_finite


def build_chain_grammar() -> Grammar:
    """Chain rules with a multi-hop shortcut (a→b→c→d beats a→c→d, a→b→d)."""
    grammar = Grammar(name="chains")
    grammar.chain("a", "b", 2)
    grammar.chain("b", "c", 3)
    grammar.chain("a", "c", 10)
    grammar.chain("c", "d", 1)
    grammar.chain("b", "d", 9)
    return grammar


def closure_from(grammar: Grammar, seeds: dict[str, int]) -> dict[str, int]:
    costs = dict(seeds)
    rules: dict = {}
    checks = chain_closure(grammar, costs, rules)
    assert checks > 0
    return costs


def expected_from_matrix(grammar: Grammar, seeds: dict[str, int]) -> dict[str, int]:
    matrix = chain_cost_matrix(grammar)
    out: dict[str, int] = {}
    for nt in grammar.nonterminals:
        best = min((cost + matrix[nt][seed] for seed, cost in seeds.items()), default=INFINITE)
        out[nt] = min(best, INFINITE)
    return out


def test_closure_matches_matrix_single_seed():
    grammar = build_chain_grammar()
    costs = closure_from(grammar, {"d": 0})
    expected = expected_from_matrix(grammar, {"d": 0})
    for nt in grammar.nonterminals:
        assert costs.get(nt, INFINITE) == expected[nt]
    # The multi-hop path a→b→c→d (2+3+1) must beat both shortcuts.
    assert costs["a"] == 6


def test_closure_matches_matrix_multiple_seeds():
    grammar = build_chain_grammar()
    seeds = {"c": 1, "d": 4}
    costs = closure_from(grammar, seeds)
    expected = expected_from_matrix(grammar, seeds)
    for nt in grammar.nonterminals:
        assert costs.get(nt, INFINITE) == expected[nt]


def test_closure_matches_matrix_on_demo_grammar(demo_grammar):
    seeds = {"con": 0}
    costs = closure_from(demo_grammar, seeds)
    expected = expected_from_matrix(demo_grammar, seeds)
    for nt in demo_grammar.nonterminals:
        assert costs.get(nt, INFINITE) == expected[nt]


def test_closure_is_stable_under_chain_rules(demo_grammar):
    """At a fixed point no chain rule can improve any nonterminal."""
    costs = closure_from(demo_grammar, {"reg": 0})
    for rule in demo_grammar.chain_rules():
        source = costs.get(rule.pattern.symbol, INFINITE)
        if not is_finite(source):
            continue
        assert costs.get(rule.lhs, INFINITE) <= source + rule.cost


def test_closure_records_winning_rules():
    grammar = build_chain_grammar()
    costs = {"d": 0}
    rules: dict = {}
    chain_closure(grammar, costs, rules)
    assert rules["c"].lhs == "c" and rules["c"].pattern.symbol == "d"
    assert rules["a"].pattern.symbol == "b"  # via the cheap multi-hop path
