"""Error paths of cover.py/reducer.py and Cover accounting on DAGs."""

from __future__ import annotations

import pytest

from repro.errors import CoverError
from repro.grammar import Grammar, nt_pattern, op_pattern, parse_grammar
from repro.ir import Forest, NodeBuilder
from repro.selection import (
    Cover,
    CoverEntry,
    OnDemandAutomaton,
    Reducer,
    extract_cover,
    label_dp,
)
from repro.selection.cover import require_structural_match

# ----------------------------------------------------------------------
# Missing start nonterminal


def test_extract_cover_without_start_nonterminal_raises():
    grammar = Grammar(name="nostart")
    assert grammar.start is None
    builder = NodeBuilder()
    forest = Forest([builder.reg(1)])
    labeling = label_dp(grammar, forest)
    with pytest.raises(CoverError, match="no start nonterminal"):
        extract_cover(labeling, forest)
    # An explicit start overrides the (missing) grammar default.
    with pytest.raises(CoverError, match="no derivation"):
        extract_cover(labeling, forest, start="reg")


# ----------------------------------------------------------------------
# Missing derivations (require_rule)


def test_require_rule_raises_with_node_and_nonterminal_context():
    grammar = parse_grammar(
        """
        %grammar partial
        %start stmt
        stmt: EXPR(reg) (0)
        reg:  REG       (0)
        """
    )
    builder = NodeBuilder()
    # MUL has no rule: the node is labeled with an empty/error state.
    forest = Forest([builder.expr(builder.mul(builder.reg(1), builder.reg(2)))])
    for labeling in (label_dp(grammar, forest), OnDemandAutomaton(grammar).label(forest)):
        with pytest.raises(CoverError, match="no derivation"):
            extract_cover(labeling, forest)
        with pytest.raises(CoverError, match="no derivation"):
            Reducer(labeling).reduce_forest(forest)
        assert labeling.rule_for(forest.roots[0], "stmt") is None


def test_require_rule_names_the_missing_nonterminal():
    grammar = parse_grammar(
        """
        %grammar named
        %start stmt
        stmt: EXPR(reg) (0)
        reg:  REG       (0)
        con:  CNST      (0)
        """
    )
    builder = NodeBuilder()
    node = builder.reg(3)
    forest = Forest([builder.expr(node)])
    labeling = label_dp(grammar, forest)
    with pytest.raises(CoverError, match="'con'"):
        labeling.require_rule(node, "con")


# ----------------------------------------------------------------------
# require_structural_match


def test_require_structural_match_accepts_matching_pattern():
    builder = NodeBuilder()
    node = builder.add(builder.reg(1), builder.reg(2))
    pattern = op_pattern("ADD", nt_pattern("reg"), nt_pattern("reg"))
    require_structural_match(pattern, node)  # must not raise


def test_require_structural_match_rejects_operator_mismatch():
    builder = NodeBuilder()
    node = builder.sub(builder.reg(1), builder.reg(2))
    pattern = op_pattern("ADD", nt_pattern("reg"), nt_pattern("reg"))
    with pytest.raises(CoverError, match="rooted at ADD"):
        require_structural_match(pattern, node)


def test_require_structural_match_rejects_arity_mismatch():
    builder = NodeBuilder()
    node = builder.neg(builder.reg(1))
    # A nonterminal pattern root never checks the operator, only arity.
    pattern = nt_pattern("reg")
    with pytest.raises(CoverError, match="arity"):
        require_structural_match(pattern, node)


# ----------------------------------------------------------------------
# Cyclic derivations from a corrupt labeling fail fast


def test_reducer_raises_on_cyclic_derivation_from_corrupt_labeling():
    """A labeling answering a chain-rule cycle (a from b, b from a) must
    raise CoverError, not grow the frame stack without bound."""
    from repro.selection import Labeling

    grammar = Grammar(name="cycle", start="a")
    grammar.op_rule("c", "REG", [], 0)
    a_from_b = grammar.chain("a", "b", 0)
    b_from_a = grammar.chain("b", "a", 0)

    class CyclicLabeling(Labeling):
        def rule_for(self, node, nonterminal):
            return a_from_b if nonterminal == "a" else b_from_a

        def cost_of(self, node, nonterminal):
            return 0

    builder = NodeBuilder()
    node = builder.reg(1)
    with pytest.raises(CoverError, match="cyclic derivation"):
        Reducer(CyclicLabeling(grammar)).reduce(node, "a")


# ----------------------------------------------------------------------
# Cover accounting on DAG-shared covers


def _dag_setup():
    grammar = parse_grammar(
        """
        %grammar dagcover
        %start stmt
        stmt: EXPR(reg)                          (0)
        stmt: STORE(addr, ADD(LOAD(addr), reg))  (2) "add-to-mem"
        addr: reg                                (0)
        reg:  REG                                (0)
        reg:  LOAD(addr)                         (3)
        reg:  ADD(reg, reg)                      (1)
        """
    )
    builder = NodeBuilder()
    shared = builder.reg(1)  # shared address: two roots, several parents
    forest = Forest(
        [
            builder.expr(builder.add(shared, shared)),
            builder.store(shared, builder.add(builder.load(shared), builder.reg(2))),
        ],
        name="dag",
    )
    return grammar, forest


def test_cover_total_cost_counts_shared_decisions_once():
    grammar, forest = _dag_setup()
    cover = extract_cover(label_dp(grammar, forest), forest)
    decisions = [(id(entry.node), entry.nonterminal) for entry in cover.entries]
    assert len(decisions) == len(set(decisions))  # each pair decided once
    assert cover.total_cost() == sum(entry.rule.cost_at(entry.node) for entry in cover.entries)
    # DP absolute root costs cross-check: both labelers agree.
    auto_cover = extract_cover(OnDemandAutomaton(grammar).label(forest), forest)
    assert auto_cover.total_cost() == cover.total_cost()
    assert len(cover) == len(cover.entries)


def test_cover_original_rules_used_folds_helpers_away():
    grammar, forest = _dag_setup()
    # The automaton works on the normalized grammar, so its cover
    # contains helper rules; original_rules_used must fold them back.
    cover = extract_cover(OnDemandAutomaton(grammar).label(forest), forest)
    assert any(entry.rule.is_helper for entry in cover.entries)
    originals = cover.original_rules_used()
    assert len(originals) == len(cover.entries)
    assert all(not rule.is_helper for rule in originals)
    assert any(rule.template == "add-to-mem" for rule in originals)
    # rules_used returns the as-chosen (normalized) rules unchanged.
    assert any(rule.is_helper for rule in cover.rules_used())


def test_cover_entry_cost_evaluates_at_node():
    grammar, forest = _dag_setup()
    rule = grammar.rules_for_op("REG")[0]
    entry = CoverEntry(node=forest.roots[0].kids[0].kids[0], nonterminal="reg", rule=rule)
    assert entry.cost == rule.cost
    empty = Cover(grammar=grammar)
    assert empty.total_cost() == 0 and len(empty) == 0
