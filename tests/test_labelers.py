"""DP versus on-demand automaton: optimality, DAGs, amortization, dynamics."""

from __future__ import annotations

from conftest import BENCHMARK_BUILDERS, build_dag_forest, build_dynamic_forest

from repro.metrics import LabelMetrics, format_table
from repro.selection import (
    DPLabeler,
    OnDemandAutomaton,
    extract_cover,
    label_dp,
    label_ondemand,
)


def test_dp_and_automaton_produce_equal_cover_costs(demo_grammar, benchmark_forests):
    automaton = OnDemandAutomaton(demo_grammar)
    for forest in benchmark_forests:
        dp_cover = extract_cover(label_dp(demo_grammar, forest), forest)
        auto_cover = extract_cover(automaton.label(forest), forest)
        assert dp_cover.total_cost() == auto_cover.total_cost(), forest.name
        assert len(dp_cover) > 0


def test_dag_nodes_labeled_once(demo_grammar):
    forest = build_dag_forest()
    metrics = LabelMetrics()
    labeling = label_dp(demo_grammar, forest, metrics)
    assert metrics.nodes_labeled == forest.node_count()
    cover = extract_cover(labeling, forest)
    # DAG sharing: each (node, nonterminal) decision appears exactly once.
    decisions = [(id(entry.node), entry.nonterminal) for entry in cover.entries]
    assert len(decisions) == len(set(decisions))

    auto_metrics = LabelMetrics()
    label_ondemand(demo_grammar, forest, auto_metrics)
    assert auto_metrics.nodes_labeled == forest.node_count()


def test_automaton_amortizes_repeated_shapes(demo_grammar):
    """Re-labeling the same forest shapes must become pure table lookups."""
    automaton = OnDemandAutomaton(demo_grammar)

    first = LabelMetrics()
    for build in BENCHMARK_BUILDERS:
        automaton.label(build(), first)
    assert first.table_misses > 0
    assert first.states_created > 0
    assert first.construction_operations() > 0

    second = LabelMetrics()
    for build in BENCHMARK_BUILDERS:
        automaton.label(build(), second)
    assert second.nodes_labeled == first.nodes_labeled
    assert second.table_lookups == second.nodes_labeled
    assert second.table_misses == 0
    assert second.states_created == 0
    assert second.chain_checks == 0
    assert second.rule_checks == 0
    assert second.construction_operations() < first.construction_operations()


def test_dp_labeling_work_stays_constant(demo_grammar):
    labeler = DPLabeler(demo_grammar)
    first = LabelMetrics()
    second = LabelMetrics()
    for build in BENCHMARK_BUILDERS:
        labeler.label(build(), first)
    for build in BENCHMARK_BUILDERS:
        labeler.label(build(), second)
    assert first.chain_checks == second.chain_checks > 0
    assert first.rule_checks == second.rule_checks > 0


def test_dynamic_costs_and_constraints_agree(dynamic_grammar):
    forest = build_dynamic_forest()
    automaton = OnDemandAutomaton(dynamic_grammar)
    dp_metrics = LabelMetrics()
    auto_metrics = LabelMetrics()
    dp_cover = extract_cover(label_dp(dynamic_grammar, forest, dp_metrics), forest)
    auto_cover = extract_cover(automaton.label(forest, auto_metrics), forest)
    assert dp_cover.total_cost() == auto_cover.total_cost()
    assert dp_metrics.dynamic_evals > 0
    assert auto_metrics.dynamic_evals > 0
    # Constraint outcomes split the CNST transitions: small (immediate)
    # and large constants must reach different states.
    templates = {entry.rule.template for entry in dp_cover.entries if entry.rule.template}
    assert "li" in templates  # the large constant needs the load-immediate path


def test_dynamic_signatures_are_memoized(dynamic_grammar):
    """Same constraint outcome ⇒ table hit, even for different payloads."""
    automaton = OnDemandAutomaton(dynamic_grammar)
    automaton.label(build_dynamic_forest())
    repeat = LabelMetrics()
    automaton.label(build_dynamic_forest(), repeat)
    assert repeat.table_misses == 0
    assert repeat.dynamic_evals > 0  # dynamic checks are inherently per node


def test_multi_node_dynamic_cost_only_runs_where_pattern_matches():
    """Dynamic costs on multi-node rules may dereference the pattern's
    inner nodes; the automaton must not evaluate them at nodes the
    original pattern does not structurally match (it used to, crashing
    on e.g. a plain STORE while DP labeled the forest fine)."""
    from conftest import NodeBuilder, parse_grammar
    from repro.ir import Forest

    def memadd_cost(node):
        inner = node.kids[1].kids[0]  # the LOAD of STORE(addr, ADD(LOAD(addr), reg))
        return 1 if inner.op.name == "LOAD" else 2

    grammar = parse_grammar(
        """
        %grammar md
        %start stmt
        stmt: EXPR(reg)                          (0)
        stmt: STORE(addr, reg)                   (2)
        stmt: STORE(addr, ADD(LOAD(addr), reg))  (memadd)
        addr: reg                                (0)
        reg:  REG                                (0)
        reg:  LOAD(addr)                         (3)
        reg:  ADD(reg, reg)                      (1)
        reg:  CNST                               (1)
        """,
        bindings={"memadd": memadd_cost},
    )
    b = NodeBuilder()
    forest = Forest(
        [
            b.store(b.reg(1), b.reg(2)),  # plain store: rule must not match
            b.store(b.reg(3), b.add(b.load(b.reg(3)), b.reg(4))),  # add-to-memory
        ]
    )
    automaton = OnDemandAutomaton(grammar)
    dp_cover = extract_cover(label_dp(grammar, forest), forest)
    auto_cover = extract_cover(automaton.label(forest), forest)
    assert dp_cover.total_cost() == auto_cover.total_cost()
    # The matching root uses the cheap dynamic add-to-memory rule.
    assert any(rule.dynamic_cost is memadd_cost for rule in auto_cover.original_rules_used())

    # The DP labeler on the *normalized* grammar sees only the flattened
    # one-level top pattern and must apply the same original-pattern
    # guard (it used to crash here too).
    from repro.grammar import normalize

    normalized = normalize(grammar).grammar
    nf_cover = extract_cover(label_dp(normalized, forest), forest)
    assert nf_cover.total_cost() == dp_cover.total_cost()


def test_single_level_dynamic_rule_not_evaluated_on_arity_mismatch():
    """A dynamic cost on an ordinary (single-level) rule may read
    node.kids positions its pattern guarantees; when a node dialect
    disagrees about the operator's arity, neither labeler may run the
    callable (the automaton used to, crashing before _base_costs could
    filter the rule out)."""
    from repro.errors import CoverError
    from repro.grammar import Grammar
    from repro.ir import Forest, NodeBuilder, OperatorSet

    grammar_ops = OperatorSet(name="grammar-dialect")
    grammar_ops.define("EXPR", 1, is_statement=True)
    grammar_ops.define("REG", 0, has_payload=True)
    grammar_ops.define("PAIR", 2)
    grammar = Grammar(name="dialects", operators=grammar_ops, start="stmt")
    grammar.op_rule("stmt", "EXPR", ["reg"], 0)
    grammar.op_rule("reg", "REG", [], 0)
    grammar.op_rule(
        "reg", "PAIR", ["reg", "reg"], 0,
        dynamic_cost=lambda node: 1 + node.kids[1].nid,  # relies on arity 2
    )

    node_ops = OperatorSet(name="node-dialect")
    node_ops.define("EXPR", 1, is_statement=True)
    node_ops.define("REG", 0, has_payload=True)
    node_ops.define("PAIR", 1)  # same name, arity 1
    b = NodeBuilder(node_ops)
    forest = Forest([b.expr(b.pair(b.reg(1)))])

    # Neither labeler may crash; both must report "no derivation".
    for labeling in (label_dp(grammar, forest), OnDemandAutomaton(grammar).label(forest)):
        import pytest

        with pytest.raises(CoverError):
            extract_cover(labeling, forest)


def test_dynamic_chain_rule_only_runs_where_source_is_derivable():
    """A dynamic chain rule's callable may rely on the node shapes its
    source nonterminal can label (here: CNST payloads); the automaton
    must not evaluate it at unrelated nodes (it used to, crashing on
    REG/ADD nodes where node.value is None), and same-outcome payloads
    must still share transitions."""
    from conftest import NodeBuilder, parse_grammar
    from repro.ir import Forest

    def addr_cost(node):
        return node.value % 4  # valid exactly where `con` is derivable (CNST)

    grammar = parse_grammar(
        """
        %grammar chainmd
        %start stmt
        stmt: EXPR(reg)        (0)
        stmt: STORE(addr, reg) (1)
        addr: reg              (0)
        addr: con              (addrc)
        reg:  REG              (0)
        reg:  ADD(reg, reg)    (1)
        reg:  con              (1)
        con:  CNST             (0)
        """,
        bindings={"addrc": addr_cost},
    )

    def build(payload):
        b = NodeBuilder()
        return Forest(
            [
                b.store(b.cnst(payload), b.add(b.reg(1), b.reg(2))),
                b.expr(b.reg(3)),
            ]
        )

    automaton = OnDemandAutomaton(grammar)
    cold = LabelMetrics()
    forest = build(8)
    dp_cover = extract_cover(label_dp(grammar, forest), forest)
    auto_cover = extract_cover(automaton.label(forest, cold), forest)
    assert dp_cover.total_cost() == auto_cover.total_cost()
    # CNST(8) and CNST(12) have the same dynamic outcome (0 mod 4): the
    # warm run must be pure table hits despite the different payload.
    warm = LabelMetrics()
    repeat = build(12)
    automaton.label(repeat, warm)
    assert warm.table_misses == 0
    assert warm.dynamic_evals > 0
    # A different outcome (2 mod 4) must split the transition, and agree
    # with DP about the resulting cover cost.
    other = build(6)
    dp_other = extract_cover(label_dp(grammar, other), other)
    auto_other = extract_cover(automaton.label(other), other)
    assert dp_other.total_cost() == auto_other.total_cost()


def test_grammar_extension_invalidates_automaton(demo_grammar):
    forest_before = build_dag_forest()
    automaton = OnDemandAutomaton(demo_grammar)
    cost_before = extract_cover(automaton.label(forest_before), forest_before).total_cost()
    states_before = len(automaton.pool)
    assert states_before > 0

    # A JIT-style extension: loads become free.  The automaton must
    # resynchronise and agree with DP on the extended grammar.
    demo_grammar.op_rule("reg", "LOAD", ["addr"], 0)
    forest_after = build_dag_forest()
    auto_cover = extract_cover(automaton.label(forest_after), forest_after)
    dp_cover = extract_cover(label_dp(demo_grammar, forest_after), forest_after)
    assert auto_cover.total_cost() == dp_cover.total_cost()
    assert auto_cover.total_cost() < cost_before


def test_multi_node_rule_actions_get_identical_operands_under_all_labelers():
    """A multi-node rule's action must receive the same flat operand list
    whether the reducer runs over the original grammar (DP) or the
    normalized one (automaton / DP-on-normalized); helper-rule values
    used to arrive as one nested list under the normalized grammars."""
    from repro.grammar import Grammar, normalize, nt_pattern, op_pattern
    from repro.ir import Forest, NodeBuilder
    from repro.selection import Reducer

    grammar = Grammar(name="ops", start="stmt")
    grammar.op_rule("reg", "REG", [], 0, action=lambda ctx, n, ops: f"r{n.value}")
    grammar.chain("addr", "reg", 0)
    pattern = op_pattern(
        "STORE",
        nt_pattern("addr"),
        op_pattern("ADD", op_pattern("LOAD", nt_pattern("addr")), nt_pattern("reg")),
    )
    grammar.add_rule("stmt", pattern, 1, action=lambda ctx, n, ops: tuple(ops))

    def build():
        b = NodeBuilder()
        return Forest([b.store(b.reg(1), b.add(b.load(b.reg(2)), b.reg(3)))])

    results = []
    for name, make_labeling in [
        ("dp-original", lambda f: label_dp(grammar, f)),
        ("dp-normalized", lambda f: label_dp(normalize(grammar).grammar, f)),
        ("automaton", lambda f: OnDemandAutomaton(grammar).label(f)),
    ]:
        forest = build()
        values = Reducer(make_labeling(forest)).reduce_forest(forest)
        results.append((name, values[0]))
    expected = ("r1", "r2", "r3")
    for name, value in results:
        assert value == expected, f"{name} produced {value!r}"


def test_metrics_render_as_comparison_table(demo_grammar):
    forest = build_dag_forest()
    dp_metrics = LabelMetrics()
    auto_metrics = LabelMetrics()
    label_dp(demo_grammar, forest, dp_metrics)
    label_ondemand(demo_grammar, forest, auto_metrics)
    rows = [
        {"labeler": "dp", **dp_metrics.as_row()},
        {"labeler": "ondemand", **auto_metrics.as_row()},
    ]
    table = format_table(rows, title="labeling work")
    assert "chain checks" in table
    assert "dp" in table and "ondemand" in table
    assert dp_metrics.operations() > 0 and auto_metrics.operations() > 0
