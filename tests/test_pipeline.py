"""End-to-end pipeline: select()/select_many(), differential equivalence,
and the rewritten iterative reducer's semantics and metrics."""

from __future__ import annotations

import pytest

from repro.bench import (
    EmitContext,
    bench_grammar,
    dag_heavy_forests,
    emit_bench_grammar,
    random_forests,
    reduce_heavy_forests,
    shared_reduction_forests,
)
from repro.errors import CoverError
from repro.grammar import Grammar, normalize
from repro.ir import Forest, NodeBuilder
from repro.selection import (
    DPLabeler,
    OnDemandAutomaton,
    Reducer,
    SelectionReport,
    extract_cover,
    label_dp,
    make_labeler,
    select,
    select_many,
)

# ----------------------------------------------------------------------
# select / select_many API


def test_select_returns_values_report_and_labeling():
    grammar = bench_grammar()
    [forest] = random_forests(17, forests=1, statements=5, max_depth=4)
    result = select(forest, grammar, labeler="dp")

    assert len(result.values) == len(forest.roots)
    report = result.report
    assert isinstance(report, SelectionReport)
    assert report.labeler == "dp"
    assert report.forests == 1
    assert report.roots == len(forest.roots)
    assert report.nodes == forest.node_count()
    assert report.reductions > 0
    assert report.label_ns >= 0 and report.reduce_ns >= 0
    assert report.total_ns == report.label_ns + report.reduce_ns
    assert report.ns_per_node == report.total_ns / report.nodes
    assert 0.0 <= report.reduce_fraction <= 1.0
    # Cover cost matches an independent extraction.
    assert report.cover_cost == extract_cover(result.labeling, forest).total_cost()
    # as_row is JSON-ready and complete.
    row = result.report.as_row()
    assert row["cover_cost"] == report.cover_cost
    assert row["labeler"] == "dp"


def test_select_many_batches_and_reports_per_forest_values():
    grammar = bench_grammar()
    forests = random_forests(23, forests=4, statements=4, max_depth=4)
    result = select_many(forests, grammar, labeler="ondemand")
    assert result.report.labeler == "ondemand"
    assert len(result.values) == len(forests)
    for forest, values in zip(forests, result.values):
        assert len(values) == len(forest.roots)
    assert result.report.forests == len(forests)
    assert result.report.nodes == sum(forest.node_count() for forest in forests)


def test_select_without_cover_collection_skips_cost():
    grammar = bench_grammar()
    [forest] = random_forests(3, forests=1, statements=3, max_depth=3)
    result = select(forest, grammar, collect_cover=False)
    assert result.report.cover_cost is None


def test_make_labeler_resolution():
    grammar = bench_grammar()
    # String specs are deprecated (use Selector(grammar, mode=...)) but
    # must keep resolving to the same engine types as before.
    with pytest.warns(DeprecationWarning, match="string labeler specs"):
        assert isinstance(make_labeler(grammar, "dp"), DPLabeler)
    with pytest.warns(DeprecationWarning):
        ondemand = make_labeler(grammar, "ondemand")
    assert isinstance(ondemand, OnDemandAutomaton)
    assert ondemand._eager is None
    with pytest.warns(DeprecationWarning):
        eager = make_labeler(grammar, "eager")
    assert isinstance(eager, OnDemandAutomaton)
    assert eager._eager is not None
    # Engine objects pass through unchanged (and without warnings).
    assert make_labeler(grammar, ondemand) is ondemand
    assert make_labeler(None, ondemand) is ondemand
    with pytest.warns(DeprecationWarning), pytest.raises(ValueError, match="unknown labeler"):
        make_labeler(grammar, "offline")
    with pytest.raises(TypeError, match="label_many"):
        make_labeler(grammar, object())
    with pytest.warns(DeprecationWarning), pytest.raises(CoverError, match="needs a grammar"):
        make_labeler(None, "dp")


def test_select_reports_eager_labeler_name():
    grammar = bench_grammar()
    [forest] = random_forests(5, forests=1, statements=3, max_depth=3)
    assert select(forest, grammar, labeler="eager").report.labeler == "eager"


# ----------------------------------------------------------------------
# Randomized differential test: semantic values AND action traces are
# identical across DP, on-demand, eager, and label_many-batched pipelines.


def _per_forest_runs(forests, engine, grammar):
    """Per-forest select() calls sharing one engine and one context."""
    context = EmitContext()
    values = [
        select(forest, grammar, labeler=engine, context=context).values for forest in forests
    ]
    return values, context


def test_randomized_differential_values_and_traces_across_pipelines():
    grammar = emit_bench_grammar()
    for seed in range(5):
        forests = (
            random_forests(seed, forests=2, statements=5, max_depth=4)
            + reduce_heavy_forests(seed + 50, forests=2, statements=5, max_depth=4)
            + dag_heavy_forests(seed + 100, forests=2, statements=5, shared=4)
            + shared_reduction_forests(seed + 150, forests=2, statements=6, shared=4)
        )
        runs = {}
        # Per-forest pipelines over each labeler architecture.
        runs["dp"] = _per_forest_runs(forests, DPLabeler(grammar), grammar)
        runs["ondemand"] = _per_forest_runs(forests, OnDemandAutomaton(grammar), grammar)
        eager_automaton = OnDemandAutomaton(grammar)
        eager_automaton.build_eager()
        runs["eager"] = _per_forest_runs(forests, eager_automaton, grammar)
        # The label_many-batched pipeline (one labeling, one reducer).
        batched_context = EmitContext()
        batched = select_many(
            forests, grammar, labeler=OnDemandAutomaton(grammar), context=batched_context
        )
        runs["batched"] = (batched.values, batched_context)

        base_values, base_context = runs["dp"]
        for name, (values, context) in runs.items():
            assert values == base_values, (seed, name)
            assert context.instructions == base_context.instructions, (seed, name)
            assert context.trace == base_context.trace, (seed, name)


def test_batched_pipeline_reduces_cross_forest_shared_nodes_once():
    """Two forests sharing a subtree: the batched reducer memoizes across
    forests, so the shared node's action emits once; per-forest selects
    (one reducer each) emit it once per forest."""
    grammar = emit_bench_grammar()
    b = NodeBuilder()
    shared = b.add(b.reg(1), b.reg(2))
    first = Forest([b.expr(shared)], name="first")
    second = Forest([b.expr(b.neg(shared))], name="second")

    batched_context = EmitContext()
    batched = select_many([first, second], grammar, context=batched_context)
    separate_context = EmitContext()
    for forest in (first, second):
        select(forest, grammar, labeler="dp", context=separate_context)

    assert batched.report.memo_hits > 0

    def add_emissions(context):
        return sum(1 for instruction in context.instructions if instruction.startswith("add "))

    assert add_emissions(batched_context) == 1
    assert add_emissions(separate_context) == 2


# ----------------------------------------------------------------------
# Reducer pre-/post-rewrite semantics


def test_chain_rule_action_receives_single_operand():
    grammar = Grammar(name="chain-action", start="stmt")
    grammar.op_rule("reg", "REG", [], 0, action=lambda ctx, n, ops: f"r{n.value}")
    grammar.chain("addr", "reg", 0, action=lambda ctx, n, ops: ("addr", *ops))
    grammar.op_rule("stmt", "EXPR", ["addr"], 0, action=lambda ctx, n, ops: ops[0])
    b = NodeBuilder()
    forest = Forest([b.expr(b.reg(7))])
    for labeler in ("dp", "ondemand", "eager"):
        result = select(forest, grammar, labeler=labeler)
        assert result.values == [("addr", "r7")], labeler


def test_helper_rule_splicing_flat_operands_through_pipeline():
    """Multi-node rule actions see one flat operand list under every
    labeler (helper rules splice, never nest)."""
    from repro.grammar import nt_pattern, op_pattern

    grammar = Grammar(name="splice", start="stmt")
    grammar.op_rule("reg", "REG", [], 0, action=lambda ctx, n, ops: f"r{n.value}")
    grammar.chain("addr", "reg", 0)
    pattern = op_pattern(
        "STORE",
        nt_pattern("addr"),
        op_pattern("ADD", op_pattern("LOAD", nt_pattern("addr")), nt_pattern("reg")),
    )
    grammar.add_rule("stmt", pattern, 1, action=lambda ctx, n, ops: tuple(ops))

    def build():
        b = NodeBuilder()
        return Forest([b.store(b.reg(1), b.add(b.load(b.reg(2)), b.reg(3)))])

    for labeler in ("dp", "ondemand", "eager"):
        result = select(build(), grammar, labeler=labeler)
        assert result.values == [("r1", "r2", "r3")], labeler


def test_template_rules_route_through_emit_template():
    grammar = emit_bench_grammar()
    b = NodeBuilder()
    # con -> reg via the templated "li" chain rule.
    forest = Forest([b.expr(b.cnst(200))])
    context = EmitContext()
    select(forest, grammar, context=context)
    assert any("li" in instruction for instruction in context.instructions)


def test_none_valued_action_hits_missing_memo_once():
    """An action returning None must be memoized: the memo's _MISSING
    sentinel, not None, marks absence, so the action runs once per
    (node, nonterminal) even under DAG sharing."""
    calls = []
    grammar = Grammar(name="none-memo", start="stmt")
    grammar.op_rule("reg", "REG", [], 0, action=lambda ctx, n, ops: calls.append(n.value))
    grammar.op_rule("reg", "ADD", ["reg", "reg"], 1)
    grammar.op_rule("stmt", "EXPR", ["reg"], 0)
    b = NodeBuilder()
    leaf = b.reg(9)
    forest = Forest([b.expr(b.add(leaf, leaf))])  # DAG: leaf shared twice

    labeling = label_dp(grammar, forest)
    reducer = Reducer(labeling)
    values = reducer.reduce_forest(forest)
    assert calls == [9]  # action ran exactly once despite two parents
    assert reducer.memo_hits == 1  # second reference answered from memo
    assert values[0] == [None, None]  # both operands are the memoized None


def test_reducer_metrics_reductions_and_memo_hits_are_well_defined():
    grammar = bench_grammar()
    [forest] = dag_heavy_forests(41, forests=1, statements=8, shared=4)
    labeling = OnDemandAutomaton(grammar).label(forest)
    reducer = Reducer(labeling)
    reducer.reduce_forest(forest)
    first_reductions = reducer.reductions
    assert first_reductions > 0
    # reductions == memo entries: one rule application per distinct pair.
    assert first_reductions == len(reducer._memo)
    # Re-reducing the same forest applies no further rules: every root
    # answers from the memo.
    hits_before = reducer.memo_hits
    reducer.reduce_forest(forest)
    assert reducer.reductions == first_reductions
    assert reducer.memo_hits == hits_before + len(forest.roots)


def test_reduce_forest_without_start_nonterminal_raises():
    grammar = Grammar(name="nostart")
    assert grammar.start is None
    b = NodeBuilder()
    forest = Forest([b.reg(1)])
    labeling = label_dp(grammar, forest)
    with pytest.raises(CoverError, match="no start nonterminal"):
        Reducer(labeling).reduce_forest(forest)
    with pytest.raises(CoverError, match="no start nonterminal"):
        select(forest, grammar, labeler="dp")


def test_reducer_on_normalized_grammar_matches_original():
    """DP over the normalized grammar drives the same user actions as
    DP over the original (the reducer's splice path)."""
    grammar = emit_bench_grammar()
    normalized = normalize(grammar).grammar
    forests = reduce_heavy_forests(77, forests=2, statements=6, max_depth=4)
    for forest in forests:
        original_ctx, normalized_ctx = EmitContext(), EmitContext()
        Reducer(label_dp(grammar, forest), original_ctx).reduce_forest(forest)
        Reducer(label_dp(normalized, forest), normalized_ctx).reduce_forest(forest)
        assert normalized_ctx.instructions == original_ctx.instructions
        assert normalized_ctx.trace == original_ctx.trace
