"""The Selector facade: modes, AOT compile/save/load, packed tables, CLI."""

from __future__ import annotations

import json
import warnings

import pytest

from repro.bench import (
    EmitContext,
    bench_grammar,
    dag_heavy_forests,
    dynamic_bench_grammar,
    dynamic_constraint_forests,
    emit_bench_grammar,
    random_forests,
    recurring_shape_stream,
)
from repro.errors import SelectorError
from repro.grammar import parse_grammar
from repro.metrics import LabelMetrics
from repro.selection import (
    DPLabeler,
    OnDemandAutomaton,
    Selector,
    SelectorConfig,
    extract_cover,
    grammar_fingerprint,
    label_dp,
    make_labeler,
)
from repro.selection.selector import main as selector_main
from repro.selection.selector import read_artifact_header


def _mixed_forests(seed: int):
    return (
        random_forests(seed, forests=2, statements=5, max_depth=4)
        + dag_heavy_forests(seed + 50, forests=2, statements=5, shared=4)
        + recurring_shape_stream(seed + 90, shapes=2, length=3, statements=4, max_depth=4)
    )


# ----------------------------------------------------------------------
# Modes and facade basics


def test_selector_modes_label_identically():
    grammar = bench_grammar()
    forests = _mixed_forests(3)
    selectors = {
        "dp": Selector(grammar, mode="dp"),
        "ondemand": Selector(grammar, mode="ondemand"),
        "eager": Selector(grammar, mode="eager"),
    }
    assert selectors["dp"].mode == "dp"
    assert selectors["ondemand"].mode == "ondemand"
    assert selectors["eager"].mode == "eager"
    assert isinstance(selectors["dp"].engine, DPLabeler)
    assert isinstance(selectors["eager"].engine, OnDemandAutomaton)
    for forest in forests:
        reference = extract_cover(label_dp(grammar, forest), forest).total_cost()
        for name, selector in selectors.items():
            labeling = selector.label(forest)
            assert extract_cover(labeling, forest).total_cost() == reference, name


def test_selector_select_and_select_many():
    grammar = emit_bench_grammar()
    forests = random_forests(11, forests=3, statements=4, max_depth=4)
    selector = Selector(grammar, mode="ondemand")

    context = EmitContext()
    batch = selector.select_many(forests, context=context)
    assert len(batch.values) == len(forests)
    assert batch.report.labeler == "ondemand"
    assert batch.report.cover_cost > 0
    assert context.instructions

    single = selector.select(forests[0], context=EmitContext())
    assert len(single.values) == len(forests[0].roots)

    skipped = selector.select(forests[0], context=EmitContext(), collect_cover=False)
    assert skipped.report.cover_cost is None


def test_selector_mode_errors_and_wrap():
    grammar = bench_grammar()
    with pytest.raises(ValueError, match="unknown selector mode"):
        Selector(grammar, mode="offline")
    with pytest.raises(SelectorError, match="needs a grammar"):
        Selector()
    with pytest.raises(TypeError, match="label_many"):
        Selector.wrap(object())
    with pytest.raises(SelectorError, match="only automaton modes"):
        Selector(grammar, mode="dp").compile()
    with pytest.raises(SelectorError, match="only automaton modes"):
        Selector(grammar, mode="dp").save("/tmp/never-written.rsel")

    automaton = OnDemandAutomaton(grammar)
    wrapped = Selector.wrap(automaton)
    assert wrapped.engine is automaton
    assert Selector.wrap(wrapped) is wrapped  # selector pass-through
    assert wrapped.grammar is grammar


def test_compile_switches_mode_and_stats_unify_the_views():
    grammar = bench_grammar()
    selector = Selector(grammar)
    assert selector.mode == "ondemand"
    build = selector.compile()
    assert selector.mode == "eager"
    assert build["transitions"] > 0

    forests = random_forests(5, forests=2, statements=4, max_depth=4)
    metrics = LabelMetrics()
    selector.label_many(forests, metrics)
    selector.select_many(forests)

    stats = selector.stats()
    # Table sizes (automaton view) ...
    assert stats["tables"]["states"] > 0
    assert stats["tables"]["eager"]["transitions"] == build["transitions"]
    # ... AOT story ...
    assert stats["aot"]["compiled"] is True
    assert stats["aot"]["valid"] is True
    assert stats["aot"]["build_ns"] > 0
    assert stats["aot"]["fingerprint"] == grammar_fingerprint(grammar)
    # ... hit/warm rates from the metered labeling ...
    assert stats["labeling"]["hit_rate"] == 1.0
    assert stats["labeling"]["warm_fraction"] == 1.0
    assert stats["labeling"]["table_misses"] == 0
    # ... and per-phase selection nanoseconds.
    assert stats["selection"]["calls"] == 1
    assert stats["selection"]["label_ns"] >= 0
    assert stats["selection"]["reduce_ns"] > 0
    assert stats["selection"]["total_ns"] > 0
    assert stats["selection"]["last"]["labeler"] == "eager"

    dp_stats = Selector(grammar, mode="dp").stats()
    assert dp_stats["tables"] is None
    assert dp_stats["aot"]["compiled"] is False
    assert dp_stats["labeling"] is None


# ----------------------------------------------------------------------
# Save / load round trip


def test_save_load_roundtrip_randomized_differential_sweep(tmp_path):
    grammar = emit_bench_grammar()
    compiled = Selector(grammar, mode="eager")
    artifact = compiled.save(tmp_path / "emit.rsel")
    assert artifact.exists()

    loaded = Selector.load(artifact, emit_bench_grammar())
    assert loaded.mode == "eager"
    for seed in range(4):
        forests = _mixed_forests(seed)
        ctx_eager, ctx_loaded = EmitContext(), EmitContext()
        expected = compiled.select_many(forests, context=ctx_eager)
        observed = loaded.select_many(forests, context=ctx_loaded)
        assert observed.values == expected.values, seed
        assert ctx_loaded.instructions == ctx_eager.instructions, seed
        assert ctx_loaded.trace == ctx_eager.trace, seed
        assert observed.report.cover_cost == expected.report.cover_cost, seed
        for forest in forests:
            a = extract_cover(compiled.label(forest), forest)
            b = extract_cover(loaded.label(forest), forest)
            assert [e.rule.number for e in a.entries] == [e.rule.number for e in b.entries]


def test_loaded_selector_zero_misses_from_first_contact(tmp_path):
    grammar = bench_grammar()
    artifact = Selector(grammar, mode="eager").save(tmp_path / "bench.rsel")
    loaded = Selector.load(artifact, bench_grammar())
    metrics = LabelMetrics()
    loaded.label_many(_mixed_forests(7), metrics)
    assert metrics.table_lookups > 0
    assert metrics.table_misses == 0
    assert metrics.states_created == 0
    assert loaded.stats()["aot"]["loaded_from"] == str(artifact)
    assert loaded.stats()["aot"]["load_ns"] > 0


def test_save_load_constraint_grammar_signatures(tmp_path):
    """Constraint (restricted-dynamic) rules round-trip their enumerated
    signature tables: zero misses and DP-equal covers after load."""
    grammar = dynamic_bench_grammar()
    artifact = Selector(grammar, mode="eager").save(tmp_path / "dyn.rsel")
    loaded = Selector.load(artifact, dynamic_bench_grammar())
    forests = dynamic_constraint_forests(9, forests=3, statements=5, max_depth=4)
    metrics = LabelMetrics()
    labeling = loaded.label_many(forests, metrics)
    assert metrics.table_misses == 0
    for forest in forests:
        assert (
            extract_cover(labeling, forest).total_cost()
            == extract_cover(label_dp(grammar, forest), forest).total_cost()
        )


def test_load_rejects_mismatched_and_stale_grammars(tmp_path):
    artifact = Selector(bench_grammar(), mode="eager").save(tmp_path / "bench.rsel")
    # A different grammar is rejected outright.
    with pytest.raises(SelectorError, match="different grammar"):
        Selector.load(artifact, dynamic_bench_grammar())
    # A since-extended ("stale") grammar no longer fingerprints the same.
    extended = bench_grammar()
    extended.op_rule("reg", "LOAD", ["addr"], 0)
    with pytest.raises(SelectorError, match="different grammar"):
        Selector.load(artifact, extended)


def test_load_rejects_truncated_and_corrupt_artifacts(tmp_path):
    grammar = bench_grammar()
    artifact = Selector(grammar, mode="eager").save(tmp_path / "bench.rsel")
    blob = artifact.read_bytes()

    bad_magic = tmp_path / "magic.rsel"
    bad_magic.write_bytes(b"NOTSELXX" + blob[8:])
    with pytest.raises(SelectorError, match="bad magic"):
        Selector.load(bad_magic, grammar)

    for cut, message in ((10, "header"), (len(blob) // 2, "truncated"), (len(blob) - 7, "truncated")):
        truncated = tmp_path / f"cut{cut}.rsel"
        truncated.write_bytes(blob[:cut])
        with pytest.raises(SelectorError, match=message):
            Selector.load(truncated, grammar)

    corrupt = bytearray(blob)
    corrupt[-100] ^= 0xFF  # flip a payload byte: checksum must catch it
    corrupted = tmp_path / "corrupt.rsel"
    corrupted.write_bytes(bytes(corrupt))
    with pytest.raises(SelectorError, match="checksum"):
        Selector.load(corrupted, grammar)

    with pytest.raises(SelectorError, match="cannot read"):
        Selector.load(tmp_path / "missing.rsel", grammar)


def test_load_then_extend_invalidates_tables_and_stays_optimal(tmp_path):
    grammar = bench_grammar()
    artifact = Selector(grammar, mode="eager").save(tmp_path / "bench.rsel")
    live = bench_grammar()
    loaded = Selector.load(artifact, live, SelectorConfig(packed=True))
    forests = random_forests(13, forests=3, statements=5, max_depth=4)

    cost_before = sum(
        extract_cover(loaded.label(forest), forest).total_cost() for forest in forests
    )
    assert loaded.stats()["aot"]["valid"] is True

    # JIT-style extension on the live grammar: free loads. The loaded
    # tables (and packed matrices) must be dropped, results must track
    # DP on the extended grammar, and covers must get cheaper.
    live.op_rule("reg", "LOAD", ["addr"], 0)
    assert loaded.stats()["aot"]["valid"] is False
    cost_after = 0
    for forest in forests:
        cover = extract_cover(loaded.label(forest), forest)
        assert (
            cover.total_cost()
            == extract_cover(label_dp(live, forest), forest).total_cost()
        )
        cost_after += cover.total_cost()
    assert cost_after < cost_before
    assert loaded.mode == "ondemand"  # eager tables died with the extension
    assert loaded.stats()["aot"]["packed"] is None


# ----------------------------------------------------------------------
# Packed (dense-matrix) fast path


def test_packed_fast_path_matches_dict_tables(tmp_path):
    grammar = bench_grammar()
    compiled = Selector(grammar, mode="eager", config=SelectorConfig(packed=True))
    assert compiled.stats()["aot"]["packed"]["transitions"] > 0
    artifact = compiled.save(tmp_path / "bench.rsel")
    loaded = Selector.load(artifact, bench_grammar(), SelectorConfig(packed=True))

    for seed in range(3):
        forests = _mixed_forests(seed + 30)
        for forest in forests:
            reference = extract_cover(label_dp(grammar, forest), forest).total_cost()
            assert extract_cover(compiled.label(forest), forest).total_cost() == reference
            assert extract_cover(loaded.label(forest), forest).total_cost() == reference
    # The packed loop also serves batched labeling and full selection.
    batch_forests = _mixed_forests(77)
    batch = loaded.label_many(batch_forests)
    for forest in batch_forests:
        assert (
            extract_cover(batch, forest).total_cost()
            == extract_cover(label_dp(grammar, forest), forest).total_cost()
        )
    report = loaded.select_many(_mixed_forests(78)).report
    assert report.cover_cost > 0


def test_packed_path_handles_foreign_operators_via_fallback():
    """A dialect operator the grammar never mentions must fall back to
    the dict tables (error state), not crash the packed loop."""
    from repro.ir import Forest, NodeBuilder

    grammar = parse_grammar(
        """
        %grammar tiny
        %start stmt
        stmt: EXPR(reg) (0)
        reg:  REG       (0)
        reg:  ADD(reg, reg) (1)
        reg:  CNST      (1)
        """
    )
    selector = Selector(grammar, mode="eager", config=SelectorConfig(packed=True))
    b = NodeBuilder()
    # SUB appears in the default dialect but not in the grammar.
    forest = Forest([b.expr(b.sub(b.reg(1), b.cnst(2)))])
    labeling = selector.label(forest)
    assert labeling.rule_for(forest.roots[0], "stmt") is None  # no derivation
    good = Forest([b.expr(b.add(b.reg(1), b.cnst(2)))])
    cover = extract_cover(selector.label(good), good)
    assert cover.total_cost() == extract_cover(label_dp(grammar, good), good).total_cost()


def test_arity3_operators_roundtrip_nary_tables(tmp_path):
    """Arity ≥ 3 transitions have no dense-matrix shape: they ride the
    tuple-keyed nary tables through packing, the packed labeling loop's
    fallback, and the artifact's flat-run encoding."""
    from repro.grammar import Grammar
    from repro.ir import Forest, NodeBuilder
    from repro.ir.ops import OperatorSet

    ops = OperatorSet(name="ternary")
    ops.define("TOP", 1, is_statement=True)
    ops.define("SEL", 3)
    ops.define("LEAF", 0, has_payload=True)
    grammar = Grammar("ternary", operators=ops, start="top")
    grammar.op_rule("top", "TOP", ["v"], 0)
    grammar.op_rule("v", "LEAF", [], 0)
    grammar.op_rule("v", "SEL", ["v", "v", "v"], 1)

    b = NodeBuilder(ops)
    forest = Forest(
        [
            b.node("TOP", b.node("SEL", b.leaf("LEAF", 1), b.leaf("LEAF", 2), b.leaf("LEAF", 3))),
            b.node(
                "TOP",
                b.node(
                    "SEL",
                    b.node("SEL", b.leaf("LEAF", 4), b.leaf("LEAF", 5), b.leaf("LEAF", 6)),
                    b.leaf("LEAF", 7),
                    b.leaf("LEAF", 8),
                ),
            ),
        ]
    )
    reference = extract_cover(label_dp(grammar, forest), forest).total_cost()

    compiled = Selector(grammar, mode="eager", config=SelectorConfig(packed=True))
    assert extract_cover(compiled.label(forest), forest).total_cost() == reference

    artifact = compiled.save(tmp_path / "ternary.rsel")
    loaded = Selector.load(artifact, grammar, SelectorConfig(packed=True))
    metrics = LabelMetrics()
    labeling = loaded.label_many([forest], metrics)
    assert metrics.table_misses == 0
    assert extract_cover(labeling, forest).total_cost() == reference
    # The packed fast path answers the same queries (nary via fallback).
    assert extract_cover(loaded.label(forest), forest).total_cost() == reference


# ----------------------------------------------------------------------
# Deprecated wrappers


def test_make_labeler_string_specs_warn_but_behave_identically():
    grammar = bench_grammar()
    with pytest.warns(DeprecationWarning, match="string labeler specs"):
        dp = make_labeler(grammar, "dp")
    assert isinstance(dp, DPLabeler)
    with pytest.warns(DeprecationWarning):
        eager = make_labeler(grammar, "eager")
    assert isinstance(eager, OnDemandAutomaton)
    assert eager._eager is not None
    # Engine objects and selectors pass through silently and unchanged.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        automaton = OnDemandAutomaton(grammar)
        assert make_labeler(grammar, automaton) is automaton
        selector = Selector(grammar)
        assert make_labeler(None, selector) is selector


# ----------------------------------------------------------------------
# Fingerprint


def test_fingerprint_is_structural_and_sensitive():
    assert grammar_fingerprint(bench_grammar()) == grammar_fingerprint(bench_grammar())
    assert grammar_fingerprint(bench_grammar()) != grammar_fingerprint(dynamic_bench_grammar())
    extended = bench_grammar()
    fingerprint_before = grammar_fingerprint(extended)
    extended.op_rule("reg", "LOAD", ["addr"], 0)
    assert grammar_fingerprint(extended) != fingerprint_before
    # Emit actions are reduction-time-only: attaching them keeps AOT
    # artifacts valid (emit_bench_grammar differs from bench only by
    # actions and its %grammar name).
    renamed = bench_grammar()
    renamed.name = "bench_emit"
    assert grammar_fingerprint(renamed) == grammar_fingerprint(emit_bench_grammar())


# ----------------------------------------------------------------------
# Command-line interface


def test_cli_compile_from_module_spec_and_inspect(tmp_path, capsys):
    out = tmp_path / "bench.rsel"
    assert selector_main(["compile", "repro.bench.workloads:bench_grammar", str(out)]) == 0
    printed = capsys.readouterr().out
    assert "compiled 'bench'" in printed and "fingerprint" in printed
    header = read_artifact_header(out)
    assert header["fingerprint"] == grammar_fingerprint(bench_grammar())
    loaded = Selector.load(out, bench_grammar())
    [forest] = random_forests(2, forests=1, statements=4, max_depth=4)
    assert loaded.select(forest).report.cover_cost > 0

    assert selector_main(["inspect", str(out)]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["grammar"] == "bench"
    assert summary["states"] == header["states"]


def test_cli_compile_from_grammar_text_file(tmp_path, capsys):
    source = tmp_path / "demo.g"
    source.write_text(
        """
        %grammar demo
        %start stmt
        stmt: EXPR(reg)     (0)
        reg:  REG           (0)
        reg:  ADD(reg, reg) (1)
        reg:  CNST          (1)
        """
    )
    out = tmp_path / "demo.rsel"
    assert selector_main(["compile", str(source), str(out)]) == 0
    header = read_artifact_header(out)
    assert header["grammar"] == "demo"
    capsys.readouterr()


def test_cli_reports_errors_cleanly(tmp_path, capsys):
    assert selector_main(["compile", "no.such.module:grammar", str(tmp_path / "x.rsel")]) == 1
    assert "error:" in capsys.readouterr().err
    assert selector_main(["compile", "repro.bench.workloads:EmitContext", str(tmp_path / "x.rsel")]) == 1
    assert "not a Grammar" in capsys.readouterr().err
    missing = tmp_path / "missing.g"
    assert selector_main(["compile", str(missing), str(tmp_path / "x.rsel")]) == 1
    capsys.readouterr()
    assert selector_main(["inspect", str(tmp_path / "nothing.rsel")]) == 1
    capsys.readouterr()
