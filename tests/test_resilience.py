"""The chaos suite: systematic fault injection against the resilience layer.

Three contracts are exercised, each differentially against a clean run:

* **Isolation** — ``select_many(on_error="isolate")`` contains a
  faulted forest as a structured :class:`SelectionFailure` (correct
  phase, node provenance) while every non-faulted forest produces
  *exactly* the values a clean batch would, and the resilience
  counters match the injected fault counts.
* **Degradation ladder** — every artifact failure (missing, unreadable,
  truncated, corrupted, stale) and every blown build budget demotes one
  rung without an unhandled exception, recording the demotion in
  ``stats()["resilience"]``; the :class:`ArtifactCache` adds retry,
  quarantine, and save-back absorption on top.
* **Crash safety** — ``save()`` killed after *every* write-syscall
  boundary never leaves a partial artifact at the target path, and
  strictly-partial temp files are rejected by ``load()``.

The seed honors ``REPRO_CHAOS_SEED`` so CI can run a seed matrix.
"""

from __future__ import annotations

import os

import pytest

from conftest import DYNAMIC_TEXT, mul_cost, small_const
from repro.errors import (
    ArtifactCorruptError,
    ArtifactError,
    ArtifactIOError,
    ArtifactStaleError,
    ResilienceError,
    SelectorError,
)
from repro.grammar import parse_grammar
from repro.grammar.pattern import nt_pattern, op_pattern
from repro.ir import Forest, ForestValidationError, Node, NodeBuilder, OperatorSet
from repro.selection import (
    ArtifactCache,
    BuildBudget,
    SelectionFailure,
    Selector,
    SelectorConfig,
)
from repro.selection import select_many as fn_select_many
from repro.selection import selector as selector_module
from repro.selection.selector import read_artifact_header
from repro.testing import (
    InjectedFault,
    SimulatedCrash,
    artifact_io_faults,
    corrupt_bytes,
    poison_action,
    poison_constraint,
    truncate_bytes,
)

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "42"))

# A normal-form-only grammar: the automaton's normalized grammar copies
# these rule objects' callables verbatim, so poisoning a rule before the
# selector is built poisons exactly the rule the engine runs.
CHAOS_TEXT = """
%grammar chaos
%start stmt

stmt: EXPR(reg)      (0)
reg:  REG            (0)
reg:  con            (1)
reg:  ADD(reg, reg)  (1)
reg:  SUB(reg, reg)  (2)
reg:  MUL(reg, reg)  (3)
con:  CNST           (0)
"""


def _pure_action(lhs: str, pattern: str):
    """A deterministic, context-free emission action.

    Values depend only on the rule and the node's shape — never on nids
    or emit-context state — so values from independently built
    selectors compare equal (the differential-testing invariant).
    """

    def action(context, node, operands):
        return (lhs, pattern, node.op.name, node.value, tuple(operands))

    return action


def _chaos_grammar():
    grammar = parse_grammar(CHAOS_TEXT)
    for rule in grammar.rules:
        rule.action = _pure_action(rule.lhs, str(rule.pattern))
    return grammar


def _rule(grammar, lhs: str, fragment: str):
    return next(
        r for r in grammar.rules if r.lhs == lhs and fragment in str(r.pattern)
    )


def _chaos_forests() -> list[Forest]:
    b = NodeBuilder()
    f0 = Forest(name="f0")
    f0.add(b.expr(b.add(b.reg(1), b.cnst(4))))
    f1 = Forest(name="f1")
    f1.add(b.expr(b.mul(b.reg(1), b.reg(2))))
    f2 = Forest(name="f2")  # the only forest containing SUB
    f2.add(b.expr(b.sub(b.reg(3), b.cnst(7))))
    f3 = Forest(name="f3")
    f3.add(b.expr(b.add(b.add(b.reg(1), b.reg(2)), b.cnst(3))))
    return [f0, f1, f2, f3]


def _dynamic_grammar():
    grammar = parse_grammar(
        DYNAMIC_TEXT, bindings={"small": small_const, "mulcost": mul_cost}
    )
    for rule in grammar.rules:
        rule.action = _pure_action(rule.lhs, str(rule.pattern))
    return grammar


def _dynamic_forests() -> list[Forest]:
    b = NodeBuilder()
    g0 = Forest(name="g0")
    g0.add(b.expr(b.add(b.cnst(3), b.cnst(200))))
    g1 = Forest(name="g1")  # the only forest containing CNST 13
    g1.add(b.expr(b.add(b.cnst(13), b.reg(1))))
    g2 = Forest(name="g2")
    g2.add(b.expr(b.mul(b.reg(1), b.cnst(4))))
    return [g0, g1, g2]


# ----------------------------------------------------------------------
# Fault isolation: on_error="isolate"


class TestIsolation:
    def test_unknown_policy_is_rejected(self):
        sel = Selector(_chaos_grammar())
        with pytest.raises(ValueError, match="unknown on_error policy"):
            sel.select_many(_chaos_forests(), on_error="retry")

    def test_raise_policy_propagates(self):
        grammar = _chaos_grammar()
        fault, _ = poison_action(_rule(grammar, "reg", "SUB"), on_call=1)
        sel = Selector(grammar)
        with pytest.raises(InjectedFault):
            sel.select_many(_chaos_forests())
        assert fault.faults == 1

    @pytest.mark.parametrize("mode", ["ondemand", "dp", "eager"])
    def test_reduce_fault_is_isolated_differentially(self, mode):
        clean_values = (
            Selector(_chaos_grammar(), mode="ondemand")
            .select_many(_chaos_forests())
            .values
        )

        grammar = _chaos_grammar()
        fault, _ = poison_action(_rule(grammar, "reg", "SUB"), on_call=1)
        sel = Selector(grammar, mode="ondemand" if mode == "eager" else mode)
        if mode == "eager":
            sel.compile()
        result = sel.select_many(_chaos_forests(), on_error="isolate")

        failure = result.values[2]
        assert isinstance(failure, SelectionFailure)
        assert failure.phase == "reduce"
        assert failure.index == 2
        assert failure.forest == "f2"
        assert failure.error_type == "InjectedFault"
        assert failure.node is not None and failure.node.startswith("SUB(")
        assert failure.roots_completed == 0
        assert "SUB(" in repr(failure)
        assert failure.as_row()["phase"] == "reduce"
        # Every non-faulted forest matches the clean batch exactly.
        for index in (0, 1, 3):
            assert result.values[index] == clean_values[index]
        assert result.failures == [failure]
        # Counters match the injected fault counts exactly.
        assert fault.faults == 1
        assert result.report.failures == 1
        resilience = sel.stats()["resilience"]
        assert resilience["isolated_failures"] == 1
        assert resilience["failures_by_phase"] == {"validate": 0, "label": 0, "reduce": 1}

    def test_reduce_fault_rolls_back_shared_memo(self):
        # fB reuses a subtree that the faulted fA already reduced; its
        # memo entries were rolled back, so fB must recompute them and
        # land on exactly the values of a standalone clean run.
        def shared_forests():
            b = NodeBuilder()
            shared = b.add(b.reg(1), b.cnst(4))
            fa = Forest(name="fA")
            fa.add(b.expr(shared))
            fa.add(b.expr(b.sub(shared, b.reg(2))))
            fb = Forest(name="fB")
            fb.add(b.expr(b.add(shared, b.reg(3))))
            return [fa, fb]

        grammar = _chaos_grammar()
        fault, _ = poison_action(_rule(grammar, "reg", "SUB"), on_call=1)
        sel = Selector(grammar)
        result = sel.select_many(shared_forests(), on_error="isolate")

        failure = result.values[0]
        assert isinstance(failure, SelectionFailure)
        assert failure.phase == "reduce"
        assert failure.roots_completed == 1  # first root finished before the fault
        clean = Selector(_chaos_grammar()).select_many([shared_forests()[1]])
        assert result.values[1] == clean.values[0]
        assert fault.faults == 1

    def test_label_fault_is_isolated_differentially(self):
        clean_values = Selector(_dynamic_grammar()).select_many(_dynamic_forests()).values

        grammar = _dynamic_grammar()
        constrained = next(r for r in grammar.rules if r.constraint is not None)
        fault, _ = poison_constraint(
            constrained, predicate=lambda node: node.value == 13
        )
        sel = Selector(grammar)
        result = sel.select_many(_dynamic_forests(), on_error="isolate")

        failure = result.values[1]
        assert isinstance(failure, SelectionFailure)
        assert failure.phase == "label"
        assert failure.forest == "g1"
        assert failure.error_type == "InjectedFault"
        assert failure.node is not None and failure.node.startswith("CNST(")
        for index in (0, 2):
            assert result.values[index] == clean_values[index]
        # The batch label faults once, then the per-forest probe of g1
        # faults again (documented re-label behavior): exactly 2 firings.
        assert fault.faults == 2
        resilience = sel.stats()["resilience"]
        assert resilience["isolated_failures"] == 1
        assert resilience["failures_by_phase"]["label"] == 1

    def test_validate_fault_is_isolated(self):
        grammar = _chaos_grammar()
        sel = Selector(grammar, config=SelectorConfig(validate=True))
        foreign = OperatorSet(name="foreign")
        vec = foreign.define("VECADD", 2)
        b = NodeBuilder()
        good = Forest(name="good")
        good.add(b.expr(b.add(b.reg(1), b.cnst(4))))
        bad = Forest(name="bad")
        bad.add(b.expr(Node(vec, [b.reg(1), b.reg(2)])))

        with pytest.raises(ForestValidationError):
            sel.select_many([good, bad])

        result = sel.select_many([good, bad], on_error="isolate")
        failure = result.values[1]
        assert isinstance(failure, SelectionFailure)
        assert failure.phase == "validate"
        assert failure.error_type == "ForestValidationError"
        clean = Selector(_chaos_grammar()).select_many([_chaos_forests()[0]])
        assert result.values[0] == clean.values[0]
        assert sel.stats()["resilience"]["failures_by_phase"]["validate"] == 1

    def test_single_forest_select_isolates(self):
        grammar = _chaos_grammar()
        fault, _ = poison_action(_rule(grammar, "reg", "SUB"), on_call=1)
        sel = Selector(grammar)
        b = NodeBuilder()
        forest = Forest(name="solo")
        forest.add(b.expr(b.sub(b.reg(1), b.reg(2))))
        result = sel.select(forest, on_error="isolate")
        assert isinstance(result.values, SelectionFailure)
        assert result.values.phase == "reduce"
        assert fault.faults == 1

    def test_functional_wrapper_passes_policy_through(self):
        grammar = _chaos_grammar()
        poison_action(_rule(grammar, "reg", "SUB"), on_call=1)
        result = fn_select_many(
            _chaos_forests(), grammar, on_error="isolate", collect_cover=False
        )
        assert isinstance(result.values[2], SelectionFailure)
        assert [i for i, v in enumerate(result.values) if isinstance(v, SelectionFailure)] == [2]

    def test_simulated_crash_is_never_isolated(self):
        grammar = _chaos_grammar()
        poison_action(
            _rule(grammar, "reg", "SUB"),
            on_call=1,
            exc_factory=lambda: SimulatedCrash("process death"),
        )
        sel = Selector(grammar)
        with pytest.raises(SimulatedCrash):
            sel.select_many(_chaos_forests(), on_error="isolate")
        assert sel.stats()["resilience"]["isolated_failures"] == 0


# ----------------------------------------------------------------------
# Build budgets (eager → on-demand demotion)


class TestBuildBudget:
    def test_max_states_budget_demotes_to_ondemand(self):
        sel = Selector(_chaos_grammar())
        build = sel.compile(budget=BuildBudget(max_states=1))
        assert build["capped"] is True
        assert sel.mode == "ondemand"
        resilience = sel.stats()["resilience"]
        assert resilience["demotions"]["build_budget"] == 1
        assert "build_budget" in resilience["last_degradation"]
        # Demoted ≠ broken: selection still works on-demand.
        clean = Selector(_chaos_grammar()).select_many(_chaos_forests())
        assert sel.select_many(_chaos_forests()).values == clean.values

    def test_deadline_budget_demotes_to_ondemand(self):
        sel = Selector(_chaos_grammar())
        build = sel.compile(budget=BuildBudget(deadline_ns=0))
        assert build["deadline_exceeded"] is True
        assert sel.mode == "ondemand"
        assert sel.stats()["resilience"]["demotions"]["build_budget"] == 1
        assert "deadline" in sel.stats()["resilience"]["last_degradation"]

    def test_generous_budget_compiles_eagerly(self):
        sel = Selector(_chaos_grammar())
        build = sel.compile(budget=BuildBudget(max_states=10**6, deadline_ns=10**12))
        assert not build["capped"] and not build["deadline_exceeded"]
        assert sel.mode == "eager"
        assert sel.stats()["resilience"]["demotions"]["build_budget"] == 0

    def test_plain_max_states_keeps_capped_eager_semantics(self):
        sel = Selector(_chaos_grammar())
        build = sel.compile(max_states=1)
        assert build["capped"] is True
        assert sel.mode == "eager"  # historical behavior, no budget → no demotion
        assert sel.stats()["resilience"]["demotions"]["build_budget"] == 0


# ----------------------------------------------------------------------
# Packed-matrix demotions


class TestPackedDemotions:
    def test_packed_miss_falls_back_to_dict_tables(self):
        sel = Selector(_chaos_grammar(), config=SelectorConfig(packed=True))
        sel.compile(max_states=1)  # matrices over a deliberately tiny pool
        clean = Selector(_chaos_grammar()).select_many(_chaos_forests())
        assert sel.select_many(_chaos_forests()).values == clean.values
        assert sel.stats()["resilience"]["demotions"]["packed_miss"] >= 1

    def test_grammar_extension_drops_stale_matrices(self):
        grammar = _chaos_grammar()
        sel = Selector(grammar, config=SelectorConfig(packed=True))
        sel.compile()
        grammar.add_rule("reg", op_pattern("NEG", nt_pattern("reg")), 1)
        b = NodeBuilder()
        forest = Forest(name="neg")
        forest.add(b.expr(b.neg(b.reg(1))))
        values = sel.select_many([forest]).values
        assert values and values[0]
        resilience = sel.stats()["resilience"]
        assert resilience["demotions"]["packed_stale"] == 1
        assert "packed_stale" in resilience["last_degradation"]


# ----------------------------------------------------------------------
# Artifact failures: load() error taxonomy (the PR's load() bugfix)


class TestArtifactFailures:
    def test_roundtrip_sanity(self, tmp_path):
        grammar = _chaos_grammar()
        sel = Selector(grammar)
        sel.compile()
        path = sel.save(tmp_path / "chaos.rsel")
        loaded = Selector.load(path, grammar)
        assert loaded.mode == "eager"
        assert loaded.stats()["aot"]["loaded_from"] == str(path)
        clean = sel.select_many(_chaos_forests())
        assert loaded.select_many(_chaos_forests()).values == clean.values

    def test_zero_length_artifact_is_a_selector_error(self, tmp_path):
        path = tmp_path / "empty.rsel"
        path.write_bytes(b"")
        with pytest.raises(ArtifactCorruptError, match="empty") as excinfo:
            Selector.load(path, _chaos_grammar())
        assert isinstance(excinfo.value, SelectorError)
        assert str(path) in str(excinfo.value)
        with pytest.raises(ArtifactCorruptError):
            read_artifact_header(path)

    def test_missing_artifact_is_io_error_with_cause(self, tmp_path):
        path = tmp_path / "nope.rsel"
        with pytest.raises(ArtifactIOError) as excinfo:
            Selector.load(path, _chaos_grammar())
        assert str(path) in str(excinfo.value)
        assert isinstance(excinfo.value.__cause__, OSError)

    def test_unreadable_artifact_is_io_error_with_cause(self, tmp_path):
        grammar = _chaos_grammar()
        sel = Selector(grammar)
        path = sel.save(tmp_path / "chaos.rsel")
        with artifact_io_faults(fail_reads=1):
            with pytest.raises(ArtifactIOError) as excinfo:
                Selector.load(path, grammar)
        assert str(path) in str(excinfo.value)
        assert isinstance(excinfo.value.__cause__, OSError)

    def test_truncated_artifact_is_corrupt(self, tmp_path):
        grammar = _chaos_grammar()
        path = Selector(grammar).save(tmp_path / "chaos.rsel")
        truncate_bytes(path, fraction=0.5)
        with pytest.raises(ArtifactCorruptError):
            Selector.load(path, grammar)

    def test_seeded_byte_flip_never_loads(self, tmp_path):
        grammar = _chaos_grammar()
        path = Selector(grammar).save(tmp_path / "chaos.rsel")
        offset = corrupt_bytes(path, seed=CHAOS_SEED)
        assert offset >= 0
        # Depending on where the flip lands (magic, header, fingerprint,
        # payload) a different subclass fires — but always ArtifactError.
        with pytest.raises(ArtifactError):
            Selector.load(path, grammar)

    def test_stale_fingerprint_is_rejected(self, tmp_path):
        grammar = _chaos_grammar()
        path = Selector(grammar).save(tmp_path / "chaos.rsel")
        other = parse_grammar(CHAOS_TEXT.replace("(3)", "(4)"))
        with pytest.raises(ArtifactStaleError, match="different grammar"):
            Selector.load(path, other)


class TestLoadOrCompile:
    def test_missing_artifact_demotes_to_compile(self, tmp_path):
        grammar = _chaos_grammar()
        sel = Selector.load_or_compile(tmp_path / "nope.rsel", grammar)
        assert sel.mode == "eager"  # compiled in-process, no budget
        resilience = sel.stats()["resilience"]
        assert resilience["demotions"]["load_failed"] == 1
        assert "load_failed" in resilience["last_degradation"]
        clean = Selector(_chaos_grammar()).select_many(_chaos_forests())
        assert sel.select_many(_chaos_forests()).values == clean.values

    def test_corrupt_artifact_demotes_and_is_left_untouched(self, tmp_path):
        grammar = _chaos_grammar()
        path = Selector(grammar).save(tmp_path / "chaos.rsel")
        corrupt_bytes(path, seed=CHAOS_SEED)
        poisoned = path.read_bytes()
        sel = Selector.load_or_compile(path, grammar)
        assert sel.stats()["resilience"]["demotions"]["load_failed"] == 1
        assert path.read_bytes() == poisoned  # no quarantine outside the cache
        assert sel.select_many(_chaos_forests()).report.failures == 0

    def test_healthy_artifact_loads_without_demotion(self, tmp_path):
        grammar = _chaos_grammar()
        path = Selector(grammar).save(tmp_path / "chaos.rsel")
        sel = Selector.load_or_compile(path, grammar)
        assert sel.stats()["aot"]["loaded_from"] == str(path)
        assert sel.stats()["resilience"]["demotions"]["load_failed"] == 0

    def test_budget_demotion_stacks_on_load_demotion(self, tmp_path):
        grammar = _chaos_grammar()
        sel = Selector.load_or_compile(
            tmp_path / "nope.rsel", grammar, budget=BuildBudget(max_states=1)
        )
        assert sel.mode == "ondemand"
        demotions = sel.stats()["resilience"]["demotions"]
        assert demotions["load_failed"] == 1
        assert demotions["build_budget"] == 1
        assert sel.select_many(_chaos_forests()).report.failures == 0


# ----------------------------------------------------------------------
# ArtifactCache: retry, quarantine, compile-on-miss, save-back


class TestArtifactCache:
    def test_rejects_negative_retries(self, tmp_path):
        with pytest.raises(ResilienceError):
            ArtifactCache(tmp_path, retries=-1)

    def test_compile_on_miss_then_hit(self, tmp_path):
        grammar = _chaos_grammar()
        cache = ArtifactCache(tmp_path / "cache", base_delay=0, seed=CHAOS_SEED)
        first = cache.selector_for(grammar)
        assert first.mode == "eager"
        assert cache.path_for(grammar).exists()
        second = cache.selector_for(grammar)
        assert second.stats()["aot"]["loaded_from"] == str(cache.path_for(grammar))
        stats = cache.stats()
        assert (stats["misses"], stats["compiles"], stats["hits"]) == (1, 1, 1)
        clean = Selector(_chaos_grammar()).select_many(_chaos_forests())
        assert second.select_many(_chaos_forests()).values == clean.values

    def test_transient_read_failures_are_retried(self, tmp_path):
        grammar = _chaos_grammar()
        warm = ArtifactCache(tmp_path, base_delay=0)
        warm.selector_for(grammar)  # populate the cache

        cache = ArtifactCache(tmp_path, retries=4, base_delay=0, seed=CHAOS_SEED)
        with artifact_io_faults(fail_reads=2):
            sel = cache.selector_for(grammar)
        stats = cache.stats()
        assert (stats["hits"], stats["retries"], stats["loads_failed"]) == (1, 2, 0)
        assert sel.stats()["resilience"]["retries"] == 2
        assert sel.stats()["aot"]["loaded_from"] is not None

    def test_retry_exhaustion_demotes_to_compile(self, tmp_path):
        grammar = _chaos_grammar()
        ArtifactCache(tmp_path, base_delay=0).selector_for(grammar)

        cache = ArtifactCache(tmp_path, retries=2, base_delay=0, seed=CHAOS_SEED)
        with artifact_io_faults(fail_reads=100):
            sel = cache.selector_for(grammar)
        stats = cache.stats()
        assert (stats["loads_failed"], stats["retries"], stats["compiles"]) == (1, 2, 1)
        resilience = sel.stats()["resilience"]
        assert resilience["demotions"]["load_failed"] == 1
        assert resilience["retries"] == 2
        assert sel.select_many(_chaos_forests()).report.failures == 0

    def test_quarantine_recovers_a_poisoned_cache_entry(self, tmp_path):
        grammar = _chaos_grammar()
        cache = ArtifactCache(tmp_path, base_delay=0, seed=CHAOS_SEED)
        path = cache.path_for(grammar)
        Selector(grammar).save(path)
        corrupt_bytes(path, seed=CHAOS_SEED)

        sel = cache.selector_for(grammar)
        assert path.with_name(path.name + ".bad").exists()
        stats = cache.stats()
        assert (stats["quarantined"], stats["loads_failed"], stats["compiles"]) == (1, 1, 1)
        assert any("quarantined" in event for event in stats["events"])
        resilience = sel.stats()["resilience"]
        assert resilience["quarantined"] == 1
        assert resilience["demotions"]["load_failed"] == 1
        # The rebuilt artifact is healthy: the next call is a clean hit.
        again = cache.selector_for(grammar)
        assert again.stats()["aot"]["loaded_from"] == str(path)
        assert cache.stats()["hits"] == 1
        assert cache.stats()["quarantined"] == 1

    def test_save_back_failure_is_absorbed(self, tmp_path, monkeypatch):
        grammar = _chaos_grammar()
        cache = ArtifactCache(tmp_path, retries=1, base_delay=0, seed=CHAOS_SEED)

        def denied(path, flags):
            raise OSError(f"read-only filesystem: {path}")

        monkeypatch.setattr(selector_module, "_io_open", denied)
        sel = cache.selector_for(grammar)
        stats = cache.stats()
        assert stats["saves_failed"] == 1
        assert any("save failed" in event for event in stats["events"])
        assert not cache.path_for(grammar).exists()
        # Degraded throughput, not correctness: the selector still works.
        clean = Selector(_chaos_grammar()).select_many(_chaos_forests())
        assert sel.select_many(_chaos_forests()).values == clean.values


# ----------------------------------------------------------------------
# Crash-safe atomic save: kill after every write-syscall boundary


class TestAtomicSaveCrashMatrix:
    def test_crash_after_every_write_step(self, tmp_path, monkeypatch):
        # Small chunks → several write boundaries even for a small blob.
        monkeypatch.setattr(selector_module, "_IO_CHUNK", 512)
        grammar = _chaos_grammar()
        sel = Selector(grammar)
        sel.compile()

        clean_target = tmp_path / "clean.rsel"
        with artifact_io_faults() as counters:
            sel.save(clean_target)
        total = counters.write_steps
        chunk_writes = counters.write
        blob_len = clean_target.stat().st_size
        assert total == chunk_writes + 3  # open + writes + fsync + rename
        assert chunk_writes >= 2

        for step in range(1, total + 1):
            target = tmp_path / f"crash_{step}.rsel"
            with pytest.raises(SimulatedCrash):
                with artifact_io_faults(crash_after_step=step):
                    sel.save(target)

            if step == total:
                # Crash after the rename: the artifact is fully published.
                assert target.exists()
                assert target.stat().st_size == blob_len
                Selector.load(target, grammar)
            else:
                # Atomicity: a reader can never observe a partial target.
                assert not target.exists()

            partials = sorted(tmp_path.glob(target.name + ".tmp.*"))
            if step < total:
                # Crash before the rename leaves the temp file behind,
                # exactly like real process death (no cleanup handler).
                assert len(partials) == 1
            for partial in partials:
                if partial.stat().st_size < blob_len:
                    # Strictly-partial bytes must be rejected by load().
                    assert step <= chunk_writes
                    with pytest.raises((ArtifactCorruptError, ArtifactIOError)):
                        Selector.load(partial, grammar)
                else:
                    # Crash between the last write and the rename: the
                    # temp file is complete and loads fine.
                    assert step > chunk_writes
                    Selector.load(partial, grammar)
                partial.unlink()

    def test_cache_recovers_from_a_crashed_legacy_writer(self, tmp_path):
        # A non-atomic writer dies mid-write, leaving partial bytes at
        # the cache path itself: quarantine + rebuild must recover.
        grammar = _chaos_grammar()
        cache = ArtifactCache(tmp_path, base_delay=0, seed=CHAOS_SEED)
        path = cache.path_for(grammar)
        Selector(grammar).save(path)
        truncate_bytes(path, fraction=0.3)

        sel = cache.selector_for(grammar)
        assert path.with_name(path.name + ".bad").exists()
        assert cache.stats()["quarantined"] == 1
        Selector.load(path, grammar)  # rebuilt artifact is healthy
        assert sel.select_many(_chaos_forests()).report.failures == 0
