"""Grammar-text diagnostics carry ``line L:C`` source provenance.

Regression tests for the parser-diagnostics satellite: every parse
error — malformed cost expressions in particular — must point at the
offending token's 1-based line and column, not just fail vaguely.
"""

from __future__ import annotations

import pytest

from repro.errors import GrammarError
from repro.grammar import parse_grammar


def _error(text: str, **kwargs) -> str:
    with pytest.raises(GrammarError) as excinfo:
        parse_grammar(text, **kwargs)
    return str(excinfo.value)


def test_malformed_cost_expression_points_at_the_cost_token():
    message = _error('reg: REG ("x")\n')
    assert "line 1:11: cost must be an integer or an identifier" in message
    assert "'\"x\"'" in message


def test_malformed_cost_on_later_line_reports_that_line():
    message = _error('reg: REG (1)\nreg: CNST (@)\n')
    assert "line 2:12: cost must be an integer or an identifier" in message


def test_missing_dynamic_cost_binding_points_at_the_identifier():
    message = _error("reg: REG (mystery)\n")
    assert "line 1:11: no binding provided for dynamic cost / constraint 'mystery'" in message


def test_missing_constraint_binding_points_at_the_annotation_argument():
    message = _error("reg: REG (1) @constraint(nope)\n")
    assert "line 1:26: no binding provided" in message
    assert "'nope'" in message


def test_unknown_annotation_has_position():
    message = _error("reg: REG (1) @frobnicate(x)\n")
    assert "line 1:15: unknown annotation @frobnicate" in message


def test_unknown_directive_has_position():
    message = _error("%nonsense foo\n")
    assert "line 1:2: unknown directive %nonsense" in message


def test_unexpected_character_has_position():
    message = _error("reg: REG $ (1)\n")
    assert "line 1:10: unexpected character '$'" in message


def test_missing_colon_points_at_the_found_token():
    message = _error("reg REG (1)\n")
    assert "line 1:5: expected ':'" in message
    assert "'REG'" in message


def test_operator_arity_error_has_position():
    message = _error("reg: ADD\n")
    assert "line 1:6: operator ADD needs 2 children" in message


def test_positions_survive_leading_blank_lines_and_comments():
    text = "\n# a comment\n\nreg: REG (bogus)\n"
    message = _error(text)
    assert "line 4:11: no binding provided" in message
