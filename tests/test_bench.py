"""Benchmark subsystem: generators, runner, equivalence sweep, speed claim."""

from __future__ import annotations

import json
import random
import time

import pytest

from repro.bench import (
    BenchConfig,
    bench_grammar,
    clone_forest,
    dag_heavy_forests,
    random_forests,
    recurring_shape_stream,
    run_selection_bench,
    write_report,
)
from repro.ir import shared_nodes
from repro.metrics import LabelMetrics
from repro.selection import OnDemandAutomaton, extract_cover, label_dp


def _tiny_config() -> BenchConfig:
    config = BenchConfig.smoke(seed=11)
    config.stream_length = 4
    return config


# ----------------------------------------------------------------------
# Workload generators


def test_generators_are_deterministic_per_seed():
    first = random_forests(3, forests=3, statements=5, max_depth=4)
    second = random_forests(3, forests=3, statements=5, max_depth=4)
    different = random_forests(4, forests=3, statements=5, max_depth=4)
    for a, b in zip(first, second):
        assert len(a.roots) == len(b.roots)
        assert all(x.structurally_equal(y) for x, y in zip(a.roots, b.roots))
    assert any(
        not x.structurally_equal(y)
        for a, b in zip(first, different)
        for x, y in zip(a.roots, b.roots)
    )


def test_dag_heavy_forests_actually_share_nodes():
    for forest in dag_heavy_forests(5, forests=3, statements=8, shared=4):
        assert shared_nodes(forest.roots), forest.name
        assert forest.node_count() < sum(root.size() for root in forest.roots)


def test_clone_forest_preserves_structure_and_sharing():
    [forest] = dag_heavy_forests(9, forests=1, statements=6, shared=4)
    clone = clone_forest(forest)
    assert clone.node_count() == forest.node_count()
    assert len(clone.roots) == len(forest.roots)
    for original, copied in zip(forest.roots, clone.roots):
        assert copied is not original
        assert copied.structurally_equal(original)


def test_recurring_stream_draws_fresh_nodes_from_few_shapes():
    stream = recurring_shape_stream(2, shapes=2, length=6, statements=4, max_depth=3)
    assert len(stream) == 6
    seen_ids = set()
    for forest in stream:
        for node in forest.nodes():
            assert id(node) not in seen_ids  # fresh nodes every forest
            seen_ids.add(id(node))
    # Few shapes => warm relabeling is pure table hits after the first pass.
    automaton = OnDemandAutomaton(bench_grammar())
    for forest in stream:
        automaton.label(forest)
    warm = LabelMetrics()
    for forest in stream:
        automaton.label(forest, warm)
    assert warm.table_misses == 0
    assert warm.hit_rate == 1.0


# ----------------------------------------------------------------------
# Randomized DP-vs-automaton equivalence sweep (the optimization changed
# nothing observable)


def test_randomized_dp_vs_automaton_cover_equivalence_sweep():
    grammar = bench_grammar()
    automaton = OnDemandAutomaton(grammar)
    for seed in range(6):
        forests = (
            random_forests(seed, forests=2, statements=6, max_depth=5)
            + dag_heavy_forests(seed + 100, forests=2, statements=6, shared=4)
            + recurring_shape_stream(seed + 200, shapes=2, length=3, statements=4, max_depth=4)
        )
        for forest in forests:
            dp_cover = extract_cover(label_dp(grammar, forest), forest)
            auto_cover = extract_cover(automaton.label(forest), forest)
            assert dp_cover.total_cost() == auto_cover.total_cost(), (seed, forest.name)
            assert len(auto_cover) == len(dp_cover)


def test_grammar_extension_between_labels_rebuilds_tables_and_stays_optimal():
    grammar = bench_grammar()
    automaton = OnDemandAutomaton(grammar)
    forests = random_forests(21, forests=3, statements=8, max_depth=5)

    for forest in forests:
        automaton.label(forest)
    stats_before = automaton.stats()
    pool_before = automaton.pool
    assert stats_before["transitions"] > 0
    cost_before = sum(
        extract_cover(automaton.label(forest), forest).total_cost() for forest in forests
    )

    # JIT-style extension between two label() calls on the live automaton:
    # loads become free, so optimal covers must get cheaper.
    grammar.op_rule("reg", "LOAD", ["addr"], 0)
    cost_after = 0
    for forest in forests:
        auto_cover = extract_cover(automaton.label(forest), forest)
        dp_cover = extract_cover(label_dp(grammar, forest), forest)
        assert auto_cover.total_cost() == dp_cover.total_cost(), forest.name
        cost_after += auto_cover.total_cost()

    assert automaton.pool is not pool_before  # state pool was rebuilt
    assert automaton.stats()["transitions"] > 0  # tables regrew on demand
    assert cost_after < cost_before


# ----------------------------------------------------------------------
# Runner and report


def test_runner_emits_valid_report(tmp_path):
    report = run_selection_bench(_tiny_config())
    path = write_report(report, tmp_path / "BENCH_selection.json")
    loaded = json.loads(path.read_text())

    assert loaded["benchmark"] == "selection-labeling"
    assert {"python", "platform", "grammar", "dynamic_grammar", "config"} <= set(loaded["meta"])
    names = [workload["name"] for workload in loaded["workloads"]]
    assert names == ["random_trees", "dag_heavy", "recurring_stream", "dynamic_constraints"]
    for workload in loaded["workloads"]:
        assert workload["nodes"] > 0
        assert workload["automaton"]["states"] > 0
        assert workload["automaton"]["transitions"] > 0
        for labeler, row in workload["labelers"].items():
            assert row["ns_per_node"] > 0, labeler
        # Table-derived facts are reported for automaton rows only.
        assert "hit_rate" not in workload["labelers"]["dp"]
        for labeler in ("automaton_cold", "automaton_warm", "automaton_eager"):
            assert 0.0 <= workload["labelers"][labeler]["hit_rate"] <= 1.0
        warm = workload["labelers"]["automaton_warm"]
        assert warm["hit_rate"] == 1.0
        assert warm["table_misses"] == 0
        # The offline automaton never constructs a state at labeling time.
        eager = workload["labelers"]["automaton_eager"]
        assert eager["table_misses"] == 0
        assert eager["states_created"] == 0
        eager_build = workload["automaton"]["eager"]
        assert eager_build["transitions"] >= workload["automaton"]["transitions"]
        assert eager_build["skipped"] == []
        assert workload["speedup_warm_vs_dp"] > 0
        assert workload["speedup_eager_vs_dp"] > 0

    # Pipeline rows: all four labeler configurations, per-phase timings
    # that add up, and verified cover costs.
    pipeline_names = [workload["name"] for workload in loaded["pipeline"]]
    assert pipeline_names == [
        "random_trees", "reduce_heavy", "dag_reduce", "dynamic_constraints",
        "recurring_stream",
    ]
    for workload in loaded["pipeline"]:
        assert workload["nodes"] > 0 and workload["roots"] > 0
        assert workload["cover_cost"] > 0
        assert set(workload["labelers"]) == {
            "dp", "automaton_cold", "automaton_warm", "automaton_eager",
        }
        for labeler, row in workload["labelers"].items():
            assert row["ns_per_node"] > 0, labeler
            assert row["reductions"] > 0, labeler
            assert row["ns_per_node"] == pytest.approx(
                row["label_ns_per_node"] + row["reduce_ns_per_node"]
            ), labeler
            assert 0.0 <= row["reduce_fraction"] <= 1.0
            assert row["tapes_compiled"] >= 0 and row["tape_cache_hits"] >= 0
        assert workload["speedup_warm_vs_dp"] > 0
        assert workload["speedup_eager_vs_dp"] > 0
        # The tape-vs-frame emitter comparison rides on every workload.
        emitters = workload["emitters"]
        assert emitters["tape"]["reduce_ns_per_node"] > 0
        assert emitters["reducer"]["reduce_ns_per_node"] > 0
        assert emitters["emit_speedup_tape_vs_reducer"] > 0
        assert emitters["reducer"]["tapes_compiled"] == 0
        assert emitters["reducer"]["tape_cache_hits"] == 0
    # The DAG-sharing family actually exercises the reducer's memo.
    dag_reduce = next(w for w in loaded["pipeline"] if w["name"] == "dag_reduce")
    assert dag_reduce["labelers"]["automaton_warm"]["memo_hits"] > 0
    # The JIT-style stream re-emits recurring shapes from cached tapes.
    stream = next(w for w in loaded["pipeline"] if w["name"] == "recurring_stream")
    assert stream["emitters"]["tape"]["tape_cache_hits"] > 0

    # Ahead-of-time selector rows: load-from-disk cold start must beat
    # the in-process eager build, with zero misses on first contact.
    aot_names = [workload["name"] for workload in loaded["selector_aot"]]
    assert aot_names == ["random_trees", "recurring_stream"]
    for workload in loaded["selector_aot"]:
        assert workload["nodes"] > 0
        assert workload["artifact"]["bytes"] > 0
        assert workload["build_ns"] > 0 and workload["load_ns"] > 0
        assert workload["save_ns"] > 0
        assert workload["load_beats_build"], (
            f"load {workload['load_ns']} ns should beat eager build "
            f"{workload['build_ns']} ns"
        )
        assert workload["first_contact_misses"] == 0
        labelers = workload["labelers"]
        assert set(labelers) == {
            "selector_aot", "inprocess_eager", "inprocess_ondemand", "aot_warm",
        }
        for config_name in ("selector_aot", "inprocess_eager", "inprocess_ondemand"):
            row = labelers[config_name]
            assert row["cold_total_ns"] == row["startup_ns"] + row["select_ns"]
            assert row["ns_per_node"] > 0
        assert labelers["selector_aot"]["startup_ns"] == workload["load_ns"]
        assert labelers["inprocess_eager"]["startup_ns"] == workload["build_ns"]
        assert (
            labelers["selector_aot"]["cold_total_ns"]
            < labelers["inprocess_eager"]["cold_total_ns"]
        )
        assert labelers["aot_warm"]["ns_per_node"] > 0

    # Grammar-size sweep: eager tables dominate on-demand tables and
    # first contact over eager tables is pure hits.
    assert loaded["sweep"], "sweep section missing"
    for point in loaded["sweep"]:
        assert point["eager"]["transitions"] >= point["ondemand"]["transitions"]
        assert point["eager_first_contact_misses"] == 0
        assert point["table_ratio"] >= 1.0
        assert not point["eager"]["capped"]


def test_bench_main_smoke(tmp_path, capsys):
    from repro.bench.__main__ import main

    out = tmp_path / "bench.json"
    assert main(["--smoke", "--seed", "5", "--out", str(out)]) == 0
    assert json.loads(out.read_text())["workloads"]
    printed = capsys.readouterr().out
    assert "selection labeling benchmark" in printed
    assert "selection pipeline benchmark" in printed
    assert "ahead-of-time selector cold start" in printed
    assert "report written" in printed


def test_bench_main_uses_matching_selector_artifact(tmp_path, capsys):
    """A CLI-compiled artifact with a matching fingerprint feeds the
    selector_aot loads; a mismatched one is ignored gracefully."""
    from repro.bench.__main__ import main
    from repro.selection.selector import main as selector_main

    artifact = tmp_path / "bench.rsel"
    assert selector_main(
        ["compile", "repro.bench.workloads:bench_grammar", str(artifact)]
    ) == 0
    capsys.readouterr()

    out = tmp_path / "bench.json"
    config_args = ["--smoke", "--seed", "5", "--out", str(out)]
    assert main(config_args + ["--selector-artifact", str(artifact)]) == 0
    report = json.loads(out.read_text())
    for workload in report["selector_aot"]:
        assert workload["artifact"]["from_cli"] is True
        assert workload["artifact"]["path"] == str(artifact)
    assert "CLI artifact" in capsys.readouterr().out

    mismatched = tmp_path / "dyn.rsel"
    assert selector_main(
        ["compile", "repro.bench.workloads:dynamic_bench_grammar", str(mismatched)]
    ) == 0
    capsys.readouterr()
    assert main(config_args + ["--selector-artifact", str(mismatched)]) == 0
    report = json.loads(out.read_text())
    for workload in report["selector_aot"]:
        assert workload["artifact"]["from_cli"] is False


# ----------------------------------------------------------------------
# The acceptance claim: warm automaton labels a recurring-shape stream
# >= 3x faster per node than DP on the same forests.


def _best_label_seconds(label_forest, forests, repetitions=3) -> float:
    best = float("inf")
    for _ in range(repetitions):
        started = time.perf_counter()
        for forest in forests:
            label_forest(forest)
        best = min(best, time.perf_counter() - started)
    return best


def test_warm_automaton_at_least_3x_faster_than_dp_on_recurring_stream():
    grammar = bench_grammar()
    stream = recurring_shape_stream(31, shapes=5, length=30, statements=8, max_depth=5)
    automaton = OnDemandAutomaton(grammar)
    for forest in stream:
        automaton.label(forest)  # prewarm tables

    # Deterministic half of the claim first: per-node unit work.
    dp_metrics, warm_metrics = LabelMetrics(), LabelMetrics()
    for forest in stream:
        label_dp(grammar, forest, dp_metrics)
        automaton.label(forest, warm_metrics)
    assert warm_metrics.table_misses == 0
    work_ratio = dp_metrics.operations() / warm_metrics.operations()
    assert work_ratio >= 3.0, f"warm automaton does only {work_ratio:.2f}x less unit work"

    # Wall-clock half, retried to ride out scheduler noise on shared CI
    # runners (typical local margin is ~5x).
    speedup = 0.0
    for _ in range(3):
        warm_seconds = _best_label_seconds(automaton.label, stream)
        dp_seconds = _best_label_seconds(lambda forest: label_dp(grammar, forest), stream)
        speedup = max(speedup, dp_seconds / warm_seconds)
        if speedup >= 3.0:
            break
    assert speedup >= 3.0, f"warm automaton only {speedup:.2f}x faster than DP"


def test_workload_sampling_is_seeded_module_rng_free():
    """Generators must not touch the global random module state."""
    random.seed(1234)
    before = random.random()
    random.seed(1234)
    random_forests(7, forests=2, statements=4, max_depth=3)
    recurring_shape_stream(7, shapes=2, length=2, statements=3, max_depth=3)
    after = random.random()
    assert before == after


# ----------------------------------------------------------------------
# Regression gates


def test_emit_phase_regression_gate_is_dual_condition():
    from repro.bench.__main__ import _gate_emit_rows

    def row(
        emit: float, dp_emit: float, name: str = "reduce_heavy", hits: int = 5
    ) -> dict:
        return {
            "name": name,
            "labelers": {
                "automaton_warm": {
                    "reduce_ns_per_node": emit,
                    "tapes_compiled": 0,
                    "tape_cache_hits": hits,
                },
                "dp": {"reduce_ns_per_node": dp_emit},
            },
        }

    base = [row(1000.0, 2000.0)]
    # Absolute AND dp-normalized emit cost regressed: the gate fires.
    failures = _gate_emit_rows([row(2000.0, 2000.0)], base, 0.1)
    assert failures and "warm emit" in failures[0]
    # A uniformly slower machine shifts both engines equally - the
    # dp-normalized ratio is unchanged, so the gate stays quiet.
    assert not _gate_emit_rows([row(2000.0, 4000.0)], base, 0.1)
    # Within the regression budget: quiet.
    assert not _gate_emit_rows([row(1050.0, 2000.0)], base, 0.1)
    # Workloads absent from the baseline (new families) are skipped.
    assert not _gate_emit_rows([row(9999.0, 2000.0, name="brand_new")], base, 0.1)
    # Rows without tape activity run the frame engine (dynamic-rule
    # grammars route away from the tape compiler) - not this gate's
    # claim, so even a large emit swing stays quiet.
    assert not _gate_emit_rows([row(9999.0, 2000.0, hits=0)], base, 0.1)


def test_check_baseline_includes_emit_gate(tmp_path):
    from repro.bench.__main__ import check_baseline

    def pipeline_row(warm_total: float, warm_emit: float) -> dict:
        return {
            "name": "reduce_heavy",
            "labelers": {
                "automaton_warm": {
                    "ns_per_node": warm_total,
                    "reduce_ns_per_node": warm_emit,
                    "tapes_compiled": 0,
                    "tape_cache_hits": 5,
                },
                "dp": {"ns_per_node": 4000.0, "reduce_ns_per_node": 2000.0},
            },
        }

    baseline = {"workloads": [], "pipeline": [pipeline_row(2000.0, 1000.0)]}
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps(baseline))

    # Total pipeline time held, but the emit phase alone regressed 3x:
    # only the emit gate can catch this.
    report = {"workloads": [], "pipeline": [pipeline_row(2000.0, 3000.0)]}
    failures = check_baseline(report, path, max_regression=0.5, max_pipeline_regression=0.1)
    assert len(failures) == 1 and "warm emit" in failures[0]

    clean = {"workloads": [], "pipeline": [pipeline_row(2000.0, 1000.0)]}
    assert check_baseline(clean, path, 0.5, 0.1) == []
