"""Deep-input regressions: the iterative reducer cannot RecursionError.

Mirrors the fused-walk labeling tests: a ~50k-deep chain tree and a
chain-rule ladder longer than the interpreter's recursion limit both
reduce fine on the explicit-stack engine (the recursive engine died on
either).
"""

from __future__ import annotations

import sys

from repro.grammar import Grammar, parse_grammar
from repro.ir import Forest, NodeBuilder
from repro.selection import OnDemandAutomaton, Reducer, extract_cover, label_dp, select

DEEP_TEXT = """
%grammar deep
%start stmt
stmt: EXPR(reg) (0)
reg:  REG       (0)
reg:  NEG(reg)  (1)
reg:  ADD(reg, con) (1)
con:  CNST      (0)
"""


def _deep_forest(depth: int) -> Forest:
    builder = NodeBuilder()
    value = builder.reg(0)
    for i in range(depth):
        if i % 3 == 0:
            value = builder.add(value, builder.cnst(i % 16))
        else:
            value = builder.neg(value)
    return Forest([builder.expr(value)], name=f"deep-{depth}")


def test_reduce_50k_deep_chain_tree_without_recursion_error():
    depth = 50_000
    assert depth > sys.getrecursionlimit()
    grammar = parse_grammar(DEEP_TEXT)
    forest = _deep_forest(depth)

    emitted = []
    for rule in grammar.rules:
        if not rule.is_chain:
            rule.action = (
                lambda symbol: lambda ctx, node, operands: emitted.append(symbol) or symbol
            )(rule.pattern.symbol)

    labeling = OnDemandAutomaton(grammar).label(forest)
    reducer = Reducer(labeling)
    values = reducer.reduce_forest(forest)
    assert values == ["EXPR"]
    assert reducer.reductions == forest.node_count()
    assert len(emitted) == forest.node_count()
    # The full pipeline (label + reduce + cover extraction) survives too.
    result = select(forest, grammar, labeler="dp")
    assert result.report.reductions == forest.node_count()
    assert result.report.cover_cost == extract_cover(labeling, forest).total_cost()


def test_reduce_long_chain_rule_sequence_without_recursion_error():
    """A chain-rule ladder longer than the recursion limit: reducing the
    start nonterminal walks every chain rule at one node iteratively."""
    length = sys.getrecursionlimit() + 200
    grammar = Grammar(name="ladder", start=f"n{length}")
    grammar.op_rule("n0", "REG", [], 0)
    for i in range(length):
        grammar.chain(f"n{i + 1}", f"n{i}", 1)

    builder = NodeBuilder()
    forest = Forest([builder.reg(1)])
    applied = []
    for rule in grammar.rules:
        rule.action = (lambda lhs: lambda ctx, node, operands: applied.append(lhs) or lhs)(
            rule.lhs
        )

    labeling = label_dp(grammar, forest)
    reducer = Reducer(labeling)
    [value] = reducer.reduce_forest(forest)
    assert value == f"n{length}"
    # Bottom-up application order: the base rule first, the start last.
    assert applied[0] == "n0" and applied[-1] == f"n{length}"
    assert reducer.reductions == length + 1
    # extract_cover walks the same ladder iteratively.
    cover = extract_cover(labeling, forest)
    assert cover.total_cost() == length
