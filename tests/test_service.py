"""Tests for the supervised selection service and its building blocks.

Layered like the package: :class:`RequestBudget` deadline arithmetic
and cooperative cancellation inside the selection hot loops first, the
:class:`CircuitBreaker` state machine next, then the full
:class:`SelectionService` — including the chaos contracts (a SIGKILLed
worker's in-flight requests are transparently re-dispatched, a
crash-looping poison pill fails typed instead of wedging the pool) and
the cross-process artifact-cache compile-on-miss race the workers rely
on for one-build-many-loads amortization.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from pathlib import Path

import pytest

from conftest import build_flat_forest
from repro.bench.workloads import bench_grammar, random_forests
from repro.errors import (
    ArtifactCorruptError,
    ArtifactIOError,
    CircuitOpenError,
    DeadlineExceededError,
    OverloadError,
    RequestLostError,
    ServiceError,
)
from repro.selection import Selector
from repro.selection.resilience import ArtifactCache, SelectionFailure
from repro.service import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    RequestBudget,
    SelectionService,
    ServiceConfig,
)
from repro.testing import poison_action


def _stmt_rule(grammar):
    """The ``stmt: EXPR(reg)`` rule — every expr statement reduces it."""
    return next(
        r for r in grammar.rules if r.lhs == "stmt" and r.pattern.symbol == "EXPR"
    )


def _forests(seed: int = 11, n: int = 4):
    return random_forests(seed, forests=n, statements=4, max_depth=3)


# ----------------------------------------------------------------------
# RequestBudget


def test_request_budget_start_pins_an_absolute_deadline():
    budget = RequestBudget.start(5.0, max_states=7)
    assert budget.max_states == 7
    assert not budget.expired()
    remaining = budget.remaining_ns()
    assert 4.0e9 < remaining <= 5.0e9
    budget.check("label")  # must not raise
    # The deadline is pinned: remaining shrinks monotonically.
    assert budget.remaining_ns() <= remaining


def test_request_budget_without_deadline_never_expires():
    budget = RequestBudget.until(None)
    assert budget.deadline_at_ns is None
    assert budget.remaining_ns() is None
    assert not budget.expired()
    budget.check("reduce")
    build = budget.build_budget()
    assert build.deadline_ns is None


def test_request_budget_expired_check_raises():
    budget = RequestBudget.until(time.monotonic_ns() - 1)
    assert budget.expired()
    assert budget.remaining_ns() == 0
    with pytest.raises(DeadlineExceededError, match="during reduce"):
        budget.check("reduce")


def test_request_budget_build_budget_carries_remaining_clock():
    budget = RequestBudget.start(10.0, max_states=3)
    build = budget.build_budget()
    assert build.max_states == 3
    assert build.deadline_ns is not None
    assert 9.0e9 < build.deadline_ns <= 10.0e9


# ----------------------------------------------------------------------
# CircuitBreaker


def test_breaker_opens_after_consecutive_failures_only():
    breaker = CircuitBreaker("t", failure_threshold=3, cooldown_s=60.0)
    now = time.monotonic_ns()
    breaker.record_failure(now)
    breaker.record_failure(now)
    breaker.record_success()  # a success resets the streak
    breaker.record_failure(now)
    breaker.record_failure(now)
    assert breaker.state == CLOSED and breaker.allows(now)
    breaker.record_failure(now)
    assert breaker.state == OPEN
    assert not breaker.allows(now)
    assert ("t", CLOSED, OPEN) in breaker.transitions


def test_breaker_half_open_probe_recovers():
    breaker = CircuitBreaker("t", failure_threshold=1, cooldown_s=0.01)
    now = time.monotonic_ns()
    breaker.record_failure(now)
    assert breaker.state == OPEN
    later = now + int(0.02 * 1e9)
    assert breaker.allows(later)  # cooldown elapsed: half-open probe
    assert breaker.state == HALF_OPEN
    breaker.mark_dispatched()
    assert not breaker.allows(later)  # one probe at a time
    breaker.record_success()
    assert breaker.state == CLOSED
    states = [(frm, to) for _, frm, to in breaker.transitions]
    assert states == [(CLOSED, OPEN), (OPEN, HALF_OPEN), (HALF_OPEN, CLOSED)]


def test_breaker_half_open_probe_failure_reopens():
    breaker = CircuitBreaker("t", failure_threshold=1, cooldown_s=0.01)
    now = time.monotonic_ns()
    breaker.record_failure(now)
    later = now + int(0.02 * 1e9)
    assert breaker.allows(later)
    breaker.mark_dispatched()
    breaker.record_failure(later)
    assert breaker.state == OPEN
    assert not breaker.allows(later)


# ----------------------------------------------------------------------
# Deadlines inside the selection pipeline (satellite: inner-loop checks)


def test_select_many_expired_budget_raises_and_counts():
    selector = Selector(bench_grammar(), mode="eager")
    budget = RequestBudget.until(time.monotonic_ns() - 1)
    with pytest.raises(DeadlineExceededError):
        selector.select_many(_forests(n=1), budget=budget)
    assert selector.stats()["resilience"]["deadline_overruns"] == 1


def test_isolate_does_not_absorb_deadline_errors():
    # A deadline is a whole-batch verdict, not a per-forest fault:
    # on_error="isolate" must re-raise it, never convert it into
    # SelectionFailure rows.
    selector = Selector(bench_grammar(), mode="eager")
    budget = RequestBudget.until(time.monotonic_ns() - 1)
    with pytest.raises(DeadlineExceededError):
        selector.select_many(_forests(n=2), on_error="isolate", budget=budget)


def test_generous_budget_changes_nothing():
    selector = Selector(bench_grammar(), mode="eager")
    forests = _forests(n=2)
    budgeted = selector.select_many(forests, budget=RequestBudget.start(30.0))
    plain = selector.select_many(forests)
    assert budgeted.values == plain.values
    assert selector.stats()["resilience"]["deadline_overruns"] == 0


def test_eager_build_deadline_fires_inside_the_fixed_point():
    # deadline_ns=0 must stop construction almost immediately — the
    # check lives inside _eager_fill's per-state loops, not only at
    # operator boundaries.
    selector = Selector(bench_grammar(), mode="ondemand")
    build = selector.engine.build_eager(deadline_ns=0)
    assert build["deadline_exceeded"] is True
    # Partial tables stay usable on demand.
    result = selector.select_many(_forests(n=1))
    assert result.ok


# ----------------------------------------------------------------------
# Satellite: single-forest select() shares the isolate contract


def test_single_select_isolate_returns_failure_not_raise():
    grammar = bench_grammar()
    fault, _restore = poison_action(_stmt_rule(grammar), on_call=1, sticky=True)
    selector = Selector(grammar, mode="eager")
    result = selector.select(build_flat_forest(), on_error="isolate")
    assert not result.ok
    [failure] = result.failures
    assert isinstance(failure, SelectionFailure)
    assert failure.phase == "reduce"
    assert fault.faults >= 1


def test_single_select_isolate_on_healthy_forest_is_ok():
    selector = Selector(bench_grammar(), mode="eager")
    result = selector.select(build_flat_forest(), on_error="isolate")
    assert result.ok and result.failures == []


# ----------------------------------------------------------------------
# SelectionService end to end


def _config(**overrides) -> ServiceConfig:
    base = dict(
        workers=1,
        seed=7,
        restart_backoff_base_s=0.01,
        restart_backoff_max_s=0.05,
        heartbeat_interval_s=0.1,
    )
    base.update(overrides)
    return ServiceConfig(**base)


def test_service_serves_batches_and_reports_stats(tmp_path):
    with SelectionService({"bench": bench_grammar()}, tmp_path, _config()) as svc:
        forests = _forests(n=6)
        responses = [f.result(15.0) for f in [svc.submit("bench", x) for x in forests]]
        assert all(r.ok for r in responses)
        assert all(r.latency_ns > 0 for r in responses)
        stats = svc.stats()
        service = stats["service"]
        assert service["submitted"] == 6
        assert service["completed_ok"] == 6
        assert service["outstanding"] == 0
        assert service["batches"] >= 1
        assert service["batched_requests"] == 6
        assert service["per_tenant"]["bench"]["ok"] == 6
        assert service["loop_errors"] == []
        # Worker resilience counters surface through the merged view.
        assert stats["resilience"]["service"] is service
        [worker] = stats["workers"]
        assert worker["alive"] and worker["completed"] >= 1


def test_service_rejects_unknown_tenants_and_stopped_submits(tmp_path):
    svc = SelectionService({"bench": bench_grammar()}, tmp_path, _config()).start()
    try:
        with pytest.raises(ServiceError, match="unknown tenant"):
            svc.submit("nope", build_flat_forest())
    finally:
        svc.stop()
    with pytest.raises(ServiceError, match="not running"):
        svc.submit("bench", build_flat_forest())


def test_service_sheds_on_a_full_admission_queue(tmp_path):
    with SelectionService(
        {"bench": bench_grammar()}, tmp_path, _config(queue_limit=0)
    ) as svc:
        response = svc.select("bench", build_flat_forest(), wait_s=5.0)
        assert response.status == "shed"
        assert isinstance(response.error, OverloadError)
        service = svc.stats()["service"]
        assert service["shed"] == 1
        assert service["per_tenant"]["bench"]["shed"] == 1


def test_service_expires_requests_typed(tmp_path):
    with SelectionService({"bench": bench_grammar()}, tmp_path, _config()) as svc:
        response = svc.select(
            "bench", build_flat_forest(), timeout_s=0.0, wait_s=10.0
        )
        assert response.status == "deadline"
        assert isinstance(response.error, DeadlineExceededError)
        assert svc.stats()["service"]["deadline_failures"] == 1


def test_service_retries_a_transient_fault(tmp_path):
    grammar = bench_grammar()
    # The first action invocation in the worker faults; the retry heals.
    poison_action(_stmt_rule(grammar), on_call=1, max_faults=1)
    with SelectionService({"bench": grammar}, tmp_path, _config(retries=2)) as svc:
        response = svc.select("bench", build_flat_forest(), wait_s=20.0)
        assert response.ok
        assert response.attempts == 1
        service = svc.stats()["service"]
        assert service["retries"] == 1
        assert service["per_tenant"]["bench"]["retries"] == 1


def test_service_breaker_opens_fast_fails_then_recovers(tmp_path):
    grammar = bench_grammar()
    # Two faults, then healed: enough to open a threshold-2 breaker,
    # and the half-open probe after cooldown finds the tenant healthy.
    poison_action(_stmt_rule(grammar), on_call=1, sticky=True, max_faults=2)
    config = _config(retries=0, breaker_threshold=2, breaker_cooldown_s=0.3)
    with SelectionService({"bench": grammar}, tmp_path, config) as svc:
        first = svc.select("bench", build_flat_forest(), wait_s=20.0)
        second = svc.select("bench", build_flat_forest(), wait_s=20.0)
        assert first.status == "failure" and second.status == "failure"
        assert isinstance(first.error, SelectionFailure)

        fast = svc.select("bench", build_flat_forest(), wait_s=5.0)
        assert fast.status == "circuit_open"
        assert isinstance(fast.error, CircuitOpenError)

        time.sleep(0.35)  # cooldown: next request is the half-open probe
        probe = svc.select("bench", build_flat_forest(), wait_s=20.0)
        assert probe.ok

        service = svc.stats()["service"]
        assert service["breaker_fastfail"] == 1
        assert service["breakers"]["bench"]["state"] == CLOSED
        states = [(frm, to) for _, frm, to in service["breaker_transitions"]]
        assert states == [(CLOSED, OPEN), (OPEN, HALF_OPEN), (HALF_OPEN, CLOSED)]


def test_service_redispatches_after_worker_kill_zero_loss(tmp_path):
    grammar = bench_grammar()
    # ~0.15 s per action call keeps the batch in flight long enough to
    # murder its worker mid-run.
    poison_action(_stmt_rule(grammar), latency_s=0.15)
    with SelectionService({"bench": grammar}, tmp_path, _config(workers=2)) as svc:
        futures = [svc.submit("bench", f) for f in _forests(n=4)]
        victim = None
        deadline = time.monotonic() + 5.0
        while victim is None and time.monotonic() < deadline:
            victim = next(
                (h for h in svc.supervisor.handles if h.alive and h.in_flight), None
            )
            time.sleep(0.005)
        assert victim is not None, "no batch went in flight"
        assert svc.supervisor.kill_worker(victim)

        responses = [f.result(30.0) for f in futures]
        assert all(r.ok for r in responses), [r.as_row() for r in responses]
        assert any(r.re_dispatches >= 1 for r in responses)
        service = svc.stats()["service"]
        assert service["re_dispatches"] >= 1
        assert service["supervisor"]["restarts_total"] >= 1
        assert service["supervisor"]["kills_total"] == 1
        assert service["loop_errors"] == []


def _exit_violently(context, node, operands):
    """A worker-killing action: models a native-extension segfault."""
    os._exit(23)


def test_service_poison_pill_fails_typed_not_forever(tmp_path):
    grammar = bench_grammar()
    rule = _stmt_rule(grammar)
    rule.action = _exit_violently
    config = _config(retries=0, max_redispatches=1)
    with SelectionService({"bench": grammar}, tmp_path, config) as svc:
        response = svc.select("bench", build_flat_forest(), wait_s=30.0)
        assert response.status == "failure"
        assert isinstance(response.error, RequestLostError)
        assert response.re_dispatches == 2  # initial + 1 allowed re-dispatch
        service = svc.stats()["service"]
        assert service["poison_pills"] == 1
        assert service["supervisor"]["restarts_total"] >= 1
        # The pool recovers: the slot restarts and the service lives on.
        assert svc.drain(10.0)


def test_service_soak_mixed_tenants_with_kill_zero_lost(tmp_path):
    """Seeded short soak: sustained mixed-tenant traffic, one worker
    SIGKILLed mid-run — every request resolves ok or typed (CI job)."""
    slow = bench_grammar()
    poison_action(_stmt_rule(slow), latency_s=0.02)
    tenants = {"bench": bench_grammar(), "slow": slow}
    with SelectionService(tenants, tmp_path, _config(workers=2, seed=1234)) as svc:
        forests = _forests(seed=1234, n=8)
        futures = []
        for i in range(36):
            tenant = "slow" if i % 3 == 0 else "bench"
            futures.append(svc.submit(tenant, forests[i % len(forests)]))
            if i == 12:
                victim = next(h for h in svc.supervisor.handles if h.alive)
                svc.supervisor.kill_worker(victim)
            time.sleep(0.002)
        responses = [f.result(60.0) for f in futures]
        # Zero lost: every request resolved, successes or typed failures.
        assert len(responses) == 36
        assert all(r.response is not None for r in (f._request for f in futures))
        assert all(r.ok for r in responses), [
            r.as_row() for r in responses if not r.ok
        ]
        service = svc.stats()["service"]
        assert service["outstanding"] == 0
        assert service["supervisor"]["kills_total"] == 1
        assert service["supervisor"]["restarts_total"] >= 1
        assert service["loop_errors"] == []


# ----------------------------------------------------------------------
# Satellite: cross-process ArtifactCache compile-on-miss race


def _race_writer(barrier, cache_dir, queue):
    grammar = bench_grammar()
    cache = ArtifactCache(cache_dir, base_delay=0.001, seed=0)
    barrier.wait()
    try:
        selector = cache.selector_for(grammar)
        result = selector.select_many(_forests(seed=5, n=1))
        queue.put(("ok", bool(result.values), cache.stats()["compiles"]))
    except BaseException as exc:  # noqa: BLE001 - report, don't hang join
        queue.put(("err", f"{type(exc).__name__}: {exc}", 0))


def _race_reader(barrier, cache_dir, queue, timeout_s=20.0):
    grammar = bench_grammar()
    path = ArtifactCache(cache_dir).path_for(grammar)
    barrier.wait()
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            Selector.load(path, grammar)
        except (FileNotFoundError, ArtifactIOError):
            time.sleep(0.001)  # not published yet: keep polling
        except ArtifactCorruptError as exc:
            queue.put(("corrupt", str(exc), 0))  # a torn publish — the bug
            return
        else:
            queue.put(("loaded", True, 0))
            return
    queue.put(("timeout", False, 0))


def test_artifact_cache_cross_process_race_single_winner(tmp_path):
    """N processes compile-on-miss the same fingerprint concurrently:
    exactly one artifact wins, no torn file is ever observable."""
    ctx = multiprocessing.get_context("fork")
    barrier = ctx.Barrier(5)
    queue = ctx.Queue()
    workers = [
        ctx.Process(target=_race_writer, args=(barrier, str(tmp_path), queue))
        for _ in range(4)
    ] + [ctx.Process(target=_race_reader, args=(barrier, str(tmp_path), queue))]
    for p in workers:
        p.start()
    outcomes = [queue.get(timeout=60.0) for _ in workers]
    for p in workers:
        p.join(timeout=10.0)
        assert p.exitcode == 0

    kinds = sorted(kind for kind, _, _ in outcomes)
    assert kinds == ["loaded"] + ["ok"] * 4, outcomes
    # Every concurrent compiler served selections.
    assert all(detail for kind, detail, _ in outcomes if kind == "ok")

    artifacts = sorted(p.name for p in tmp_path.iterdir())
    rsel = [name for name in artifacts if name.endswith(".rsel")]
    assert len(rsel) == 1, artifacts  # one fingerprint, one winner
    assert not [n for n in artifacts if ".tmp." in n], artifacts  # no torn temps
    assert not [n for n in artifacts if n.endswith(".bad")], artifacts
    # The survivor round-trips cleanly.
    grammar = bench_grammar()
    loaded = Selector.load(Path(tmp_path) / rsel[0], grammar)
    assert loaded.select_many(_forests(seed=5, n=1)).ok
