"""LabelMetrics derived properties, merge/copy semantics."""

from __future__ import annotations

from repro.metrics import LabelMetrics


def test_hit_rate_and_warm_fraction_are_zero_without_work():
    metrics = LabelMetrics()
    assert metrics.hit_rate == 0.0
    assert metrics.warm_fraction == 0.0


def test_hit_rate_reflects_lookup_misses():
    metrics = LabelMetrics(table_lookups=10, table_misses=3)
    assert metrics.hit_rate == 0.7
    all_hits = LabelMetrics(table_lookups=5, table_misses=0)
    assert all_hits.hit_rate == 1.0
    all_misses = LabelMetrics(table_lookups=4, table_misses=4)
    assert all_misses.hit_rate == 0.0


def test_warm_fraction_reflects_constructions_per_node():
    metrics = LabelMetrics(nodes_labeled=20, table_lookups=20, table_misses=5)
    assert metrics.warm_fraction == 0.75
    # A dynamic-signature run may construct more states than it labels
    # nodes; the fraction saturates at zero instead of going negative.
    weird = LabelMetrics(nodes_labeled=2, table_lookups=8, table_misses=6)
    assert weird.warm_fraction == 0.0


def test_merge_accumulates_every_counter_and_derived_properties_follow():
    a = LabelMetrics(nodes_labeled=4, table_lookups=4, table_misses=2, rule_checks=7)
    b = LabelMetrics(nodes_labeled=6, table_lookups=6, table_misses=0, chain_checks=3)
    b.extra["x"] = 1.5
    result = a.merge(b)
    assert result is a
    assert a.nodes_labeled == 10
    assert a.table_lookups == 10
    assert a.table_misses == 2
    assert a.rule_checks == 7 and a.chain_checks == 3
    assert a.extra == {"x": 1.5}
    assert a.hit_rate == 0.8
    assert a.warm_fraction == 0.8


def test_copy_is_independent_of_the_original():
    original = LabelMetrics(nodes_labeled=3, table_lookups=3, table_misses=1, seconds=0.5)
    original.extra["y"] = 2.0
    clone = original.copy()
    assert clone is not original
    assert clone.as_row() == original.as_row()
    assert clone.hit_rate == original.hit_rate

    clone.table_misses += 2
    clone.extra["y"] = 9.0
    assert original.table_misses == 1
    assert original.extra == {"y": 2.0}


def test_as_row_includes_hit_rate():
    metrics = LabelMetrics(table_lookups=8, table_misses=2)
    row = metrics.as_row()
    assert row["hit rate"] == 0.75
