"""Normalisation: structure and cover-cost preservation."""

from __future__ import annotations

from repro.grammar import normalize
from repro.selection import extract_cover, label_dp


def test_normalize_demo_structure(demo_grammar):
    result = normalize(demo_grammar)
    normalized = result.grammar
    assert not demo_grammar.is_normal_form
    assert normalized.is_normal_form
    # The add-to-memory rule has two inner operator nodes (ADD, LOAD).
    assert result.helpers_introduced == 2
    # Every original rule has a designated top rule carrying its cost.
    for rule in demo_grammar.rules:
        top = result.top_rule_of[rule.number]
        assert top.lhs == rule.lhs
        assert top.cost == rule.cost
        assert top.original is rule
    assert normalized.start == demo_grammar.start


def test_normalize_preserves_cover_costs(demo_grammar, benchmark_forests):
    normalized = normalize(demo_grammar).grammar
    for forest in benchmark_forests:
        original_cover = extract_cover(label_dp(demo_grammar, forest), forest)
        normalized_cover = extract_cover(label_dp(normalized, forest), forest)
        assert original_cover.total_cost() == normalized_cover.total_cost(), forest.name


def test_normalized_cover_maps_back_to_user_rules(demo_grammar, benchmark_forests):
    normalized = normalize(demo_grammar).grammar
    user_rules = set(map(id, demo_grammar.rules))
    for forest in benchmark_forests:
        cover = extract_cover(label_dp(normalized, forest), forest)
        for rule in cover.original_rules_used():
            assert id(rule) in user_rules
