"""Fused single-pass labeling, batched label_many, and the eager mode.

The optimisations must be observationally invisible: everything here
cross-checks fused/batched/eager labeling against the DP baseline (the
behavior of the two-pass seed implementation) on tree and DAG forests,
randomized over the benchmark generators, including a grammar extension
landing between batches on a live automaton.
"""

from __future__ import annotations

import pytest

from repro.bench import (
    bench_grammar,
    dag_heavy_forests,
    dynamic_bench_grammar,
    dynamic_constraint_forests,
    random_forests,
    recurring_shape_stream,
)
from repro.ir import Forest, NodeBuilder
from repro.ir.traversal import ready_postorder
from repro.metrics import LabelMetrics
from repro.selection import DPLabeler, OnDemandAutomaton, extract_cover, label_dp


def _mixed_forests(seed: int) -> list[Forest]:
    return (
        random_forests(seed, forests=2, statements=6, max_depth=5)
        + dag_heavy_forests(seed + 100, forests=2, statements=6, shared=4)
        + recurring_shape_stream(seed + 200, shapes=2, length=3, statements=4, max_depth=4)
    )


# ----------------------------------------------------------------------
# ready_postorder (the fused walk primitive)


def test_ready_postorder_yields_children_first_each_node_once():
    b = NodeBuilder()
    shared = b.add(b.reg(1), b.cnst(4))
    roots = [b.expr(b.load(shared)), b.store(shared, b.reg(2))]
    done: dict[int, int] = {}
    seen: list[int] = []
    for node in ready_postorder(roots, done):
        for kid in node.kids:
            assert id(kid) in done, "child yielded after parent"
        done[id(node)] = 1  # the caller-marks-done contract
        seen.append(id(node))
    assert len(seen) == len(set(seen))
    assert len(seen) == Forest(roots).node_count()


def test_ready_postorder_skips_predone_subtrees():
    b = NodeBuilder()
    shared = b.add(b.reg(1), b.cnst(4))
    first = b.expr(shared)
    second = b.expr(b.neg(shared))
    done: dict[int, int] = {}
    for node in ready_postorder([first], done):
        done[id(node)] = 1
    before = len(done)
    fresh = []
    for node in ready_postorder([second], done):
        done[id(node)] = 1
        fresh.append(node)
    # Only the new root and the NEG node are labeled; the shared subtree
    # (and everything below it) is answered from the existing map.
    assert {node.op.name for node in fresh} == {"EXPR", "NEG"}
    assert len(done) == before + 2


def test_fused_walk_handles_deep_trees_iteratively():
    b = NodeBuilder()
    value = b.reg(0)
    for i in range(5000):
        value = b.add(value, b.cnst(i % 7))
    forest = Forest([b.expr(value)])
    grammar = bench_grammar()
    automaton = OnDemandAutomaton(grammar)
    auto_cost = extract_cover(automaton.label(forest), forest).total_cost()
    dp_cost = extract_cover(label_dp(grammar, forest), forest).total_cost()
    assert auto_cost == dp_cost


# ----------------------------------------------------------------------
# Randomized equivalence: fused single-pass == DP baseline, for plain
# label, label_many, and eager-mode labeling, on trees and DAGs.


@pytest.mark.parametrize("seed", range(5))
def test_randomized_fused_batched_eager_equivalence(seed):
    grammar = bench_grammar()
    forests = _mixed_forests(seed)
    ondemand = OnDemandAutomaton(grammar)
    eager = OnDemandAutomaton(grammar)
    eager.build_eager()
    batched = ondemand.label_many(forests)
    eager_batched = eager.label_many(forests)
    for forest in forests:
        dp_cover = extract_cover(label_dp(grammar, forest), forest)
        for labeling in (ondemand.label(forest), batched, eager_batched):
            cover = extract_cover(labeling, forest)
            assert cover.total_cost() == dp_cover.total_cost(), (seed, forest.name)
            assert len(cover) == len(dp_cover), (seed, forest.name)


@pytest.mark.parametrize("seed", range(3))
def test_randomized_equivalence_on_dynamic_grammar(seed):
    grammar = dynamic_bench_grammar()
    forests = dynamic_constraint_forests(seed, forests=4, statements=8, max_depth=5)
    ondemand = OnDemandAutomaton(grammar)
    eager = OnDemandAutomaton(grammar)
    build = eager.build_eager()
    assert build["skipped"] == []  # constraints are enumerable
    batched = ondemand.label_many(forests)
    eager_batched = eager.label_many(forests)
    for forest in forests:
        dp_cost = extract_cover(label_dp(grammar, forest), forest).total_cost()
        assert extract_cover(batched, forest).total_cost() == dp_cost
        assert extract_cover(eager_batched, forest).total_cost() == dp_cost


# ----------------------------------------------------------------------
# label_many semantics


def test_label_many_labels_cross_forest_shared_nodes_once():
    b = NodeBuilder()
    shared = b.add(b.reg(1), b.cnst(4))  # one subtree, two forests
    first = Forest([b.expr(b.load(shared))], name="first")
    second = Forest([b.store(shared, b.reg(2))], name="second")
    distinct = Forest(list(first) + list(second)).node_count()

    automaton = OnDemandAutomaton(bench_grammar())
    metrics = LabelMetrics()
    labeling = automaton.label_many([first, second], metrics)
    assert metrics.nodes_labeled == distinct
    assert metrics.nodes_labeled < first.node_count() + second.node_count()
    for forest in (first, second):
        dp_cost = extract_cover(label_dp(automaton.source_grammar, forest), forest).total_cost()
        assert extract_cover(labeling, forest).total_cost() == dp_cost


def test_dp_label_many_matches_per_forest_label_dp():
    grammar = bench_grammar()
    forests = _mixed_forests(11)
    labeler = DPLabeler(grammar)
    batched = labeler.label_many(forests)
    for forest in forests:
        single = label_dp(grammar, forest)
        batched_cover = extract_cover(batched, forest)
        single_cover = extract_cover(single, forest)
        assert batched_cover.total_cost() == single_cover.total_cost()
        assert len(batched_cover) == len(single_cover)


def test_grammar_extension_invalidates_mid_batch_stream():
    """A JIT extends the grammar between two label_many batches."""
    grammar = bench_grammar()
    automaton = OnDemandAutomaton(grammar)
    stream = recurring_shape_stream(5, shapes=3, length=8, statements=5, max_depth=4)
    first_half, second_half = stream[:4], stream[4:]

    first = automaton.label_many(first_half)
    pool_before = automaton.pool
    cost_before = sum(
        extract_cover(first, forest).total_cost() for forest in first_half
    )

    grammar.op_rule("reg", "LOAD", ["addr"], 0)  # loads become free mid-stream

    second = automaton.label_many(second_half)
    assert automaton.pool is not pool_before  # tables were invalidated
    for forest in second_half:
        dp_cost = extract_cover(label_dp(grammar, forest), forest).total_cost()
        assert extract_cover(second, forest).total_cost() == dp_cost

    # Relabeling the first half under the extended grammar must agree
    # with DP and get strictly cheaper: the halves share templates, and
    # every stream shape with a LOAD node now covers it for free.
    relabeled = automaton.label_many(first_half)
    cost_after = sum(extract_cover(relabeled, forest).total_cost() for forest in first_half)
    has_load = any(
        node.op.name == "LOAD" for forest in first_half for node in forest.nodes()
    )
    assert has_load, "stream seed produced no LOAD nodes; pick another seed"
    assert cost_after < cost_before
    for forest in first_half:
        dp_cost = extract_cover(label_dp(grammar, forest), forest).total_cost()
        assert extract_cover(relabeled, forest).total_cost() == dp_cost


# ----------------------------------------------------------------------
# Eager (offline) mode


def test_build_eager_reaches_fixed_point_and_is_idempotent():
    automaton = OnDemandAutomaton(bench_grammar())
    build = automaton.build_eager()
    assert not build["capped"] and build["skipped"] == []
    assert build["states"] > 0 and build["transitions"] > 0
    again = automaton.build_eager()
    assert again["states_created"] == 0
    assert again["transitions"] == build["transitions"]
    stats = automaton.stats()
    assert stats["states"] == build["states"]
    assert stats["transitions"] == build["transitions"]
    assert stats["eager"]["build_seconds"] >= 0.0


@pytest.mark.parametrize("make_grammar", [bench_grammar, dynamic_bench_grammar])
def test_eager_first_contact_is_all_table_hits(make_grammar):
    grammar = make_grammar()
    automaton = OnDemandAutomaton(grammar)
    automaton.build_eager()
    forests = _mixed_forests(3) + dynamic_constraint_forests(3, forests=2)
    metrics = LabelMetrics()
    automaton.label_many(forests, metrics)
    assert metrics.table_misses == 0
    assert metrics.states_created == 0
    assert metrics.hit_rate == 1.0


def test_build_eager_max_states_cap_stops_cleanly():
    automaton = OnDemandAutomaton(bench_grammar())
    build = automaton.build_eager(max_states=3)
    assert build["capped"]
    # Capped tables stay valid: labeling falls back to on-demand growth.
    forest = random_forests(9, forests=1, statements=5, max_depth=4)[0]
    cost = extract_cover(automaton.label(forest), forest).total_cost()
    assert cost == extract_cover(label_dp(automaton.grammar, forest), forest).total_cost()


def test_eager_is_invalidated_by_grammar_extension():
    grammar = bench_grammar()
    automaton = OnDemandAutomaton(grammar)
    automaton.build_eager()
    assert "eager" in automaton.stats()
    grammar.op_rule("reg", "LOAD", ["addr"], 0)
    automaton.label(random_forests(2, forests=1, statements=3, max_depth=3)[0])
    assert "eager" not in automaton.stats()  # the build died with the old pool


# ----------------------------------------------------------------------
# Static-operator specialization inside dynamic grammars


def test_dynamic_grammar_routes_static_ops_through_integer_tables():
    grammar = dynamic_bench_grammar()
    automaton = OnDemandAutomaton(grammar)
    forests = dynamic_constraint_forests(17, forests=3, statements=8, max_depth=5)
    automaton.label_many(forests)
    tables = automaton._tables
    # ADD carries a constraint rule: all its transitions are signature-keyed.
    assert len(tables["ADD"].dyn) > 0
    assert sum(len(row) for row in tables["ADD"].binary.values()) == 0
    # SUB has no dynamic rules: it must stay on the integer fast path.
    assert sum(len(row) for row in tables["SUB"].binary.values()) > 0
    assert len(tables["SUB"].dyn) == 0
